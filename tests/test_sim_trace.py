"""Unit tests for trace recording and derived breakdowns."""

import pytest

from repro.sim.resource import ResourceKind
from repro.sim.trace import ResourceTrace, TraceRecorder


def _recorder():
    return TraceRecorder({
        ResourceKind.NET: 10.0,
        ResourceKind.GPU_SM: 100.0,
        ResourceKind.PCIE: 10.0,
        ResourceKind.LAUNCH: 1.0,
        ResourceKind.HBM: 100.0,
        ResourceKind.DRAM: 50.0,
    })


class TestRecorder:
    def test_accumulates_busy_and_work(self):
        recorder = _recorder()
        recorder.add_interval(0.0, 1.0, {ResourceKind.NET: 5.0})
        recorder.add_interval(1.0, 2.0, {ResourceKind.NET: 10.0})
        trace = recorder.trace(ResourceKind.NET)
        assert trace.busy_seconds == pytest.approx(2.0)
        assert trace.work_done == pytest.approx(15.0)

    def test_zero_rate_not_recorded(self):
        recorder = _recorder()
        recorder.add_interval(0.0, 1.0, {ResourceKind.NET: 0.0})
        assert recorder.trace(ResourceKind.NET).busy_seconds == 0.0

    def test_zero_duration_ignored(self):
        recorder = _recorder()
        recorder.add_interval(1.0, 1.0, {ResourceKind.NET: 5.0})
        assert recorder.trace(ResourceKind.NET).segments == []

    def test_utilization(self):
        trace = ResourceTrace(kind=ResourceKind.NET, capacity=10.0,
                              work_done=50.0)
        assert trace.utilization(10.0) == pytest.approx(0.5)
        assert trace.utilization(0.0) == 0.0

    def test_kinds(self):
        assert set(_recorder().kinds()) == {
            ResourceKind.NET, ResourceKind.GPU_SM, ResourceKind.PCIE,
            ResourceKind.LAUNCH, ResourceKind.HBM, ResourceKind.DRAM}


class TestUnionBusy:
    def test_disjoint_intervals_add(self):
        recorder = _recorder()
        recorder.add_interval(0.0, 1.0, {ResourceKind.GPU_SM: 1.0})
        recorder.add_interval(2.0, 3.0, {ResourceKind.HBM: 1.0})
        union = recorder.union_busy_seconds(
            (ResourceKind.GPU_SM, ResourceKind.HBM))
        assert union == pytest.approx(2.0)

    def test_overlapping_intervals_merge(self):
        recorder = _recorder()
        recorder.add_interval(0.0, 2.0, {ResourceKind.GPU_SM: 1.0})
        recorder.add_interval(1.0, 3.0, {ResourceKind.HBM: 1.0})
        union = recorder.union_busy_seconds(
            (ResourceKind.GPU_SM, ResourceKind.HBM))
        assert union == pytest.approx(3.0)

    def test_empty(self):
        assert _recorder().union_busy_seconds(
            (ResourceKind.GPU_SM,)) == 0.0

    def test_contained_interval(self):
        recorder = _recorder()
        recorder.add_interval(0.0, 5.0, {ResourceKind.GPU_SM: 1.0})
        recorder.add_interval(1.0, 2.0, {ResourceKind.HBM: 1.0})
        assert recorder.union_busy_seconds(
            (ResourceKind.GPU_SM, ResourceKind.HBM)) == pytest.approx(5.0)


class TestBreakdown:
    def test_exposed_vs_active(self):
        recorder = _recorder()
        # Communication alone for 1s, then overlapped with compute 1s.
        recorder.add_interval(0.0, 1.0, {ResourceKind.NET: 5.0})
        recorder.add_interval(1.0, 2.0, {ResourceKind.NET: 5.0,
                                         ResourceKind.GPU_SM: 50.0})
        breakdown = recorder.category_breakdown(makespan=2.0)
        assert breakdown["communication"]["active"] == pytest.approx(1.0)
        assert breakdown["communication"]["exposed"] == pytest.approx(0.5)
        assert breakdown["compute"]["active"] == pytest.approx(0.5)
        assert breakdown["compute"]["exposed"] == pytest.approx(0.0)

    def test_all_categories_present(self):
        breakdown = _recorder().category_breakdown(makespan=1.0)
        assert set(breakdown) == {"compute", "memory", "communication",
                                  "launch"}

    def test_memory_category_includes_pcie(self):
        recorder = _recorder()
        recorder.add_interval(0.0, 1.0, {ResourceKind.PCIE: 5.0})
        breakdown = recorder.category_breakdown(makespan=1.0)
        assert breakdown["memory"]["active"] == pytest.approx(1.0)
        assert breakdown["memory"]["exposed"] == pytest.approx(1.0)

    def test_zero_makespan(self):
        breakdown = _recorder().category_breakdown(makespan=0.0)
        assert breakdown["compute"]["active"] == 0.0
