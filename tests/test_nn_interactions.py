"""Gradient checks for the interaction modules."""

import numpy as np
import pytest

from repro.nn.interactions import (
    AttentionPooling,
    GruPooling,
    dot_interaction,
    dot_interaction_grad,
    fm_interaction,
    fm_interaction_grad,
)


def numerical_grad(func, array, epsilon=1e-6):
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = func()
        flat[index] = original - epsilon
        minus = func()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return grad


class TestDotInteraction:
    def test_output_shape(self):
        fields = np.random.default_rng(0).standard_normal((4, 5, 3))
        out = dot_interaction(fields)
        assert out.shape == (4, 10)  # 5 choose 2

    def test_symmetric_inputs(self):
        fields = np.ones((1, 3, 2))
        out = dot_interaction(fields)
        assert np.allclose(out, 2.0)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        fields = rng.standard_normal((2, 3, 2))
        upstream = rng.standard_normal((2, 3))

        def loss():
            return float((dot_interaction(fields) * upstream).sum())

        expected = numerical_grad(loss, fields)
        grad = dot_interaction_grad(fields, upstream)
        assert np.allclose(grad, expected, atol=1e-5)


class TestFmInteraction:
    def test_output_shape(self):
        fields = np.random.default_rng(0).standard_normal((4, 5, 3))
        assert fm_interaction(fields).shape == (4, 1)

    def test_known_value(self):
        # Two identical unit fields: 0.5*((2)^2 - 2) per dim = 1.0/dim.
        fields = np.ones((1, 2, 3))
        assert fm_interaction(fields)[0, 0] == pytest.approx(3.0)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        fields = rng.standard_normal((2, 4, 3))
        upstream = rng.standard_normal(2)

        def loss():
            return float((fm_interaction(fields).ravel()
                          * upstream).sum())

        expected = numerical_grad(loss, fields)
        grad = fm_interaction_grad(fields, upstream)
        assert np.allclose(grad, expected, atol=1e-5)


class TestAttentionPooling:
    def test_output_shape(self):
        pooler = AttentionPooling(4, "a", np.random.default_rng(0))
        out = pooler.forward(np.random.default_rng(1)
                             .standard_normal((3, 7, 4)))
        assert out.shape == (3, 4)

    def test_weights_sum_to_one(self):
        pooler = AttentionPooling(2, "a", np.random.default_rng(0))
        sequence = np.random.default_rng(1).standard_normal((2, 5, 2))
        pooler.forward(sequence)
        _seq, weights = pooler._cache
        assert np.allclose(weights.sum(axis=1), 1.0)

    def test_sequence_gradient_matches_numerical(self):
        rng = np.random.default_rng(3)
        pooler = AttentionPooling(3, "a", rng)
        sequence = rng.standard_normal((2, 4, 3))
        upstream = rng.standard_normal((2, 3))

        def loss():
            return float((pooler.forward(sequence) * upstream).sum())

        expected = numerical_grad(loss, sequence)
        pooler.forward(sequence)
        grad = pooler.backward(upstream)
        assert np.allclose(grad, expected, atol=1e-5)

    def test_query_gradient_matches_numerical(self):
        rng = np.random.default_rng(4)
        pooler = AttentionPooling(3, "a", rng)
        sequence = rng.standard_normal((2, 4, 3))
        upstream = rng.standard_normal((2, 3))

        def loss():
            return float((pooler.forward(sequence) * upstream).sum())

        expected = numerical_grad(loss, pooler.query)
        pooler.zero_grad()
        pooler.forward(sequence)
        pooler.backward(upstream)
        assert np.allclose(pooler.grad_query, expected, atol=1e-5)

    def test_backward_before_forward(self):
        pooler = AttentionPooling(3, "a", np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            pooler.backward(np.ones((1, 3)))


class TestGruPooling:
    def test_output_shape(self):
        gru = GruPooling(4, "g", np.random.default_rng(0))
        out = gru.forward(np.random.default_rng(1)
                          .standard_normal((3, 6, 4)))
        assert out.shape == (3, 4)

    def test_sequence_gradient_matches_numerical(self):
        rng = np.random.default_rng(5)
        gru = GruPooling(2, "g", rng)
        sequence = rng.standard_normal((2, 3, 2))
        upstream = rng.standard_normal((2, 2))

        def loss():
            return float((gru.forward(sequence) * upstream).sum())

        expected = numerical_grad(loss, sequence)
        gru.forward(sequence)
        grad = gru.backward(upstream)
        assert np.allclose(grad, expected, atol=1e-4)

    @pytest.mark.parametrize("matrix", ["w_z", "w_r", "w_h"])
    def test_gate_gradients_match_numerical(self, matrix):
        rng = np.random.default_rng(6)
        gru = GruPooling(2, "g", rng)
        sequence = rng.standard_normal((2, 3, 2))
        upstream = rng.standard_normal((2, 2))

        def loss():
            return float((gru.forward(sequence) * upstream).sum())

        expected = numerical_grad(loss, getattr(gru, matrix))
        gru.zero_grad()
        gru.forward(sequence)
        gru.backward(upstream)
        assert np.allclose(getattr(gru, f"grad_{matrix}"), expected,
                           atol=1e-4)

    def test_parameters_exposed(self):
        gru = GruPooling(2, "g", np.random.default_rng(0))
        assert set(gru.parameters()) == {"g.w_z", "g.w_r", "g.w_h"}
