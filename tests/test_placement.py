"""Tests for skew-aware shard placement and its integrations."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import PicassoConfig, PicassoPlanner
from repro.data import criteo
from repro.data.labeled import LabeledBatchIterator
from repro.data.spec import DatasetSpec, FieldSpec
from repro.data.synthetic import BoundedZipf
from repro.distributed import DataParallelTrainer
from repro.embedding import (
    ExchangeLoad,
    FrequencyCounter,
    LoadProfile,
    PlacementPlan,
    PlannerConfig,
    ShardPlacement,
    ShardPlanner,
    compare_policies,
    max_mean_ratio,
    measure_exchange,
    predict_imbalance,
    shard_for_id,
)
from repro.hardware import eflops_cluster
from repro.models import wide_deep
from repro.nn.network import WdlNetwork
from repro.telemetry import SkewMonitor, Tracer
from repro.telemetry.monitor import emit_alerts


def _spec(name="f0", vocab=20_000, dim=16, skew=1.2):
    return FieldSpec(name=name, vocab_size=vocab, embedding_dim=dim,
                     zipf_exponent=skew)


def _profiles(num_fields=4, workers=8, batch=2_048, skew=1.2):
    planner = ShardPlanner(workers)
    specs = [_spec(name=f"f{index}", skew=skew)
             for index in range(num_fields)]
    return planner.profiles_for_fields(specs, batch), specs


def _batches(spec, workers, per_worker, seed=0):
    rng = np.random.default_rng(seed)
    zipf = BoundedZipf(spec.vocab_size, spec.zipf_exponent)
    return [zipf.sample(per_worker, rng) for _ in range(workers)]


class TestLoadProfile:
    def test_from_field_masses_sum_to_batch(self):
        profile = LoadProfile.from_field(
            _spec(), batch_size=1_024, num_workers=8)
        total = profile.total_weight
        assert total == pytest.approx(1_024 * 8, rel=1e-6)

    def test_tail_weight_positive_at_high_skew(self):
        # The point-mass Zipf approximation would leave no tail mass
        # at s=1.4; the exact CDF bin masses must.
        profile = LoadProfile.from_field(
            _spec(skew=1.4), batch_size=1_024, num_workers=8)
        assert profile.tail_weight > 0.0

    def test_from_counter_matches_observed(self):
        counter = FrequencyCounter()
        counter.observe(np.array([0, 0, 0, 1, 1, 2]))
        profile = LoadProfile.from_counter(
            "obs", counter, dim=8, vocab_size=100, batch_size=60,
            num_workers=2)
        assert profile.hot_ids[0] == 0
        # ID 0 carries half the traffic: 60 ids/worker * 2 workers.
        assert profile.hot_weights[0] == pytest.approx(60.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadProfile.from_field(_spec(), batch_size=0, num_workers=2)
        with pytest.raises(ValueError):
            LoadProfile(name="x", dim=0, vocab_size=10,
                        hot_ids=np.zeros(0, dtype=np.int64),
                        hot_weights=np.zeros(0),
                        hot_batch_prob=np.zeros(0), tail_weight=0.0)


class TestPlanEdgeCases:
    def test_single_worker_plan_is_trivially_balanced(self):
        profiles, specs = _profiles(workers=1)
        plan = ShardPlanner(1).plan(profiles)
        assert plan.predicted_ratio() == 1.0
        load = measure_exchange(plan, "f0",
                                [_batches(specs[0], 1, 512)[0]])
        assert load.total_bytes == 0.0
        assert load.max_mean_ratio == 1.0

    def test_empty_batches_price_to_zero(self):
        profiles, _specs = _profiles(workers=4)
        plan = ShardPlanner(4).plan(profiles)
        empty = [np.zeros(0, dtype=np.int64)] * 4
        load = measure_exchange(plan, "f0", empty)
        assert load.total_bytes == 0.0
        assert load.local_bytes == 0.0
        assert load.max_mean_ratio == 1.0

    def test_all_ids_one_shard_is_rebalanced(self):
        # Pathological traffic: every lookup hits one cold ID, which
        # hash sharding serves from a single worker.
        spec = _spec(vocab=1_000)
        workers = 4
        hot_id = 999
        batches = [np.full(256, hot_id, dtype=np.int64)
                   for _ in range(workers)]
        counter = FrequencyCounter()
        for ids in batches:
            counter.observe(ids)
        profile = LoadProfile.from_counter(
            spec.name, counter, dim=spec.embedding_dim,
            vocab_size=spec.vocab_size, batch_size=256,
            num_workers=workers)
        planner = ShardPlanner(workers)
        hashed = planner.plan([profile], policy="hash")
        planned = planner.plan([profile], policy="planned")
        hash_load = measure_exchange(hashed, spec.name, batches)
        planned_load = measure_exchange(planned, spec.name, batches)
        assert hash_load.max_mean_ratio == pytest.approx(workers)
        # The planner replicates the ID: no exchange at all.
        assert planned.owner_of(spec.name, [hot_id])[0] == -1
        assert planned_load.total_bytes == 0.0
        assert planned_load.replicated_bytes > 0.0

    def test_plan_requires_profiles(self):
        with pytest.raises(ValueError):
            ShardPlanner(4).plan([])

    def test_duplicate_field_names_rejected(self):
        profiles, _specs = _profiles(num_fields=1, workers=2)
        with pytest.raises(ValueError):
            ShardPlanner(2).plan(profiles + profiles)

    def test_unknown_policy_rejected(self):
        profiles, _specs = _profiles(num_fields=1, workers=2)
        with pytest.raises(ValueError):
            ShardPlanner(2).plan(profiles, policy="random")


class TestPlanRoundTrip:
    def test_as_dict_from_dict_round_trip(self):
        profiles, specs = _profiles(workers=8)
        plan = ShardPlanner(8).plan(profiles)
        clone = PlacementPlan.from_dict(
            json.loads(json.dumps(plan.as_dict())))
        assert clone.num_workers == plan.num_workers
        assert clone.policy == plan.policy
        assert set(clone.fields) == set(plan.fields)
        ids = _batches(specs[0], 1, 2_048)[0]
        for name in plan.fields:
            assert np.array_equal(clone.owner_of(name, ids),
                                  plan.owner_of(name, ids))
        assert clone.predicted_ratio() == \
            pytest.approx(plan.predicted_ratio())

    def test_summary_keys(self):
        profiles, _specs = _profiles(workers=4)
        summary = ShardPlanner(4).plan(profiles).summary()
        assert summary["policy"] == "planned"
        assert summary["workers"] == 4
        assert summary["replicated_rows"] > 0
        assert summary["predicted_ratio"] >= 1.0


class TestHashPlanEquivalence:
    def test_hash_plan_matches_shard_for_id(self):
        profiles, specs = _profiles(workers=8)
        plan = ShardPlanner(8).plan(profiles, policy="hash")
        ids = _batches(specs[0], 1, 4_096)[0]
        assert np.array_equal(plan.owner_of("f0", ids),
                              shard_for_id(ids, 8))


class TestLptPacking:
    def test_zero_cost_items_spread_over_workers(self):
        # Cold tail partitions cost ~0 exchange bytes; the tie-break
        # must still spread their HBM over all workers instead of
        # piling them onto worker 0.
        spec = _spec(skew=1.4)
        planner = ShardPlanner(8)
        plan = planner.plan(
            planner.profiles_for_fields([spec], 2_048))
        owners = plan.fields[spec.name].tail_owners
        counts = np.bincount(owners, minlength=8)
        assert counts.min() > 0

    def test_hbm_budget_vetoes_overloaded_worker(self):
        profiles, _specs = _profiles(workers=4)
        unbounded = ShardPlanner(4).plan(profiles)
        budget = float(unbounded.predicted_hbm.max()) * 0.9
        bounded = ShardPlanner(
            4, PlannerConfig(hbm_budget_bytes=budget)).plan(profiles)
        assert float(bounded.predicted_hbm.max()) \
            <= float(unbounded.predicted_hbm.max())

    def test_impossible_budget_still_places_everything(self):
        profiles, specs = _profiles(num_fields=1, workers=2)
        plan = ShardPlanner(
            2, PlannerConfig(hbm_budget_bytes=1.0)).plan(profiles)
        ids = _batches(specs[0], 1, 512)[0]
        owners = plan.owner_of(specs[0].name, ids)
        assert np.all((owners >= -1) & (owners < 2))


class TestAcceptance:
    def test_planned_cuts_max_mean_ratio_by_25_percent(self):
        # ISSUE 5 acceptance: Zipf(1.2), 8 workers — planned placement
        # cuts the measured max/mean AllToAllv bytes by >= 25%.
        workers, per_worker = 8, 4_096
        profiles, specs = _profiles(
            num_fields=4, workers=workers, batch=per_worker, skew=1.2)
        batches = {spec.name: _batches(spec, workers, per_worker,
                                       seed=index)
                   for index, spec in enumerate(specs)}
        result = compare_policies(profiles, batches, workers)
        hash_ratio = result["hash"].max_mean_ratio
        planned_ratio = result["planned"].max_mean_ratio
        assert hash_ratio > 1.5
        assert planned_ratio < hash_ratio
        cut = 1.0 - planned_ratio / hash_ratio
        assert cut >= 0.25
        # And the gating quantity itself (max shard bytes) drops.
        assert result["planned"].max_bytes < result["hash"].max_bytes


class TestPredictImbalance:
    def test_single_worker_returns_one(self):
        assert predict_imbalance([_spec()], 1, 1_024) == 1.0

    def test_hash_predicts_skew_planned_does_not(self):
        fields = [_spec(name=f"f{index}") for index in range(4)]
        hashed = predict_imbalance(fields, 8, 2_048, policy="hash")
        planned = predict_imbalance(fields, 8, 2_048, policy="planned")
        assert hashed > 1.2
        assert 1.0 <= planned < hashed

    def test_matches_ungrouped_planning(self):
        # Field grouping (identical shapes planned once, scaled) must
        # price the same as planning every field separately.
        fields = [_spec(name=f"f{index}") for index in range(3)]
        grouped = predict_imbalance(fields, 4, 1_024, policy="hash")
        planner = ShardPlanner(4)
        ungrouped = planner.plan(
            planner.profiles_for_fields(fields, 1_024),
            policy="hash").predicted_ratio()
        assert grouped == pytest.approx(ungrouped, rel=1e-6)


class TestShardPlacementPlanBacked:
    def test_replicated_rows_count_as_local(self):
        profiles, specs = _profiles(num_fields=1, workers=8)
        plan = ShardPlanner(8).plan(profiles)
        legacy = ShardPlacement(worker_index=0, num_workers=8)
        backed = ShardPlacement(worker_index=0, num_workers=8,
                                plan=plan, field_name=specs[0].name)
        ids = _batches(specs[0], 1, 4_096)[0]
        assert backed.local_fraction(ids) > legacy.local_fraction(ids)
        local, remote = backed.partition(ids)
        assert len(local) + sum(len(v) for v in remote.values()) \
            == len(np.unique(ids))

    def test_plan_worker_mismatch_rejected(self):
        profiles, specs = _profiles(num_fields=1, workers=4)
        plan = ShardPlanner(4).plan(profiles)
        with pytest.raises(ValueError):
            ShardPlacement(worker_index=0, num_workers=8, plan=plan,
                           field_name=specs[0].name)

    def test_plan_requires_field_name(self):
        profiles, _specs = _profiles(num_fields=1, workers=4)
        plan = ShardPlanner(4).plan(profiles)
        with pytest.raises(ValueError):
            ShardPlacement(worker_index=0, num_workers=4, plan=plan)


class TestSkewMonitor:
    def test_balanced_load_is_healthy(self):
        report = SkewMonitor().analyze(
            ExchangeLoad(per_worker_bytes=np.full(4, 100.0)))
        assert report.healthy
        assert report.summary["max_mean_ratio"] == pytest.approx(1.0)

    def test_skewed_load_alerts_with_hottest_worker(self):
        load = ExchangeLoad(
            per_worker_bytes=np.array([1300.0, 100.0, 100.0, 100.0]))
        report = SkewMonitor(max_ratio=1.5).analyze(load, time_s=3.0)
        assert not report.healthy
        alert = report.alerts[0]
        assert alert.severity == "critical"
        assert report.summary["hottest_worker"] == 0
        tracer = Tracer()
        assert emit_alerts(tracer, [report]) == 1

    def test_accepts_raw_sequences(self):
        report = SkewMonitor().analyze([10.0, 10.0, 40.0])
        assert report.summary["max_mean_ratio"] == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SkewMonitor(max_ratio=0.5)


class TestMaxMeanRatio:
    def test_zero_load_counts_as_balanced(self):
        assert max_mean_ratio(np.zeros(4)) == 1.0
        assert max_mean_ratio([]) == 1.0


class TestCorePlannerWiring:
    def test_hash_policy_keeps_legacy_pricing(self):
        model = wide_deep(criteo(0.001))
        cluster = eflops_cluster(2)
        plan = PicassoPlanner(PicassoConfig()).plan(model, cluster, 2_000)
        assert plan.shard_imbalance is None
        assert plan.exchange_factor() == plan.cost.straggler_factor

    def test_planned_policy_prices_rebalanced_exchange(self):
        model = wide_deep(criteo(0.001))
        cluster = eflops_cluster(2)
        config = PicassoConfig(shard_policy="planned")
        plan = PicassoPlanner(config).plan(model, cluster, 2_000)
        assert plan.shard_imbalance is not None
        assert 1.0 <= plan.shard_imbalance \
            < plan.cost.straggler_factor
        assert plan.exchange_factor() == plan.shard_imbalance

    def test_unknown_shard_policy_rejected(self):
        with pytest.raises(ValueError):
            PicassoConfig(shard_policy="random")


class TestTrainerExchangeStats:
    def _dataset(self):
        return DatasetSpec(name="d", num_numeric=2, fields=(
            FieldSpec(name="a", vocab_size=1_000, embedding_dim=8),
            FieldSpec(name="s", vocab_size=1_000, embedding_dim=8,
                      seq_length=4),
        ))

    def test_plan_backed_trainer_accumulates_exchange(self):
        dataset = self._dataset()
        planner = ShardPlanner(2)
        plan = planner.plan_fields(dataset.fields, batch_size=32)
        trainer = DataParallelTrainer(
            WdlNetwork(dataset), workers=2, placement_plan=plan)
        batch = LabeledBatchIterator(dataset, 64, noise_scale=0.5,
                                     seed=0).next_batch()
        trainer.train_step(batch)
        trainer.train_step(batch)
        stats = trainer.exchange_stats()
        assert stats["steps"] == 2
        assert stats["policy"] == "planned"
        assert stats["max_mean_ratio"] >= 1.0

    def test_no_plan_returns_empty_stats(self):
        dataset = self._dataset()
        trainer = DataParallelTrainer(WdlNetwork(dataset), workers=2)
        assert trainer.exchange_stats() == {}

    def test_plan_worker_mismatch_rejected(self):
        dataset = self._dataset()
        plan = ShardPlanner(4).plan_fields(dataset.fields, batch_size=32)
        with pytest.raises(ValueError):
            DataParallelTrainer(WdlNetwork(dataset), workers=2,
                                placement_plan=plan)


class TestPlanShardsCli:
    def test_plan_shards_smoke(self, capsys):
        code = main(["plan-shards", "--workers", "4", "--fields", "2",
                     "--vocab", "5000", "--batch", "512"])
        assert code == 0
        out = capsys.readouterr().out
        assert "planned" in out
        assert "hash" in out

    def test_plan_shards_writes_plan_json(self, tmp_path, capsys):
        target = tmp_path / "plan.json"
        code = main(["plan-shards", "--workers", "4", "--fields", "2",
                     "--vocab", "5000", "--batch", "512",
                     "--output", str(target)])
        assert code == 0
        plan = PlacementPlan.from_dict(json.loads(target.read_text()))
        assert plan.num_workers == 4
        assert plan.policy == "planned"
