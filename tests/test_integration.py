"""Integration tests spanning multiple subsystems.

These exercise the same paths the paper's evaluation uses: plan ->
graph -> simulate -> metrics, plus cache-in-the-loop and real training.
"""

import pytest

from repro.baselines import framework_by_name
from repro.core import PicassoConfig, PicassoExecutor
from repro.data import alibaba, criteo, product1
from repro.data.spec import FieldSpec
from repro.data.synthetic import FieldSampler
from repro.embedding import EmbeddingTable, HybridHash
from repro.experiments.common import mini_criteo
from repro.hardware import eflops_cluster, gn6e_cluster
from repro.models import din, dlrm, wide_deep
from repro.sim.metrics import utilization_cdf
from repro.sim.resource import ResourceKind
from repro.training import train_and_evaluate


class TestSimulationPipeline:
    """model spec -> plan -> operator graph -> engine -> metrics."""

    def test_picasso_end_to_end_dlrm(self):
        model = dlrm(criteo(0.01))
        report = PicassoExecutor(model, gn6e_cluster(1)).run(
            4096, iterations=3)
        assert report.ips > 0
        assert report.seconds_per_iteration > 0
        levels, cdf = utilization_cdf(
            report.result.recorder, ResourceKind.GPU_SM,
            report.result.makespan)
        assert levels.size > 0
        assert cdf[-1] == pytest.approx(1.0)

    def test_four_frameworks_agree_on_direction(self):
        """TF-PS < collectives < PICASSO, as in Fig. 10."""
        model = dlrm(criteo(0.1))
        cluster = gn6e_cluster(1)
        tf_ps = framework_by_name("TF-PS").run(model, cluster, 4096,
                                               iterations=3)
        pytorch = framework_by_name("PyTorch").run(model, cluster, 4096,
                                                   iterations=3)
        picasso = PicassoExecutor(model, cluster).run(4096 * 4,
                                                      iterations=3)
        assert tf_ps.ips < pytorch.ips < picasso.ips

    def test_sequence_model_end_to_end(self):
        model = din(alibaba(0.01))
        report = PicassoExecutor(model, gn6e_cluster(1)).run(
            2048, iterations=2)
        assert report.ips > 0

    def test_ablations_are_internally_consistent(self):
        model = wide_deep(product1(0.01))
        cluster = eflops_cluster(4)
        full = PicassoExecutor(model, cluster).run(4096, iterations=2)
        for optimization in ("packing", "interleaving", "caching"):
            ablated = PicassoExecutor(
                model, cluster,
                PicassoConfig().without(optimization)).run(4096,
                                                           iterations=2)
            assert ablated.ips <= full.ips * 1.05, optimization

    def test_larger_cluster_more_comm_per_worker(self):
        model = wide_deep(product1(0.01))
        small = PicassoExecutor(model, eflops_cluster(2)).run(
            4096, iterations=2)
        large = PicassoExecutor(model, eflops_cluster(64)).run(
            4096, iterations=2)
        small_bytes = small.net_gbps * small.seconds_per_iteration
        large_bytes = large.net_gbps * large.seconds_per_iteration
        assert large_bytes > small_bytes


class TestCacheInTheLoop:
    def test_hybrid_hash_hit_ratio_matches_planner_direction(self):
        """Algorithm 1's achieved hits grow with hot size, as planned."""
        field = FieldSpec(name="f", vocab_size=200_000, embedding_dim=4,
                          zipf_exponent=1.2)
        ratios = []
        for hot_rows in (200, 2_000, 20_000):
            sampler = FieldSampler(field, seed=4)
            cache = HybridHash(EmbeddingTable(dim=4),
                               hot_bytes=hot_rows * 16,
                               warmup_iters=10, flush_iters=10)
            for _step in range(50):
                cache.lookup(sampler.sample_batch(256))
            ratios.append(cache.stats.hit_ratio)
        assert ratios[0] < ratios[1] < ratios[2]

    def test_cached_plan_faster_than_uncached(self):
        model = wide_deep(product1(0.01))
        cluster = eflops_cluster(4)
        cached = PicassoExecutor(model, cluster).run(8192, iterations=2)
        uncached = PicassoExecutor(
            model, cluster,
            PicassoConfig().without("caching")).run(8192, iterations=2)
        assert cached.ips >= uncached.ips


class TestRealTraining:
    def test_sync_training_reaches_signal(self):
        result = train_and_evaluate(mini_criteo(fields=4), "dlrm",
                                    mode="sync", steps=60,
                                    batch_size=512, eval_batches=5,
                                    noise_scale=0.5)
        assert result.auc > 0.6

    def test_async_close_but_not_better(self):
        dataset = mini_criteo(fields=4)
        sync = train_and_evaluate(dataset, "dlrm", mode="sync",
                                  steps=60, batch_size=512,
                                  eval_batches=5, noise_scale=0.5)
        stale = train_and_evaluate(dataset, "dlrm", mode="async-ps",
                                   steps=60, batch_size=512,
                                   eval_batches=5, noise_scale=0.5,
                                   staleness=2)
        assert stale.auc <= sync.auc + 0.02
