"""Tests for the RunConfig/run facade and the Stats protocol."""

import pytest

from repro import api
from repro.api import (
    FRAMEWORKS,
    ProfileResult,
    RunConfig,
    ServeConfig,
    StreamConfig,
)
from repro.core.config import PicassoConfig
from repro.faults import FaultEvent, FaultPlan
from repro.embedding.hybrid_hash import CacheStats
from repro.embedding.multilevel import TierStats
from repro.hardware import eflops_cluster
from repro.serving.metrics import ServingReport
from repro.sim.engine import SimSummary
from repro.telemetry import MetricsRegistry, is_stats, validate_chrome_trace
from repro.training.trainer import TrainResult

TINY = RunConfig(model="DLRM", dataset="Criteo", scale=0.001,
                 cluster="eflops:2", batch_size=512, iterations=1)


class TestParseCluster:
    def test_named_specs(self):
        cluster = api.parse_cluster("eflops:4")
        assert cluster.num_nodes == 4
        assert api.parse_cluster("gn6e:1").num_nodes == 1

    def test_default_node_count(self):
        assert api.parse_cluster("eflops").num_nodes == 1

    def test_built_cluster_passes_through(self):
        built = eflops_cluster(2)
        assert api.parse_cluster(built) is built

    def test_unknown_testbed_rejected(self):
        with pytest.raises(ValueError):
            api.parse_cluster("tpu:4")


class TestRunConfig:
    def test_defaults_resolve(self):
        config = RunConfig()
        assert config.framework == "PICASSO"
        assert config.resolved_cluster().num_nodes == 16
        model = config.build_model()
        assert model.name == "W&D"

    def test_with_overrides(self):
        swept = TINY.with_overrides(framework="TF-PS", batch_size=1024)
        assert swept.framework == "TF-PS"
        assert swept.batch_size == 1024
        assert swept.model == TINY.model
        assert TINY.framework == "PICASSO"  # original untouched

    def test_as_dict_snapshot(self):
        snapshot = TINY.as_dict()
        assert snapshot["cluster"] == "EFLOPS:2"
        assert snapshot["model"] == "DLRM"
        assert snapshot["batch_size"] == 512

    def test_unknown_model_and_dataset(self):
        with pytest.raises(ValueError):
            RunConfig(model="BERT").build_model()
        with pytest.raises(ValueError):
            RunConfig(dataset="ImageNet").build_model()

    def test_round_trip_with_fault_plan(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", time_s=1.0, duration_s=0.5),))
        config = TINY.with_overrides(fault_plan=plan)
        rebuilt = RunConfig.from_dict(config.as_dict())
        assert rebuilt.fault_plan == plan
        assert rebuilt.model == TINY.model
        assert RunConfig.from_dict(TINY.as_dict()).fault_plan is None


class TestConfigBase:
    """The shared serialization contract all facade configs ride on."""

    def test_unknown_key_rejected_everywhere(self):
        for cls in (RunConfig, ServeConfig, StreamConfig,
                    PicassoConfig):
            with pytest.raises(ValueError,
                               match=f"unknown {cls.__name__}"):
                cls.from_dict({"not_a_field": 1})

    def test_with_overrides_revalidates(self):
        with pytest.raises(ValueError):
            TINY.with_overrides(batch_size=0)
        with pytest.raises(ValueError):
            TINY.with_overrides(iterations=0)
        with pytest.raises(ValueError):
            ServeConfig().with_overrides(replicas=0)
        with pytest.raises(ValueError):
            PicassoConfig().with_overrides(micro_batches=0)

    def test_picasso_field_round_trips(self):
        config = TINY.with_overrides(
            picasso=PicassoConfig(micro_batches=2,
                                  hot_storage_bytes=float(1 << 30)))
        snapshot = config.as_dict()
        assert snapshot["picasso"]["micro_batches"] == 2
        rebuilt = RunConfig.from_dict(snapshot)
        assert rebuilt.picasso == config.picasso
        assert rebuilt.as_dict() == snapshot

    def test_parse_cluster_is_case_insensitive(self):
        # as_dict emits the canonical upper-case testbed name; a
        # round-tripped config must resolve it back.
        assert api.parse_cluster("EFLOPS:2").num_nodes == 2
        rebuilt = RunConfig.from_dict(TINY.as_dict())
        assert rebuilt.resolved_cluster().num_nodes == 2

    def test_stream_config_round_trips(self):
        config = StreamConfig(requests=100, train_steps=10)
        rebuilt = StreamConfig.from_dict(config.as_dict())
        assert rebuilt.as_dict() == config.as_dict()


class TestFrameworkRegistry:
    def test_built_ins_registered(self):
        names = api.frameworks()
        assert "PICASSO" in names
        assert "TF-PS" in names
        # The legacy module attribute is a live view of the registry.
        assert names == api.FRAMEWORKS

    def test_duplicate_name_rejected_without_overwrite(self):
        with pytest.raises(ValueError):
            api.register_framework("PICASSO", lambda *a: None)

    def test_runner_must_be_callable(self):
        with pytest.raises(TypeError):
            api.register_framework("NotCallable", runner=42)
        with pytest.raises(ValueError):
            api.register_framework("", lambda *a: None)

    def test_plugin_framework_dispatches_through_run(self):
        calls = []

        def runner(config, model, cluster):
            calls.append((config.framework, model.name,
                          cluster.num_nodes))
            return api.run(config.with_overrides(framework="PICASSO"),
                           model=model)

        api.register_framework("TestPlugin", runner)
        try:
            assert "TestPlugin" in api.FRAMEWORKS
            report = api.run(TINY.with_overrides(framework="TestPlugin"))
            assert report.ips > 0
            assert calls == [("TestPlugin", "DLRM", 2)]
        finally:
            api._FRAMEWORK_REGISTRY.pop("TestPlugin", None)

    def test_framework_runner_lookup(self):
        assert callable(api.framework_runner("PICASSO"))
        with pytest.raises(ValueError, match="unknown framework"):
            api.framework_runner("MXNet")


class TestRunFacade:
    def test_unknown_framework_rejected(self):
        with pytest.raises(ValueError):
            api.run(TINY.with_overrides(framework="MXNet"))

    def test_run_returns_report(self):
        report = api.run(TINY)
        assert report.ips > 0
        assert report.result.makespan > 0
        # record_tasks defaults off: no per-task telemetry collected.
        assert report.result.task_records == []

    def test_record_tasks_collects_records(self):
        report = api.run(TINY.with_overrides(record_tasks=True))
        assert len(report.result.task_records) > 0
        summary = report.result.summary()
        assert summary.task_count == len(report.result.task_records)

    def test_model_reuse_matches_rebuild(self):
        model = TINY.build_model()
        with_reuse = api.run(TINY, model=model)
        without = api.run(TINY)
        assert with_reuse.ips == pytest.approx(without.ips)

    def test_every_framework_runs(self):
        for framework in FRAMEWORKS:
            report = api.run(TINY.with_overrides(framework=framework))
            assert report.ips > 0, framework

    def test_picasso_beats_base(self):
        picasso = api.run(TINY)
        base = api.run(TINY.with_overrides(framework="PICASSO(Base)"))
        assert picasso.ips > base.ips


class TestProfileFacade:
    def test_profile_result_shape(self):
        result = api.profile(TINY, top_k=5)
        assert isinstance(result, ProfileResult)
        assert result.report.ips > 0
        assert result.critical_path.top_k == 5
        assert validate_chrome_trace(result.trace) > 0

    def test_profile_embeds_workload_metadata(self):
        result = api.profile(TINY)
        workload = result.trace["otherData"]["workload"]
        assert workload["model"] == "DLRM"
        assert workload["record_tasks"] is True


class TestServeFacade:
    def test_serve_returns_report(self):
        report = api.serve(ServeConfig(requests=300))
        assert report.served + report.shed == 300
        assert report.qps > 0
        assert report.degraded is None

    def test_with_overrides_and_round_trip(self):
        base = ServeConfig(requests=500, cache="hbm")
        swept = base.with_overrides(cache="dram", max_batch_size=128)
        assert swept.cache == "dram"
        assert swept.max_batch_size == 128
        assert base.cache == "hbm"  # original untouched
        assert ServeConfig.from_dict(swept.as_dict()) == swept

    def test_round_trip_with_fault_plan(self):
        plan = FaultPlan.periodic(crash_rate=50.0, duration_s=0.02,
                                  crash_downtime_s=0.005, workers=2)
        config = ServeConfig(requests=200, replicas=2, fault_plan=plan)
        rebuilt = ServeConfig.from_dict(config.as_dict())
        assert rebuilt == config
        assert rebuilt.fault_plan == plan

    def test_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(requests=0)
        with pytest.raises(ValueError):
            ServeConfig(replicas=0)
        with pytest.raises(ValueError):
            ServeConfig(cache="tape")

    def test_serve_matches_direct_simulation(self):
        from repro.serving.server import simulate_serving

        config = ServeConfig(requests=400, seed=3, cache="hbm")
        via_facade = api.serve(config)
        direct = simulate_serving(num_requests=400, seed=3, cache="hbm")
        assert via_facade.as_dict() == direct.as_dict()


class TestProfileFaultPlan:
    def test_profile_reports_fault_schedule(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", time_s=0.001, duration_s=0.001),))
        result = api.profile(TINY.with_overrides(fault_plan=plan))
        assert "faults" in result.monitors
        verdict = result.monitors["faults"]
        assert verdict.healthy
        assert verdict.summary["crash_events"] == 1

    def test_profile_without_plan_has_no_faults_monitor(self):
        assert "faults" not in api.profile(TINY).monitors


class TestStatsProtocol:
    def test_conformance(self):
        examples = [
            CacheStats(hot_hits=3, cold_misses=1, flushes=0),
            TierStats(hits=4),
            TrainResult(auc=0.7, logloss=0.3, steps=10, losses=[0.3]),
            ServingReport(served=1, shed=0, p50_ms=1.0, p95_ms=2.0,
                          p99_ms=3.0, qps=10.0, shed_rate=0.0,
                          cache_hit_ratio=0.5, makespan_s=0.1,
                          stage_seconds={}),
            SimSummary(makespan=1.0, task_count=2, event_count=3),
            MetricsRegistry(),
        ]
        for example in examples:
            assert is_stats(example), type(example).__name__
            merged = example.merge(example)
            assert is_stats(merged)
            assert isinstance(example.as_dict(), dict)

    def test_cache_stats_merge_sums(self):
        left = CacheStats(hot_hits=3, cold_misses=1, flushes=2)
        merged = left.merge(CacheStats(hot_hits=1, cold_misses=1,
                                       flushes=0))
        assert merged.hot_hits == 4
        assert merged.cold_misses == 2
        assert merged.flushes == 2
        assert merged.hit_ratio == pytest.approx(4 / 6)

    def test_train_result_merge_weights_by_steps(self):
        one = TrainResult(auc=0.6, logloss=0.4, steps=10,
                          losses=[0.5, 0.4])
        two = TrainResult(auc=0.8, logloss=0.2, steps=30, losses=[0.3])
        merged = one.merge(two)
        assert merged.steps == 40
        assert merged.auc == pytest.approx(0.75)
        assert merged.logloss == pytest.approx(0.25)
        assert merged.losses == [0.5, 0.4, 0.3]

    def test_sim_summary_merge_adds(self):
        one = SimSummary(makespan=1.0, task_count=2, event_count=3,
                         busy_seconds={"gpu_sm": 0.5})
        two = SimSummary(makespan=2.0, task_count=4, event_count=5,
                         busy_seconds={"gpu_sm": 1.0, "net": 0.25})
        merged = one.merge(two)
        assert merged.makespan == pytest.approx(3.0)
        assert merged.task_count == 6
        assert merged.busy_seconds["gpu_sm"] == pytest.approx(1.5)
        assert merged.busy_seconds["net"] == pytest.approx(0.25)

    def test_serving_report_merge(self):
        one = ServingReport(served=10, shed=0, p50_ms=1.0, p95_ms=2.0,
                            p99_ms=3.0, qps=100.0, shed_rate=0.0,
                            cache_hit_ratio=0.8, makespan_s=0.1,
                            stage_seconds={"fetch": 0.01})
        two = ServingReport(served=30, shed=10, p50_ms=2.0, p95_ms=1.0,
                            p99_ms=4.0, qps=300.0, shed_rate=0.25,
                            cache_hit_ratio=0.4, makespan_s=0.1,
                            stage_seconds={"fetch": 0.03, "compute": 0.1})
        merged = one.merge(two)
        assert merged.served == 40
        assert merged.shed == 10
        # No raw latencies on either side: percentiles fall back to the
        # pairwise max.
        assert merged.p95_ms == pytest.approx(2.0)
        assert merged.shed_rate == pytest.approx(10 / 50)
        assert merged.cache_hit_ratio == pytest.approx(0.5)
        assert merged.stage_seconds["fetch"] == pytest.approx(0.04)

    def test_serving_report_merge_uses_histograms(self):
        from repro.telemetry.timeseries import Histogram

        def report(latencies_ms, served):
            hist = Histogram.from_values(latencies_ms)
            return ServingReport(
                served=served, shed=0, p50_ms=hist.quantile(0.5),
                p95_ms=hist.quantile(0.95), p99_ms=hist.quantile(0.99),
                qps=0.0, shed_rate=0.0, cache_hit_ratio=0.0,
                makespan_s=0.1, stage_seconds={}, latency_hist=hist)

        # 196 fast requests in one shard, 4 slow in the other.  The old
        # pairwise-max estimate reported the slow shard's 100 ms as the
        # merged p50; the histogram merge keeps the combined p50 fast
        # while the combined p99 correctly lands in the slow tail.
        fast = report([1.0] * 196, served=196)
        slow = report([100.0] * 4, served=4)
        merged = fast.merge(slow)
        assert merged.p50_ms == pytest.approx(1.0, rel=0.03)
        assert merged.p99_ms == pytest.approx(100.0, rel=0.03)
        assert merged.latency_hist.count == 200
