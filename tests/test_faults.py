"""Tests for repro.faults: plans, injection, recovery, degraded mode."""

import numpy as np
import pytest

from repro.api import ServeConfig, serve
from repro.data.labeled import LabeledBatchIterator
from repro.data.spec import DatasetSpec, FieldSpec
from repro.distributed.collectives import (
    CollectiveTimeout,
    FaultAwareAllreduce,
    RetryPolicy,
    allreduce_mean,
    failed_workers_oracle,
)
from repro.faults import (
    DegradedModeController,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultToleranceMonitor,
    ResilientTrainer,
    plan_report,
)
from repro.nn.network import WdlNetwork
from repro.nn.optim import Adagrad
from repro.sim import Engine, Phase, Resource, ResourceKind, SimTask
from repro.training.trainer import SyncTrainer


def _engine(**capacities):
    resources = {
        kind: Resource(kind, capacity=capacity)
        for kind, capacity in capacities.items()
    }
    return Engine(resources)


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="meteor", time_s=1.0)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="crash", time_s=-1.0)
        with pytest.raises(ValueError):
            FaultEvent(kind="crash", time_s=1.0, duration_s=-0.5)

    def test_severity_ranges(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="straggler", time_s=0.0, severity=0.5)
        with pytest.raises(ValueError):
            FaultEvent(kind="link_degrade", time_s=0.0, severity=1.5)

    def test_window_queries(self):
        event = FaultEvent(kind="straggler", time_s=2.0, duration_s=3.0,
                           severity=2.0)
        assert event.end_s == pytest.approx(5.0)
        assert not event.active_at(1.9)
        assert event.active_at(2.0)
        assert event.active_at(4.9)
        assert not event.active_at(5.0)  # half-open window


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        late = FaultEvent(kind="crash", time_s=5.0)
        early = FaultEvent(kind="straggler", time_s=1.0, severity=2.0)
        plan = FaultPlan(events=(late, early))
        assert plan.events == (early, late)

    def test_generate_is_seed_deterministic(self):
        kwargs = dict(duration_s=50.0, crash_rate=0.1,
                      straggler_rate=0.05, workers=4)
        assert (FaultPlan.generate(seed=7, **kwargs)
                == FaultPlan.generate(seed=7, **kwargs))
        assert (FaultPlan.generate(seed=7, **kwargs)
                != FaultPlan.generate(seed=8, **kwargs))

    def test_generate_bounds_and_validation(self):
        plan = FaultPlan.generate(seed=0, duration_s=10.0, crash_rate=0.5)
        assert all(event.time_s < 10.0 for event in plan.events)
        with pytest.raises(ValueError):
            FaultPlan.generate(seed=0, duration_s=0.0, crash_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan.generate(seed=0, duration_s=1.0, crash_rate=-1.0)

    def test_periodic_count_tracks_rate(self):
        counts = [len(FaultPlan.periodic(crash_rate=rate, duration_s=50.0))
                  for rate in (0.0, 0.04, 0.1, 0.2)]
        assert counts == [0, 2, 5, 10]
        assert counts == sorted(counts)

    def test_round_trip_is_lossless(self):
        plan = FaultPlan.generate(seed=3, duration_s=20.0, crash_rate=0.2,
                                  straggler_rate=0.1,
                                  link_degrade_rate=0.1, workers=3)
        assert len(plan) > 0
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    def test_kind_and_window_queries(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", time_s=1.0, duration_s=0.5),
            FaultEvent(kind="straggler", time_s=2.0, duration_s=2.0,
                       severity=3.0),
        ))
        assert len(plan.crashes()) == 1
        assert len(plan.of_kind("straggler")) == 1
        with pytest.raises(ValueError):
            plan.of_kind("meteor")
        assert plan.between(0.0, 1.0) == (plan.events[0],)
        assert plan.active(3.0) == (plan.events[1],)
        assert plan.active(3.0, kind="crash") == ()
        assert plan.boundaries() == (1.0, 1.5, 2.0, 4.0)


class TestFaultInjector:
    def test_scale_during_windows(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="straggler", time_s=0.0, duration_s=10.0,
                       severity=4.0),
            FaultEvent(kind="link_degrade", time_s=0.0, duration_s=10.0,
                       severity=0.25),
            FaultEvent(kind="crash", time_s=20.0, duration_s=1.0),
        ))
        injector = FaultInjector(plan)
        assert injector.scale(ResourceKind.GPU_SM, 5.0) == pytest.approx(0.25)
        assert injector.scale(ResourceKind.NET, 5.0) == pytest.approx(0.25)
        # HBM is neither a compute nor a link kind: untouched.
        assert injector.scale(ResourceKind.HBM, 5.0) == pytest.approx(1.0)
        # Crash downtime blacks out everything.
        assert injector.scale(ResourceKind.HBM, 20.5) == 0.0
        # Outside every window: full capacity.
        assert injector.scale(ResourceKind.GPU_SM, 15.0) == pytest.approx(1.0)

    def test_next_boundary(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", time_s=3.0, duration_s=1.0),))
        injector = FaultInjector(plan)
        assert injector.next_boundary(0.0) == pytest.approx(3.0)
        assert injector.next_boundary(3.0) == pytest.approx(4.0)
        assert injector.next_boundary(4.0) == float("inf")

    def test_straggler_slows_engine_run(self):
        task = [SimTask("t", [Phase(ResourceKind.GPU_SM, 100.0)])]
        clean = _engine(**{ResourceKind.GPU_SM: 10.0}).run(list(task))
        plan = FaultPlan(events=(
            FaultEvent(kind="straggler", time_s=0.0, duration_s=100.0,
                       severity=2.0),))
        slowed = _engine(**{ResourceKind.GPU_SM: 10.0}).run(
            [SimTask("t", [Phase(ResourceKind.GPU_SM, 100.0)])],
            injector=FaultInjector(plan))
        assert clean.makespan == pytest.approx(10.0)
        assert slowed.makespan == pytest.approx(20.0)

    def test_crash_kills_and_requeues(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", time_s=5.0, duration_s=1.0),))
        injector = FaultInjector(plan)
        result = _engine(**{ResourceKind.NET: 10.0}).run(
            [SimTask("t", [Phase(ResourceKind.NET, 100.0)])],
            injector=injector)
        # Progress up to the crash is lost, the blackout burns 1s, and
        # the task reruns its phase from scratch: 5 + 1 + 10.
        assert result.makespan == pytest.approx(16.0)
        assert injector.crashes_applied == 1
        assert injector.tasks_killed() == 1
        (event, _time, killed), = injector.log
        assert event.kind == "crash" and killed == 1


class TestFaultAwareAllreduce:
    def _arrays(self, workers=3):
        return [np.full(4, float(rank)) for rank in range(workers)]

    def test_clean_path_matches_plain_allreduce(self):
        collective = FaultAwareAllreduce(workers=3)
        outcome = collective.allreduce_mean(self._arrays())
        assert outcome.attempts == 1
        assert outcome.elapsed_s == 0.0
        assert outcome.dropped_workers == ()
        assert np.array_equal(outcome.result,
                              allreduce_mean(self._arrays()))

    def test_transient_failure_retries_then_succeeds(self):
        policy = RetryPolicy(max_retries=3, timeout_s=0.5,
                             base_backoff_s=0.1)
        # Worker 1 is down until t=0.5; the first rendezvous times out
        # and the retry finds everyone back.
        collective = FaultAwareAllreduce(
            workers=3, policy=policy,
            failure_oracle=lambda t: {1} if t < 0.5 else set())
        outcome = collective.allreduce_mean(self._arrays(), now_s=0.0)
        assert outcome.attempts == 2
        assert outcome.elapsed_s == pytest.approx(0.6)  # timeout+backoff
        assert outcome.dropped_workers == ()
        assert np.array_equal(outcome.result,
                              allreduce_mean(self._arrays()))

    def test_permanent_failure_drops_worker(self):
        collective = FaultAwareAllreduce(
            workers=3, policy=RetryPolicy(max_retries=2),
            failure_oracle=lambda t: {1})
        outcome = collective.allreduce_mean(self._arrays())
        assert outcome.attempts == 3
        assert outcome.dropped_workers == (1,)
        # Mean over the survivors 0 and 2.
        assert np.allclose(outcome.result, 1.0)

    def test_total_failure_raises_timeout(self):
        collective = FaultAwareAllreduce(
            workers=2, policy=RetryPolicy(max_retries=1),
            failure_oracle=lambda t: {0, 1})
        with pytest.raises(CollectiveTimeout):
            collective.allreduce_mean(self._arrays(workers=2))

    def test_plan_oracle_tracks_crash_windows(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", time_s=1.0, duration_s=2.0,
                       worker=1),))
        oracle = failed_workers_oracle(plan)
        assert oracle(0.5) == set()
        assert oracle(1.5) == {1}
        assert oracle(3.5) == set()

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_backoff_s=0.05, backoff_factor=2.0)
        assert policy.backoff_s(0) == pytest.approx(0.05)
        assert policy.backoff_s(2) == pytest.approx(0.20)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


def _tiny_dataset():
    return DatasetSpec(
        name="FaultTiny", num_numeric=2,
        fields=(FieldSpec(name="a", vocab_size=200, embedding_dim=4),
                FieldSpec(name="b", vocab_size=200, embedding_dim=4)))


def _fresh(seed=0):
    dataset = _tiny_dataset()
    network = WdlNetwork(dataset, variant="wdl", embedding_dim=4,
                         seed=seed)
    trainer = SyncTrainer(network, optimizer=Adagrad(lr=0.05))
    iterator = LabeledBatchIterator(dataset, 16, seed=seed)
    return trainer, iterator


class TestResilientTrainer:
    STEPS = 12

    def _reference_losses(self):
        trainer, iterator = _fresh()
        return [trainer.step(batch, index=index)
                for index, batch in
                enumerate(iterator.batches(self.STEPS))]

    def test_crash_resume_matches_uncrashed_bitwise(self, tmp_path):
        """The acceptance test: a crashed-and-resumed run reproduces
        the uninterrupted loss trajectory exactly, not approximately."""
        reference = self._reference_losses()
        trainer, iterator = _fresh()
        resilient = ResilientTrainer(trainer, tmp_path, ckpt_interval=4,
                                     step_time_s=1.0, ckpt_write_s=0.05,
                                     detect_s=0.1, restore_s=0.1)
        plan = FaultPlan.periodic(crash_rate=0.2,
                                  duration_s=float(self.STEPS))
        report = resilient.train(iterator, self.STEPS, fault_plan=plan)
        assert report.crashes == 2
        assert report.recoveries == 2
        assert report.replay_divergence == 0
        assert report.losses == reference  # bitwise, not approx
        assert report.mttr_s > 0
        assert report.lost_work_s > 0
        assert 0 < report.goodput < 1

    def test_interval_zero_restarts_from_scratch(self, tmp_path):
        reference = self._reference_losses()
        trainer, iterator = _fresh()
        resilient = ResilientTrainer(trainer, tmp_path, ckpt_interval=0,
                                     step_time_s=1.0)
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", time_s=8.5, duration_s=0.1),))
        report = resilient.train(iterator, self.STEPS, fault_plan=plan)
        # Every step before the crash replays from step 0, still exact.
        assert report.crashes == 1
        assert report.replayed_s == pytest.approx(8.0)
        assert report.losses == reference
        assert report.replay_divergence == 0

    def test_crash_free_run_has_unit_goodput_sans_checkpoints(
            self, tmp_path):
        trainer, iterator = _fresh()
        resilient = ResilientTrainer(trainer, tmp_path, ckpt_interval=0,
                                     step_time_s=1.0)
        report = resilient.train(iterator, self.STEPS)
        assert report.crashes == 0
        assert report.goodput == pytest.approx(1.0)
        assert report.total_wall_s == pytest.approx(self.STEPS)

    def test_straggler_stalls_but_does_not_lose_work(self, tmp_path):
        reference = self._reference_losses()
        trainer, iterator = _fresh()
        resilient = ResilientTrainer(trainer, tmp_path, ckpt_interval=0,
                                     step_time_s=1.0)
        plan = FaultPlan(events=(
            FaultEvent(kind="straggler", time_s=0.0, duration_s=4.0,
                       severity=2.0),))
        report = resilient.train(iterator, self.STEPS, fault_plan=plan)
        assert report.crashes == 0
        assert report.stalled_s > 0
        assert report.losses == reference

    def test_validation(self, tmp_path):
        trainer, iterator = _fresh()
        with pytest.raises(ValueError):
            ResilientTrainer(trainer, tmp_path, ckpt_interval=-1)
        with pytest.raises(ValueError):
            ResilientTrainer(trainer, tmp_path, step_time_s=0.0)
        resilient = ResilientTrainer(trainer, tmp_path)
        with pytest.raises(ValueError):
            resilient.train(iterator, steps=0)

    def test_report_as_dict_excludes_losses(self, tmp_path):
        trainer, iterator = _fresh()
        resilient = ResilientTrainer(trainer, tmp_path, ckpt_interval=4)
        report = resilient.train(iterator, 4)
        snapshot = report.as_dict()
        assert "losses" not in snapshot
        assert snapshot["goodput"] == pytest.approx(report.goodput)


class TestDegradedMode:
    def _plan(self):
        return FaultPlan(events=(
            FaultEvent(kind="crash", time_s=0.01, duration_s=0.02,
                       worker=0),
            FaultEvent(kind="crash", time_s=0.02, duration_s=0.02,
                       worker=1),
        ))

    def test_live_replicas_and_factors(self):
        controller = DegradedModeController(self._plan(), replicas=3)
        assert controller.live_replicas(0.0) == 3
        assert controller.live_replicas(0.015) == 2
        assert controller.live_replicas(0.025) == 1
        assert controller.service_factor(0.025) == pytest.approx(3.0)
        assert controller.budget_factor(0.015) == pytest.approx(2 / 3)

    def test_min_live_floor(self):
        controller = DegradedModeController(self._plan(), replicas=2,
                                            min_live=1)
        # Both replicas down at t=0.025; the floor keeps one serving.
        assert controller.live_replicas(0.025) == 1

    def test_degraded_seconds_merges_overlap(self):
        controller = DegradedModeController(self._plan(), replicas=3)
        # Windows [0.01, 0.03) and [0.02, 0.04) merge to 0.03s.
        assert controller.degraded_seconds() == pytest.approx(0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradedModeController(self._plan(), replicas=0)
        with pytest.raises(ValueError):
            DegradedModeController(self._plan(), replicas=2, min_live=3)

    def test_serve_reports_degraded_summary(self):
        config = ServeConfig(requests=600, rate_qps=20_000.0,
                             replicas=3, fault_plan=FaultPlan.periodic(
                                 crash_rate=100.0, duration_s=0.03,
                                 crash_downtime_s=0.01, workers=3))
        report = serve(config)
        assert report.degraded is not None
        assert report.served + report.shed == config.requests
        assert report.degraded["replicas"] == 3
        assert report.degraded["degraded_batches"] > 0
        assert report.degraded["degraded_seconds"] > 0
        assert report.degraded["min_live_replicas"] < 3

    def test_serve_without_plan_has_no_degraded_summary(self):
        report = serve(ServeConfig(requests=200))
        assert report.degraded is None
        assert "degraded" not in report.as_dict()

    def test_degraded_run_is_deterministic(self):
        config = ServeConfig(requests=400, replicas=2,
                             fault_plan=FaultPlan.periodic(
                                 crash_rate=100.0, duration_s=0.02,
                                 crash_downtime_s=0.005, workers=2))
        assert serve(config).as_dict() == serve(config).as_dict()


class TestFaultToleranceMonitor:
    def _report(self, tmp_path, plan=None):
        trainer, iterator = _fresh()
        resilient = ResilientTrainer(trainer, tmp_path, ckpt_interval=4,
                                     step_time_s=1.0)
        return resilient.train(iterator, 8, fault_plan=plan)

    def test_healthy_run(self, tmp_path):
        report = self._report(tmp_path)
        verdict = FaultToleranceMonitor().analyze(report)
        assert verdict.healthy
        assert verdict.alerts == ()
        assert verdict.summary["crashes"] == 0

    def test_plan_events_surface_as_info_alerts(self, tmp_path):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", time_s=4.5, duration_s=0.1),))
        report = self._report(tmp_path, plan=plan)
        verdict = FaultToleranceMonitor().analyze(report, plan=plan)
        assert verdict.healthy  # info alerts don't flag the run
        assert [alert.severity for alert in verdict.alerts] == ["info"]
        assert verdict.summary["crashes"] == 1

    def test_low_goodput_warns(self, tmp_path):
        report = self._report(tmp_path)
        verdict = FaultToleranceMonitor(min_goodput=1.0).analyze(report)
        assert not verdict.healthy
        assert any(alert.severity == "warning"
                   for alert in verdict.alerts)

    def test_replay_divergence_is_critical(self, tmp_path):
        report = self._report(tmp_path)
        report.replay_divergence = 1
        verdict = FaultToleranceMonitor().analyze(report)
        assert not verdict.healthy
        assert any(alert.severity == "critical"
                   for alert in verdict.alerts)

    def test_plan_report_summarizes_schedule(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", time_s=1.0, duration_s=0.5),
            FaultEvent(kind="straggler", time_s=2.0, duration_s=1.0,
                       severity=2.0),
        ))
        verdict = plan_report(plan)
        assert verdict.healthy
        assert verdict.summary["events"] == 2
        assert verdict.summary["crash_events"] == 1
        assert verdict.summary["straggler_events"] == 1
        assert verdict.summary["last_event_end_s"] == pytest.approx(3.0)
        assert len(verdict.alerts) == 2
