"""Tests for checkpoint save/restore."""

import numpy as np
import pytest

from repro.data.labeled import LabeledBatchIterator
from repro.data.spec import DatasetSpec, FieldSpec
from repro.nn.network import WdlNetwork
from repro.nn.optim import Adagrad
from repro.training.checkpoint import (
    atomic_savez,
    checkpoint_bytes,
    load_checkpoint,
    save_checkpoint,
)


def _dataset():
    return DatasetSpec(name="d", num_numeric=2, fields=(
        FieldSpec(name="a", vocab_size=500, embedding_dim=8),
        FieldSpec(name="b", vocab_size=500, embedding_dim=8),
    ))


def _trained(steps=5, seed=0):
    network = WdlNetwork(_dataset(), variant="dlrm", embedding_dim=8,
                         mlp_layers=(16,), seed=seed)
    iterator = LabeledBatchIterator(_dataset(), 64, seed=seed)
    optimizer = Adagrad(lr=0.05)
    for batch in iterator.batches(steps):
        network.train_step(batch, optimizer)
    return network, optimizer


def _trained_network(steps=5, seed=0):
    return _trained(steps=steps, seed=seed)[0]


class TestRoundTrip:
    def test_save_load_restores_exact_state(self, tmp_path):
        trained = _trained_network()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trained, path, step=5)

        fresh = WdlNetwork(_dataset(), variant="dlrm", embedding_dim=8,
                           mlp_layers=(16,), seed=99)
        header = load_checkpoint(fresh, path)
        assert header["step"] == 5
        for name, (value, _grad) in trained.parameters().items():
            other = dict(fresh.parameters())[name][0]
            assert np.array_equal(value, other), name
        for field_name, table in trained.embeddings.items():
            assert np.array_equal(table.table,
                                  fresh.embeddings[field_name].table)

    def test_resumed_training_continues_trajectory(self, tmp_path):
        """Save at step 5 with optimizer slots, resume, and match an
        uninterrupted run bitwise."""
        straight = _trained_network(steps=10, seed=0)

        first_half, mid_optimizer = _trained(steps=5, seed=0)
        path = tmp_path / "mid.npz"
        save_checkpoint(first_half, path, step=5,
                        optimizer=mid_optimizer)
        resumed = WdlNetwork(_dataset(), variant="dlrm",
                             embedding_dim=8, mlp_layers=(16,), seed=99)
        optimizer = Adagrad(lr=0.05)
        load_checkpoint(resumed, path, optimizer=optimizer)
        # With Adagrad accumulators restored, the resumed run continues
        # the exact trajectory, not an approximation of it.
        iterator = LabeledBatchIterator(_dataset(), 64, seed=0)
        batches = list(iterator.batches(10))
        for batch in batches[5:]:
            resumed.train_step(batch, optimizer)
        probe = batches[0]
        assert np.array_equal(straight.predict(probe),
                              resumed.predict(probe))

    def test_optimizer_state_round_trip(self, tmp_path):
        trained, optimizer = _trained(steps=5)
        path = tmp_path / "opt.npz"
        save_checkpoint(trained, path, step=5, optimizer=optimizer)
        header = load_checkpoint(_trained_network(steps=1), path,
                                 optimizer=(fresh := Adagrad(lr=0.05)))
        assert header["has_optimizer_state"] is True
        saved = optimizer.state_arrays()
        restored = fresh.state_arrays()
        assert saved.keys() == restored.keys()
        for key, value in saved.items():
            assert np.array_equal(value, restored[key]), key

    def test_metadata_round_trip(self, tmp_path):
        network = _trained_network(steps=1)
        path = tmp_path / "meta.npz"
        save_checkpoint(network, path, step=1,
                        metadata={"auc": 0.75})
        header = load_checkpoint(network, path)
        assert header["metadata"]["auc"] == 0.75

    def test_suffix_added_when_missing(self, tmp_path):
        network = _trained_network(steps=1)
        save_checkpoint(network, tmp_path / "ckpt", step=1)
        header = load_checkpoint(network, tmp_path / "ckpt")
        assert header["step"] == 1


class TestValidation:
    def test_variant_mismatch(self, tmp_path):
        network = _trained_network(steps=1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(network, path)
        other = WdlNetwork(_dataset(), variant="deepfm",
                           embedding_dim=8, mlp_layers=(16,))
        with pytest.raises(ValueError):
            load_checkpoint(other, path)

    def test_dim_mismatch(self, tmp_path):
        network = _trained_network(steps=1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(network, path)
        other = WdlNetwork(_dataset(), variant="dlrm", embedding_dim=4,
                           mlp_layers=(16,))
        with pytest.raises(ValueError):
            load_checkpoint(other, path)

    def test_negative_step(self, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(_trained_network(steps=1),
                            tmp_path / "x.npz", step=-1)

    def test_missing_file_names_both_tried_paths(self, tmp_path):
        network = _trained_network(steps=1)
        missing = tmp_path / "nope"
        with pytest.raises(FileNotFoundError) as excinfo:
            load_checkpoint(network, missing)
        assert str(missing) in str(excinfo.value)
        assert str(missing.with_suffix(".npz")) in str(excinfo.value)

    def test_expected_step_mismatch(self, tmp_path):
        network = _trained_network(steps=1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(network, path, step=7)
        with pytest.raises(ValueError, match="step 7.*expected step 3"):
            load_checkpoint(network, path, expected_step=3)
        assert load_checkpoint(network, path,
                               expected_step=7)["step"] == 7

    def test_checkpoint_bytes_positive(self):
        network = _trained_network(steps=1)
        assert checkpoint_bytes(network) > 0


class TestAtomicSave:
    def test_interrupted_save_preserves_previous(self, tmp_path,
                                                 monkeypatch):
        """A crash mid-write never clobbers the published checkpoint."""
        network = _trained_network(steps=1)
        path = tmp_path / "latest.npz"
        save_checkpoint(network, path, step=1)
        before = path.read_bytes()

        def die_mid_write(handle, **arrays):
            handle.write(b"torn half-checkpoint")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", die_mid_write)
        with pytest.raises(OSError, match="disk full"):
            save_checkpoint(_trained_network(steps=3), path, step=3)
        # The old version is byte-identical, still loads, and the torn
        # temp file was cleaned up.
        assert path.read_bytes() == before
        monkeypatch.undo()
        assert load_checkpoint(network, path)["step"] == 1
        assert [entry.name for entry in tmp_path.iterdir()] \
            == ["latest.npz"]

    def test_no_temp_litter_after_success(self, tmp_path):
        save_checkpoint(_trained_network(steps=1),
                        tmp_path / "ok.npz", step=1)
        assert [entry.name for entry in tmp_path.iterdir()] \
            == ["ok.npz"]

    def test_atomic_savez_resolves_suffix(self, tmp_path):
        final = atomic_savez(tmp_path / "raw",
                             values=np.arange(3))
        assert final == tmp_path / "raw.npz"
        assert np.array_equal(np.load(final)["values"], np.arange(3))
