"""Unit tests for interleaving (Eqs. 2 and 3)."""

import pytest

from repro.core.interleaving import (
    assign_interleave_sets,
    estimate_interleave_sets,
    estimate_micro_batches,
)
from repro.core.packing import calc_vparam, pack_by_dimension
from repro.data import criteo, product2
from repro.graph.builder import (
    ExecutionPlan,
    WorkloadStats,
    groups_per_field,
)
from repro.hardware import eflops_cluster
from repro.models import dlrm


def _plan(batch=4096, micro=1):
    model = dlrm(criteo(0.001))
    return ExecutionPlan(model=model, cluster=eflops_cluster(4),
                         batch_size=batch, strategy="hybrid",
                         groups=groups_per_field(model.dataset),
                         micro_batches=micro)


class TestMicroBatches:
    def test_small_batch_needs_no_slicing(self):
        assert estimate_micro_batches(_plan(batch=64), 16 * (1 << 30)) == 1

    def test_tight_memory_forces_slicing(self):
        slices = estimate_micro_batches(_plan(batch=65_536), 4 * (1 << 20))
        assert slices > 1

    def test_clamped_to_eight(self):
        slices = estimate_micro_batches(_plan(batch=1_000_000), 1 << 20)
        assert slices <= 8

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            estimate_micro_batches(_plan(), 0)


class TestInterleaveSetEstimate:
    def test_single_group_no_interleaving(self):
        groups = groups_per_field(criteo(0.001))[:1]
        assert estimate_interleave_sets(groups, 1024) == 1

    def test_default_heuristic_bounded(self):
        groups = pack_by_dimension(product2(0.001), 4096)
        sets = estimate_interleave_sets(groups, 4096)
        assert 1 <= sets <= 7

    def test_capacity_drives_set_count(self):
        groups = pack_by_dimension(product2(0.001), 4096)
        stats = WorkloadStats()
        total = sum(calc_vparam(list(g.fields), 4096, stats)
                    * g.shard_fraction for g in groups)
        sets = estimate_interleave_sets(groups, 4096, stats,
                                        capacity=total / 3)
        assert sets == 3

    def test_capacity_validation(self):
        groups = pack_by_dimension(product2(0.001), 4096)
        with pytest.raises(ValueError):
            estimate_interleave_sets(groups, 4096, capacity=0.0)


class TestAssignment:
    def test_every_set_used_when_enough_groups(self):
        groups = groups_per_field(criteo(0.001))
        assigned = assign_interleave_sets(groups, 4, 1024)
        used = {group.interleave_set for group in assigned}
        assert used == {0, 1, 2, 3}

    def test_assignment_partitions_groups(self):
        groups = groups_per_field(criteo(0.001))
        assigned = assign_interleave_sets(groups, 3, 1024)
        assert len(assigned) == len(groups)
        assert {g.name for g in assigned} == {g.name for g in groups}

    def test_balanced_by_volume(self):
        groups = groups_per_field(criteo(0.001))
        stats = WorkloadStats()
        assigned = assign_interleave_sets(groups, 2, 1024, stats)
        loads = {0: 0.0, 1: 0.0}
        for group in assigned:
            loads[group.interleave_set] += calc_vparam(
                list(group.fields), 1024, stats)
        ratio = max(loads.values()) / max(1e-9, min(loads.values()))
        assert ratio < 1.5

    def test_excluded_groups_pass_through(self):
        groups = pack_by_dimension(criteo(0.001), 1024,
                                   excluded_fields=("cat_0",))
        assigned = assign_interleave_sets(groups, 2, 1024)
        excluded = [g for g in assigned if g.excluded]
        assert len(excluded) == 1

    def test_rejects_zero_sets(self):
        with pytest.raises(ValueError):
            assign_interleave_sets([], 0, 1024)
