"""Tests for repro.bench (snapshots, gates, CLI wiring)."""

import json
import os

import pytest

from repro.bench import (
    BenchSnapshot,
    GateReport,
    canonical_json,
    compare_snapshots,
    config_fingerprint,
    load_snapshot,
    run_benches,
    snapshot_filename,
    write_snapshot,
)
from repro.bench.suite import BENCHES
from repro.cli import build_parser, main


def make_snapshot(**metric_overrides):
    metrics = {"ips": 100.0, "p99_ms": 2.0, "task_count": 50.0}
    metrics.update(metric_overrides)
    return BenchSnapshot(
        name="demo",
        config={"batch_size": 512, "cluster": "eflops:2"},
        metrics=metrics,
        monitors={"pulse": {"healthy": True}},
        tolerances={"task_count": 0.0})


class TestSnapshot:
    def test_roundtrip(self, tmp_path):
        snapshot = make_snapshot()
        path = write_snapshot(snapshot, str(tmp_path))
        assert os.path.basename(path) == snapshot_filename("demo")
        loaded = load_snapshot(path)
        assert loaded == snapshot

    def test_byte_determinism(self, tmp_path):
        snapshot = make_snapshot()
        first = write_snapshot(snapshot, str(tmp_path / "a"))
        second = write_snapshot(snapshot, str(tmp_path / "b"))
        with open(first, "rb") as fa, open(second, "rb") as fb:
            assert fa.read() == fb.read()

    def test_canonical_json_is_stable(self):
        a = canonical_json({"b": 1, "a": {"z": 2, "y": 3}})
        b = canonical_json({"a": {"y": 3, "z": 2}, "b": 1})
        assert a == b
        assert a.endswith("\n")

    def test_fingerprint_tracks_config(self):
        base = {"batch_size": 512}
        assert config_fingerprint(base) == config_fingerprint(
            {"batch_size": 512})
        assert config_fingerprint(base) != config_fingerprint(
            {"batch_size": 1024})
        assert len(config_fingerprint(base)) == 16

    def test_schema_version_checked(self, tmp_path):
        snapshot = make_snapshot()
        payload = snapshot.as_dict()
        payload["schema_version"] = 999
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema"):
            load_snapshot(str(path))

    def test_tolerance_lookup(self):
        snapshot = make_snapshot()
        assert snapshot.tolerance_for("task_count") == 0.0
        assert snapshot.tolerance_for("ips") > 0.0


class TestCompare:
    def test_identical_passes(self):
        report = compare_snapshots(make_snapshot(), make_snapshot())
        assert isinstance(report, GateReport)
        assert report.passed
        assert report.fingerprint_match
        assert all(gate.status == "ok" for gate in report.gates)

    def test_within_tolerance_passes(self):
        report = compare_snapshots(make_snapshot(),
                                   make_snapshot(ips=103.0))
        assert report.passed

    def test_regression_fails_with_readable_report(self):
        report = compare_snapshots(make_snapshot(),
                                   make_snapshot(p99_ms=3.0))
        assert not report.passed
        failed = {gate.metric for gate in report.failures}
        assert failed == {"p99_ms"}
        text = report.format()
        assert "p99_ms" in text
        assert "fail" in text
        assert "+50.00%" in text

    def test_zero_tolerance_metric(self):
        report = compare_snapshots(make_snapshot(),
                                   make_snapshot(task_count=51.0))
        assert not report.passed

    def test_new_metric_does_not_fail(self):
        candidate = make_snapshot(extra=1.0)
        report = compare_snapshots(make_snapshot(), candidate)
        statuses = {gate.metric: gate.status for gate in report.gates}
        assert statuses["extra"] == "new"
        assert report.passed

    def test_missing_metric_fails(self):
        baseline = make_snapshot(extra=1.0)
        report = compare_snapshots(baseline, make_snapshot())
        statuses = {gate.metric: gate.status for gate in report.gates}
        assert statuses["extra"] == "missing"
        assert not report.passed

    def test_fingerprint_mismatch_fails(self):
        candidate = BenchSnapshot(
            name="demo", config={"batch_size": 99},
            metrics=make_snapshot().metrics)
        report = compare_snapshots(make_snapshot(), candidate)
        assert not report.fingerprint_match
        assert not report.passed
        assert "fingerprint" in report.format()


class TestSuite:
    def test_registry_names(self):
        assert set(BENCHES) == {"training", "interleaving", "serving",
                                "cache", "faults", "shards", "online",
                                "replay", "prefetch", "walltime"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown bench"):
            run_benches(["nope"])

    def test_cache_bench_runs(self):
        snapshots = run_benches(["cache"])
        assert len(snapshots) == 1
        snap = snapshots[0]
        assert snap.name == "cache"
        assert snap.metrics["hit_ratio"] > 0.0
        assert snap.fingerprint == config_fingerprint(snap.config)


class TestCli:
    def test_parser_wiring(self):
        parser = build_parser()
        run_args = parser.parse_args(
            ["bench", "run", "--only", "cache", "--out", "x"])
        assert run_args.only == "cache"
        assert run_args.out == "x"
        compare_args = parser.parse_args(["bench", "compare"])
        assert compare_args.baseline == "benchmarks/baselines"

    def test_run_then_compare_roundtrip(self, tmp_path, capsys):
        out = str(tmp_path / "out")
        assert main(["bench", "run", "--only", "cache",
                     "--out", out]) == 0
        assert os.path.exists(os.path.join(out, "BENCH_cache.json"))
        assert main(["bench", "compare", "--only", "cache",
                     "--baseline", out, "--candidate", out]) == 0
        assert "all bench gates passed" in capsys.readouterr().out

    def test_compare_fails_on_perturbed_metric(self, tmp_path, capsys):
        out = str(tmp_path / "out")
        main(["bench", "run", "--only", "cache", "--out", out])
        path = os.path.join(out, "BENCH_cache.json")
        with open(path) as handle:
            payload = json.load(handle)
        payload["metrics"]["hit_ratio"] *= 1.5
        with open(path, "w") as handle:
            json.dump(payload, handle)
        baseline = "benchmarks/baselines"
        code = main(["bench", "compare", "--only", "cache",
                     "--baseline", baseline, "--candidate", out])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_compare_missing_candidate_fails(self, tmp_path, capsys):
        code = main(["bench", "compare", "--only", "cache",
                     "--baseline", "benchmarks/baselines",
                     "--candidate", str(tmp_path / "empty")])
        assert code == 1
        assert "candidate snapshot missing" in capsys.readouterr().out
