"""Unit tests for HybridHash (Algorithm 1)."""

import numpy as np
import pytest

from repro.data.spec import FieldSpec
from repro.data.synthetic import FieldSampler
from repro.embedding import EmbeddingTable, HybridHash


def _cache(dim=4, hot_rows=50, warmup=5, flush=5, seed=0):
    table = EmbeddingTable(dim=dim, seed=seed)
    return HybridHash(table, hot_bytes=hot_rows * dim * 4,
                      warmup_iters=warmup, flush_iters=flush)


class TestWarmup:
    def test_warmup_counts_iterations(self):
        cache = _cache(warmup=3)
        assert cache.in_warmup
        for _step in range(3):
            cache.lookup(np.array([1, 2, 3]))
        assert not cache.in_warmup

    def test_warmup_records_frequencies(self):
        cache = _cache(warmup=2)
        cache.lookup(np.array([7, 7, 8]))
        assert cache.counter.count(7) == 2

    def test_no_hits_counted_during_warmup(self):
        cache = _cache(warmup=5)
        cache.lookup(np.array([1]))
        assert cache.stats.queries == 0


class TestLookupSemantics:
    def test_returns_same_rows_as_plain_table(self):
        """The cache is transparent: results equal an uncached table."""
        cache = _cache(seed=3)
        plain = EmbeddingTable(dim=4, seed=3)
        rng = np.random.default_rng(0)
        for _step in range(12):
            ids = rng.integers(0, 500, size=64)
            assert np.array_equal(cache.lookup(ids), plain.lookup(ids))

    def test_hot_set_filled_after_warmup(self):
        cache = _cache(hot_rows=2, warmup=2, flush=1)
        for _step in range(4):
            cache.lookup(np.array([1, 1, 1, 2, 2, 3]))
        assert 1 in cache.hot_ids
        assert len(cache.hot_ids) <= 2

    def test_hits_track_hot_membership(self):
        cache = _cache(hot_rows=1, warmup=1, flush=1)
        cache.lookup(np.array([5, 5, 5]))  # warmup: 5 becomes hottest
        cache.lookup(np.array([5, 6]))
        assert cache.stats.hot_hits == 1
        assert cache.stats.cold_misses == 1

    def test_hit_ratio_on_skewed_stream(self):
        field = FieldSpec(name="f", vocab_size=100_000, embedding_dim=4,
                          zipf_exponent=1.3)
        sampler = FieldSampler(field, seed=1)
        cache = _cache(hot_rows=2_000, warmup=10, flush=10)
        for _step in range(60):
            cache.lookup(sampler.sample_batch(256))
        # Skew guarantees a healthy hit ratio with 2% of IDs hot.
        assert cache.stats.hit_ratio > 0.25

    def test_updates_go_to_cold_storage(self):
        cache = _cache()
        cache.lookup(np.array([1]))
        before = cache.cold.lookup(np.array([1])).copy()
        cache.update(np.array([1]), np.ones((1, 4), dtype=np.float32))
        after = cache.cold.lookup(np.array([1]))
        assert np.allclose(after - before, 1.0)


class TestFlush:
    def test_flush_period(self):
        cache = _cache(hot_rows=50, warmup=1, flush=3)
        for _step in range(10):
            # Enough distinct IDs that pin-all never triggers.
            cache.lookup(np.arange(200))
        assert cache.stats.flushes >= 2

    def test_hot_set_adapts_to_drift(self):
        cache = _cache(hot_rows=1, warmup=1, flush=1)
        cache.lookup(np.array([1, 1]))
        for _step in range(20):
            cache.lookup(np.array([2, 2, 2]))
        assert 2 in cache.hot_ids


class TestPinAll:
    def test_small_table_pins_everything(self):
        cache = _cache(hot_rows=1000, warmup=2, flush=5)
        for _step in range(6):
            cache.lookup(np.array([1, 2, 3]))
        # 3 distinct ids, 1000 hot rows: everything fits with headroom.
        assert cache.stats.hit_ratio == 1.0

    def test_pin_all_reverts_when_table_grows(self):
        cache = _cache(hot_rows=10, warmup=1, flush=1)
        cache.lookup(np.array([1, 2]))  # pin-all triggers (2*2 <= 10)
        for step in range(30):
            cache.lookup(np.arange(step * 5, step * 5 + 5))
        assert len(cache.hot_ids) <= 10
        assert cache.stats.cold_misses > 0


class TestBatchHitRatio:
    def test_no_side_effects(self):
        cache = _cache(warmup=0, flush=1)
        cache.lookup(np.array([1, 1, 2]))
        queries_before = cache.stats.queries
        cache.batch_hit_ratio(np.array([1, 2, 3]))
        assert cache.stats.queries == queries_before

    def test_empty_batch(self):
        assert _cache().batch_hit_ratio(np.array([], dtype=int)) == 0.0


class TestValidation:
    def test_negative_hot_bytes(self):
        table = EmbeddingTable(dim=4)
        with pytest.raises(ValueError):
            HybridHash(table, hot_bytes=-1)

    def test_zero_flush_iters(self):
        table = EmbeddingTable(dim=4)
        with pytest.raises(ValueError):
            HybridHash(table, hot_bytes=100, flush_iters=0)


class TestStatsExport:
    def test_as_dict_mirrors_attributes(self):
        cache = _cache(warmup=0, flush=1)
        cache.lookup(np.array([1, 1, 2]))
        snapshot = cache.stats.as_dict()
        assert snapshot["queries"] == cache.stats.queries
        assert snapshot["hit_ratio"] == cache.stats.hit_ratio
        assert snapshot["hot_hits"] == cache.stats.hot_hits
        assert snapshot["cold_misses"] == cache.stats.cold_misses
        assert snapshot["flushes"] == cache.stats.flushes

    def test_as_dict_fresh_cache(self):
        snapshot = _cache().stats.as_dict()
        assert snapshot["queries"] == 0
        assert snapshot["hit_ratio"] == 0.0
