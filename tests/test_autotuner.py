"""Tests for the warm-up auto-tuner."""

import pytest

from repro.core import PicassoConfig
from repro.core.autotuner import AutoTuner, TuningResult
from repro.data import product1
from repro.hardware import eflops_cluster
from repro.models import wide_deep


@pytest.fixture(scope="module")
def workload():
    return wide_deep(product1(0.005)), eflops_cluster(4)


class TestAutoTuner:
    def test_explicit_grid_is_searched(self, workload):
        model, cluster = workload
        tuner = AutoTuner(set_candidates=(1, 3),
                          micro_candidates=(1, 2),
                          warmup_iterations=1)
        result = tuner.tune(model, cluster, batch_size=2048)
        assert len(result.trials) == 4
        assert result.best_ips == max(trial["ips"]
                                      for trial in result.trials)

    def test_best_config_fields(self, workload):
        model, cluster = workload
        tuner = AutoTuner(set_candidates=(2,), micro_candidates=(3,),
                          warmup_iterations=1)
        result = tuner.tune(model, cluster, batch_size=2048)
        assert isinstance(result, TuningResult)
        assert result.interleave_sets == 2
        assert result.micro_batches == 3

    def test_default_grid_brackets_analytic_plan(self, workload):
        model, cluster = workload
        tuner = AutoTuner(warmup_iterations=1)
        sets, micros = tuner._grids(model, cluster, 2048)
        assert len(sets) >= 2
        assert 1 in micros or min(micros) >= 1

    def test_tuned_config_is_usable(self, workload):
        from repro.core import PicassoExecutor
        model, cluster = workload
        tuner = AutoTuner(set_candidates=(1, 3),
                          micro_candidates=(1, 3),
                          warmup_iterations=1)
        result = tuner.tune(model, cluster, batch_size=2048)
        report = PicassoExecutor(model, cluster,
                                 result.best_config).run(2048,
                                                         iterations=1)
        assert report.ips > 0

    def test_respects_base_config_toggles(self, workload):
        model, cluster = workload
        base = PicassoConfig().without("caching")
        tuner = AutoTuner(base_config=base, set_candidates=(1,),
                          micro_candidates=(1,), warmup_iterations=1)
        result = tuner.tune(model, cluster, batch_size=2048)
        assert not result.best_config.enable_caching

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            AutoTuner(warmup_iterations=0)
