"""Unit tests (incl. numerical gradient checks) for nn layers."""

import numpy as np
import pytest

from repro.nn.layers import Dense, DenseEmbedding, relu, relu_grad, sigmoid


def numerical_grad(func, array, epsilon=1e-6):
    """Central-difference gradient of scalar ``func`` w.r.t. ``array``."""
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = func()
        flat[index] = original - epsilon
        minus = func()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return grad


class TestActivations:
    def test_sigmoid_range_and_midpoint(self):
        x = np.array([-100.0, 0.0, 100.0])
        out = sigmoid(x)
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0, abs=1e-12)

    def test_sigmoid_no_overflow(self):
        out = sigmoid(np.array([-1e9, 1e9]))
        assert np.all(np.isfinite(out))

    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])),
                              np.array([0.0, 0.0, 2.0]))

    def test_relu_grad(self):
        x = np.array([-1.0, 0.5])
        grad = relu_grad(x, np.array([3.0, 3.0]))
        assert np.array_equal(grad, np.array([0.0, 3.0]))


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, "l", np.random.default_rng(0))
        out = layer.forward(np.ones((8, 4)))
        assert out.shape == (8, 3)

    def test_backward_before_forward_errors(self):
        layer = Dense(2, 2, "l", np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_weight_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        layer = Dense(3, 2, "l", rng)
        x = rng.standard_normal((5, 3))
        upstream = rng.standard_normal((5, 2))

        def loss():
            return float((layer.forward(x) * upstream).sum())

        expected = numerical_grad(loss, layer.weight)
        layer.zero_grad()
        layer.forward(x)
        layer.backward(upstream)
        assert np.allclose(layer.grad_weight, expected, atol=1e-5)

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        layer = Dense(3, 2, "l", rng)
        x = rng.standard_normal((4, 3))
        upstream = rng.standard_normal((4, 2))

        def loss():
            return float((layer.forward(x) * upstream).sum())

        expected = numerical_grad(loss, x)
        grad_x = layer.backward(upstream)
        assert np.allclose(grad_x, expected, atol=1e-5)

    def test_gradients_accumulate(self):
        rng = np.random.default_rng(3)
        layer = Dense(2, 2, "l", rng)
        x = np.ones((1, 2))
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        first = layer.grad_weight.copy()
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        assert np.allclose(layer.grad_weight, 2 * first)

    def test_zero_grad(self):
        rng = np.random.default_rng(4)
        layer = Dense(2, 2, "l", rng)
        layer.forward(np.ones((1, 2)))
        layer.backward(np.ones((1, 2)))
        layer.zero_grad()
        assert np.all(layer.grad_weight == 0)

    def test_parameters_naming(self):
        layer = Dense(2, 2, "mlp.0", np.random.default_rng(0))
        assert set(layer.parameters()) == {"mlp.0.weight", "mlp.0.bias"}

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            Dense(0, 2, "l", np.random.default_rng(0))


class TestDenseEmbedding:
    def test_fold_wraps_ids(self):
        table = DenseEmbedding(10, 4, "e", np.random.default_rng(0))
        assert np.array_equal(table.fold(np.array([3, 13, 23])),
                              np.array([3, 3, 3]))

    def test_forward_shape(self):
        table = DenseEmbedding(10, 4, "e", np.random.default_rng(0))
        out = table.forward(np.array([1, 2, 1]))
        assert out.shape == (3, 4)

    def test_duplicate_ids_share_rows(self):
        table = DenseEmbedding(10, 4, "e", np.random.default_rng(0))
        out = table.forward(np.array([5, 5]))
        assert np.array_equal(out[0], out[1])

    def test_backward_records_sparse_grads(self):
        table = DenseEmbedding(10, 4, "e", np.random.default_rng(0))
        table.forward(np.array([1, 2]))
        table.backward(np.ones((2, 4)))
        grads = table.sparse_grads()
        assert len(grads) == 1
        rows, deltas = grads[0]
        assert np.array_equal(rows, np.array([1, 2]))
        assert deltas.shape == (2, 4)

    def test_backward_before_forward_errors(self):
        table = DenseEmbedding(10, 4, "e", np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            table.backward(np.ones((1, 4)))

    def test_zero_grad_clears(self):
        table = DenseEmbedding(10, 4, "e", np.random.default_rng(0))
        table.forward(np.array([1]))
        table.backward(np.ones((1, 4)))
        table.zero_grad()
        assert table.sparse_grads() == []

    def test_memory_bytes(self):
        table = DenseEmbedding(10, 4, "e", np.random.default_rng(0))
        assert table.memory_bytes() == 10 * 4 * 8  # float64

    def test_validation(self):
        with pytest.raises(ValueError):
            DenseEmbedding(0, 4, "e", np.random.default_rng(0))
