"""Merge-law tests for the Stats protocol.

``merge`` is the reduction used when shards/windows of one run are
combined, so it must behave like a monoid: associative, with the
"empty" stats object as identity.  These laws are what make
hierarchical reduction (merge per node, then across nodes) agree with
a flat reduction — checked here for the stats types that telemetry
actually reduces.
"""

import pytest

from repro.serving.metrics import ServingReport
from repro.sim.engine import SimSummary
from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import Gauge
from repro.telemetry.timeseries import Histogram


def assert_stats_close(a, b):
    """Recursive approx-equality of two ``as_dict`` payloads."""
    assert type(a) is type(b) or (
        isinstance(a, (int, float)) and isinstance(b, (int, float)))
    if isinstance(a, dict):
        assert set(a) == set(b)
        for key in a:
            assert_stats_close(a[key], b[key])
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for left, right in zip(a, b):
            assert_stats_close(left, right)
    elif isinstance(a, (int, float)) and not isinstance(a, bool):
        assert a == pytest.approx(b)
    else:
        assert a == b


def check_merge_laws(items, empty):
    """Associativity + two-sided identity, compared via ``as_dict``."""
    a, b, c = items
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert_stats_close(left.as_dict(), right.as_dict())
    assert_stats_close(a.merge(empty).as_dict(), a.as_dict())
    assert_stats_close(empty.merge(a).as_dict(), a.as_dict())


class TestSimSummaryLaws:
    def test_laws(self):
        items = [
            SimSummary(makespan=1.0, task_count=2, event_count=3,
                       busy_seconds={"gpu_sm": 0.5}),
            SimSummary(makespan=2.5, task_count=4, event_count=7,
                       busy_seconds={"gpu_sm": 1.0, "net": 0.25}),
            SimSummary(makespan=0.5, task_count=1, event_count=1,
                       busy_seconds={"net": 0.1}),
        ]
        empty = SimSummary(makespan=0.0, task_count=0, event_count=0)
        check_merge_laws(items, empty)


class TestHistogramLaws:
    def test_laws(self):
        items = [
            Histogram.from_values([1.0, 2.0, 3.0]),
            Histogram.from_values([0.5, 50.0]),
            Histogram.from_values([100.0]),
        ]
        check_merge_laws(items, Histogram())

    def test_identity_preserves_quantiles(self):
        hist = Histogram.from_values([1.0, 5.0, 9.0])
        merged = hist.merge(Histogram())
        for q in (0.1, 0.5, 0.99):
            assert merged.quantile(q) == hist.quantile(q)


class TestMetricsRegistryLaws:
    def _registry(self, steps, loss):
        registry = MetricsRegistry()
        registry.counter("steps").inc(steps)
        registry.gauge("loss").set(loss)
        return registry

    def test_laws(self):
        items = [self._registry(10, 0.5), self._registry(20, 0.4),
                 self._registry(5, 0.45)]
        check_merge_laws(items, MetricsRegistry())

    def test_disjoint_names_union(self):
        left = MetricsRegistry()
        left.counter("a").inc(1)
        right = MetricsRegistry()
        right.counter("b").inc(2)
        merged = left.merge(right)
        assert merged.as_dict()["counters"] == {"a": 1.0, "b": 2.0}


class TestServingReportLaws:
    def _report(self, latencies_ms, makespan_s, hit_ratio):
        hist = Histogram.from_values(latencies_ms)
        served = len(latencies_ms)
        return ServingReport(
            served=served, shed=0,
            p50_ms=hist.quantile(0.5), p95_ms=hist.quantile(0.95),
            p99_ms=hist.quantile(0.99),
            qps=served / makespan_s, shed_rate=0.0,
            cache_hit_ratio=hit_ratio, makespan_s=makespan_s,
            stage_seconds={"fetch": makespan_s / 2},
            latency_hist=hist)

    def test_laws(self):
        items = [
            self._report([1.0, 2.0, 3.0], makespan_s=0.1, hit_ratio=0.8),
            self._report([0.5, 40.0], makespan_s=0.2, hit_ratio=0.5),
            self._report([10.0], makespan_s=0.05, hit_ratio=0.0),
        ]
        empty = ServingReport(served=0, shed=0, p50_ms=0.0, p95_ms=0.0,
                              p99_ms=0.0, qps=0.0, shed_rate=0.0,
                              cache_hit_ratio=0.0, makespan_s=0.0,
                              stage_seconds={})
        check_merge_laws(items, empty)

    def test_merged_percentiles_match_flat_distribution(self):
        # The law the old pairwise-max merge violated: percentiles of a
        # merged report equal percentiles of the pooled latencies.
        shards = [self._report([1.0] * 90, 0.1, 0.5),
                  self._report([20.0] * 10, 0.1, 0.5)]
        merged = shards[0].merge(shards[1])
        pooled = Histogram.from_values([1.0] * 90 + [20.0] * 10)
        assert merged.p50_ms == pytest.approx(pooled.quantile(0.5))
        assert merged.p99_ms == pytest.approx(pooled.quantile(0.99))


class TestGaugeMerge:
    def test_widened_extremes_latest_wins(self):
        earlier = Gauge("depth")
        for value in (5.0, 1.0):
            earlier.set(value)
        later = Gauge("depth")
        for value in (9.0, 3.0):
            later.set(value)
        merged = earlier.merge(later)
        assert merged.value == 3.0  # other is the later shard
        assert merged.low == 1.0
        assert merged.high == 9.0

    def test_unset_other_is_identity(self):
        gauge = Gauge("depth")
        gauge.set(4.0)
        merged = gauge.merge(Gauge("depth"))
        assert merged.value == 4.0
        assert merged.low == 4.0 and merged.high == 4.0

    def test_unset_self_takes_other(self):
        other = Gauge("depth")
        other.set(7.0)
        merged = Gauge("depth").merge(other)
        assert merged.value == 7.0

    def test_is_set(self):
        gauge = Gauge("depth")
        assert not gauge.is_set
        gauge.set(0.0)
        assert gauge.is_set
