"""Tests for the experiment runner registry and report plumbing."""


import pytest

from repro.cli import main
from repro.core import PicassoExecutor
from repro.data import criteo
from repro.experiments import runner
from repro.experiments.common import format_table
from repro.hardware import eflops_cluster
from repro.models import dlrm


class TestRunnerRegistry:
    def test_every_table_and_figure_is_registered(self):
        titles = [title for title, _fn in runner.EXPERIMENTS]
        for required in ("Fig. 1", "Fig. 3", "Fig. 5", "Tab. III",
                         "Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13",
                         "Tab. IV", "Tab. V", "Fig. 14", "Tab. VI",
                         "Fig. 15", "Tab. VII", "Tab. VIII", "Tab. IX",
                         "Tab. X"):
            assert any(required in title for title in titles), required

    def test_registry_entries_are_callable(self):
        for _title, fn in runner.EXPERIMENTS:
            assert callable(fn)

    def test_render_handles_empty(self):
        assert "no rows" in runner._render("x", [])

    def test_render_table(self):
        text = runner._render("t", [{"a": 1}])
        assert "== t ==" in text
        assert "a" in text


class TestRunReportPlumbing:
    @pytest.fixture(scope="class")
    def report(self):
        model = dlrm(criteo(0.001))
        return PicassoExecutor(model, eflops_cluster(2)).run(
            512, iterations=2)

    def test_breakdown_fractions_bounded(self, report):
        for values in report.breakdown.values():
            assert 0.0 <= values["exposed"] <= values["active"] <= 1.0

    def test_utilizations_bounded(self, report):
        assert 0.0 <= report.sm_utilization <= 1.0
        assert 0.0 <= report.sm_flops_utilization <= 1.0
        assert report.sm_flops_utilization <= report.sm_utilization + 1e-9

    def test_rates_nonnegative(self, report):
        assert report.pcie_gbps >= 0.0
        assert report.net_gbps >= 0.0
        assert report.nvlink_gbps == 0.0  # EFLOPS has no NVLink

    def test_counts_consistent(self, report):
        assert report.op_count > report.packed_embeddings
        assert report.micro_ops > 0

    def test_infinite_hours_on_zero_ips(self, report):
        from dataclasses import replace
        broken = replace(report, ips=0.0, result=report.result)
        assert broken.gpu_core_hours(1e9) == float("inf")


class TestFormatTable:
    def test_missing_keys_render_empty(self):
        text = format_table([{"a": 1}, {"b": 2}], ["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows

    def test_empty_rows(self):
        text = format_table([], ["a"])
        assert "a" in text


class TestCliExperimentCommand:
    def test_substring_dispatch(self, capsys):
        assert main(["experiment", "Tab. V operation"]) == 0
        out = capsys.readouterr().out
        assert "picasso_ops" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "Tab. 99"])
