"""Unit tests for the training loops (sync vs async-PS)."""

import numpy as np
import pytest

from repro.data.labeled import LabeledBatchIterator
from repro.data.spec import DatasetSpec, FieldSpec
from repro.nn.network import WdlNetwork
from repro.training import (
    AsyncPsTrainer,
    SyncTrainer,
    evaluate,
    train_and_evaluate,
)


def _dataset():
    return DatasetSpec(name="d", num_numeric=2, fields=(
        FieldSpec(name="a", vocab_size=2000, embedding_dim=8,
                  zipf_exponent=1.1),
        FieldSpec(name="b", vocab_size=2000, embedding_dim=8,
                  zipf_exponent=1.1),
    ))


class TestSyncTrainer:
    def test_returns_per_step_losses(self):
        dataset = _dataset()
        network = WdlNetwork(dataset, variant="wdl", seed=0)
        trainer = SyncTrainer(network)
        losses = trainer.train(
            LabeledBatchIterator(dataset, 128, seed=0), steps=5)
        assert len(losses) == 5

    def test_learning_happens(self):
        dataset = _dataset()
        network = WdlNetwork(dataset, variant="wdl", seed=0)
        SyncTrainer(network).train(
            LabeledBatchIterator(dataset, 512, noise_scale=0.3, seed=0),
            steps=40)
        auc, _ll = evaluate(
            network,
            LabeledBatchIterator(dataset, 512, noise_scale=0.3,
                                 seed=999), batches=5)
        assert auc > 0.6

    def test_negative_steps_rejected(self):
        dataset = _dataset()
        trainer = SyncTrainer(WdlNetwork(dataset, variant="wdl"))
        with pytest.raises(ValueError):
            trainer.train(LabeledBatchIterator(dataset, 16, seed=0), -1)


class TestAsyncPsTrainer:
    def test_staleness_zero_equals_sync(self):
        dataset = _dataset()
        sync_net = WdlNetwork(dataset, variant="wdl", seed=0)
        async_net = WdlNetwork(dataset, variant="wdl", seed=0)
        sync_losses = SyncTrainer(sync_net).train(
            LabeledBatchIterator(dataset, 128, seed=0), steps=8)
        async_losses = AsyncPsTrainer(async_net, staleness=0).train(
            LabeledBatchIterator(dataset, 128, seed=0), steps=8)
        assert np.allclose(sync_losses, async_losses)
        for name, (value, _grad) in sync_net.parameters().items():
            other = dict(async_net.parameters().items())[name][0]
            assert np.allclose(value, other)

    def test_stale_gradients_diverge_from_sync(self):
        dataset = _dataset()
        sync_net = WdlNetwork(dataset, variant="wdl", seed=0)
        stale_net = WdlNetwork(dataset, variant="wdl", seed=0)
        SyncTrainer(sync_net).train(
            LabeledBatchIterator(dataset, 128, seed=0), steps=8)
        AsyncPsTrainer(stale_net, staleness=3).train(
            LabeledBatchIterator(dataset, 128, seed=0), steps=8)
        weights = sync_net.mlp[0].weight
        others = stale_net.mlp[0].weight
        assert not np.allclose(weights, others)

    def test_pending_queue_drains(self):
        dataset = _dataset()
        trainer = AsyncPsTrainer(WdlNetwork(dataset, variant="wdl"),
                                 staleness=4)
        trainer.train(LabeledBatchIterator(dataset, 64, seed=0), steps=6)
        assert len(trainer._pending) == 0

    def test_staleness_validation(self):
        with pytest.raises(ValueError):
            AsyncPsTrainer(WdlNetwork(_dataset(), variant="wdl"),
                           staleness=-1)

    def test_async_still_learns(self):
        dataset = _dataset()
        network = WdlNetwork(dataset, variant="wdl", seed=0)
        AsyncPsTrainer(network, staleness=2).train(
            LabeledBatchIterator(dataset, 512, noise_scale=0.3, seed=0),
            steps=40)
        auc, _ll = evaluate(
            network,
            LabeledBatchIterator(dataset, 512, noise_scale=0.3,
                                 seed=999), batches=5)
        assert auc > 0.55


class TestEvaluate:
    def test_batches_validation(self):
        dataset = _dataset()
        network = WdlNetwork(dataset, variant="wdl")
        with pytest.raises(ValueError):
            evaluate(network, LabeledBatchIterator(dataset, 16, seed=0),
                     batches=0)


class TestHarness:
    def test_train_and_evaluate_sync(self):
        result = train_and_evaluate(_dataset(), "wdl", mode="sync",
                                    steps=20, batch_size=256,
                                    eval_batches=3, noise_scale=0.5)
        assert 0.4 < result.auc <= 1.0
        assert len(result.losses) == 20
        assert result.final_loss == result.losses[-1]

    def test_train_and_evaluate_async(self):
        result = train_and_evaluate(_dataset(), "wdl", mode="async-ps",
                                    steps=20, batch_size=256,
                                    eval_batches=3, noise_scale=0.5)
        assert 0.4 < result.auc <= 1.0

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            train_and_evaluate(_dataset(), "wdl", mode="quantum")
