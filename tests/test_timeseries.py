"""Tests for repro.telemetry.timeseries (EWMA, windows, histogram)."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.timeseries import (
    Ewma,
    FixedWindowAggregator,
    Histogram,
    RollingWindow,
)

settings.register_profile("repro_ts", deadline=None, max_examples=40)
settings.load_profile("repro_ts")


class TestEwma:
    def test_first_sample_initializes(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.value is None
        assert ewma.update(10.0) == pytest.approx(10.0)
        assert ewma.count == 1

    def test_smoothing(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(10.0)
        assert ewma.update(0.0) == pytest.approx(5.0)
        assert ewma.update(5.0) == pytest.approx(5.0)

    def test_alpha_one_tracks_last_sample(self):
        ewma = Ewma(alpha=1.0)
        for sample in (3.0, 7.0, 1.0):
            ewma.update(sample)
        assert ewma.value == pytest.approx(1.0)

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ValueError):
            Ewma(alpha=alpha)

    def test_stays_within_sample_range(self):
        ewma = Ewma(alpha=0.3)
        samples = [2.0, 9.0, 4.0, 7.5, 3.3]
        for sample in samples:
            ewma.update(sample)
            assert min(samples) <= ewma.value <= max(samples)


class TestRollingWindow:
    def test_eviction_and_stats(self):
        window = RollingWindow(capacity=3)
        for sample in (1.0, 2.0, 3.0, 4.0):
            window.push(sample)
        assert window.values == [2.0, 3.0, 4.0]
        assert len(window) == 3
        assert window.mean == pytest.approx(3.0)
        assert window.min == 2.0
        assert window.max == 4.0

    def test_empty(self):
        window = RollingWindow(capacity=2)
        assert window.mean == 0.0
        assert window.min == float("inf")
        assert window.max == float("-inf")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RollingWindow(capacity=0)


class TestFixedWindowAggregator:
    def test_windows_aggregate(self):
        agg = FixedWindowAggregator(window_s=1.0)
        agg.add(0.1, 2.0)
        agg.add(0.9, 4.0)
        agg.add(2.5, 10.0)
        windows = agg.windows()
        assert len(windows) == 2  # window 1 is empty and skipped
        first, second = windows
        assert first.start == 0.0 and first.end == 1.0
        assert first.count == 2
        assert first.mean == pytest.approx(3.0)
        assert first.low == 2.0 and first.high == 4.0
        assert second.start == 2.0
        assert second.count == 1

    def test_rejects_negative_time(self):
        agg = FixedWindowAggregator(window_s=0.5)
        with pytest.raises(ValueError):
            agg.add(-0.1, 1.0)

    def test_as_dict(self):
        agg = FixedWindowAggregator(window_s=1.0)
        agg.add(0.5, 3.0)
        payload = agg.windows()[0].as_dict()
        assert payload["count"] == 1
        assert payload["mean"] == pytest.approx(3.0)


class TestHistogram:
    def test_empty_quantile_is_zero(self):
        assert Histogram().quantile(0.99) == 0.0

    def test_identical_values_exact(self):
        hist = Histogram.from_values([10.0] * 100)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(10.0)

    def test_quantile_is_bounded_upper_estimate(self):
        values = [0.5 + 0.01 * i for i in range(500)]
        hist = Histogram.from_values(values)
        ordered = sorted(values)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = ordered[max(0, math.ceil(q * len(values)) - 1)]
            estimate = hist.quantile(q)
            assert exact <= estimate <= exact * hist.growth + 1e-12

    def test_quantile_never_exceeds_max(self):
        hist = Histogram.from_values([1.0, 2.0, 3.0])
        assert hist.quantile(1.0) == pytest.approx(3.0)

    def test_mean_total_min_max_exact(self):
        hist = Histogram.from_values([1.0, 2.0, 4.0])
        assert hist.count == 3
        assert hist.total == pytest.approx(7.0)
        assert hist.mean == pytest.approx(7.0 / 3)
        assert hist.min == 1.0
        assert hist.max == 4.0

    def test_sub_min_value_clamps_into_first_bucket(self):
        hist = Histogram(min_value=1e-3)
        hist.observe(1e-9)
        hist.observe(0.0)
        assert hist.count == 2
        assert hist.quantile(0.5) <= 1e-3 * hist.growth

    def test_rejects_bad_values(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.observe(-1.0)
        with pytest.raises(ValueError):
            hist.observe(float("nan"))
        with pytest.raises(ValueError):
            hist.observe(float("inf"))

    def test_rejects_bad_layout(self):
        with pytest.raises(ValueError):
            Histogram(growth=1.0)
        with pytest.raises(ValueError):
            Histogram(min_value=0.0)
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_merge_requires_same_layout(self):
        with pytest.raises(ValueError):
            Histogram(growth=1.02).merge(Histogram(growth=1.05))

    def test_merge_equals_combined_stream(self):
        left = Histogram.from_values([1.0, 2.0, 3.0])
        right = Histogram.from_values([10.0, 20.0])
        combined = Histogram.from_values([1.0, 2.0, 3.0, 10.0, 20.0])
        merged = left.merge(right)
        assert merged.count == combined.count
        assert merged.total == pytest.approx(combined.total)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert merged.quantile(q) == pytest.approx(
                combined.quantile(q))

    def test_as_dict_roundtrip_and_json_safe(self):
        hist = Histogram.from_values([0.001, 0.5, 2.0, 2.0, 100.0])
        payload = json.loads(json.dumps(hist.as_dict()))
        rebuilt = Histogram.from_dict(payload)
        assert rebuilt.count == hist.count
        assert rebuilt.max == hist.max
        for q in (0.25, 0.75, 0.99):
            assert rebuilt.quantile(q) == pytest.approx(hist.quantile(q))

    def test_bucket_list_sorted_by_numeric_index(self):
        hist = Histogram.from_values([1e-9 * 1.02 ** i
                                      for i in range(0, 300, 7)])
        indices = [index for index, _count in hist.as_dict()["buckets"]]
        assert indices == sorted(indices)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=60),
           st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_upper_bound_property(self, values, q):
        hist = Histogram.from_values(values)
        ordered = sorted(values)
        exact = ordered[max(0, math.ceil(q * len(values)) - 1)]
        estimate = hist.quantile(q)
        assert estimate >= exact - 1e-12
        assert estimate <= hist.max + 1e-12
