"""Unit tests for embedding tables, frequency counting and sharding."""

import numpy as np
import pytest

from repro.embedding import (
    EmbeddingTable,
    FrequencyCounter,
    ShardPlacement,
    shard_for_id,
)


class TestEmbeddingTable:
    def test_lazy_rows(self):
        table = EmbeddingTable(dim=4)
        assert len(table) == 0
        table.lookup(np.array([1, 2, 3]))
        assert len(table) == 3

    def test_lookup_shape_and_dtype(self):
        table = EmbeddingTable(dim=8)
        rows = table.lookup(np.array([5, 9]))
        assert rows.shape == (2, 8)
        assert rows.dtype == np.float32

    def test_lookup_is_stable(self):
        table = EmbeddingTable(dim=4, seed=1)
        first = table.lookup(np.array([42]))
        second = table.lookup(np.array([42]))
        assert np.array_equal(first, second)

    def test_same_seed_tables_agree(self):
        one = EmbeddingTable(dim=4, seed=7)
        two = EmbeddingTable(dim=4, seed=7)
        ids = np.array([3, 11, 3000])
        assert np.array_equal(one.lookup(ids), two.lookup(ids))

    def test_scatter_update(self):
        table = EmbeddingTable(dim=2)
        table.scatter_update(np.array([1]), np.array([[1.0, 2.0]]))
        assert np.array_equal(table.lookup(np.array([1])),
                              np.array([[1.0, 2.0]], dtype=np.float32))

    def test_scatter_update_last_write_wins(self):
        table = EmbeddingTable(dim=1)
        table.scatter_update(np.array([1, 1]),
                             np.array([[1.0], [2.0]]))
        assert table.lookup(np.array([1]))[0, 0] == 2.0

    def test_scatter_add_accumulates_duplicates(self):
        table = EmbeddingTable(dim=1)
        table.scatter_update(np.array([1]), np.array([[0.0]]))
        table.scatter_add(np.array([1, 1]), np.array([[1.0], [2.0]]))
        assert table.lookup(np.array([1]))[0, 0] == pytest.approx(3.0)

    def test_shape_validation(self):
        table = EmbeddingTable(dim=4)
        with pytest.raises(ValueError):
            table.scatter_update(np.array([1]), np.zeros((1, 3)))
        with pytest.raises(ValueError):
            table.scatter_add(np.array([1, 2]), np.zeros((1, 4)))

    def test_memory_accounting(self):
        table = EmbeddingTable(dim=4)
        table.lookup(np.arange(10))
        assert table.memory_bytes() == 10 * 4 * 4

    def test_contains(self):
        table = EmbeddingTable(dim=4)
        table.lookup(np.array([5]))
        assert 5 in table
        assert 6 not in table

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            EmbeddingTable(dim=0)


class TestFrequencyCounter:
    def test_observe_and_count(self):
        counter = FrequencyCounter()
        counter.observe(np.array([1, 1, 2]))
        assert counter.count(1) == 2
        assert counter.count(2) == 1
        assert counter.count(99) == 0

    def test_top_k_order(self):
        counter = FrequencyCounter()
        counter.observe(np.array([3] * 5 + [1] * 3 + [2]))
        assert counter.top_k(2) == [3, 1]

    def test_top_k_zero(self):
        assert FrequencyCounter().top_k(0) == []

    def test_totals(self):
        counter = FrequencyCounter()
        counter.observe(np.array([1, 2, 2]))
        counter.observe(np.array([2]))
        assert counter.distinct_ids() == 2
        assert counter.total_observations() == 4

    def test_reset(self):
        counter = FrequencyCounter()
        counter.observe(np.array([1]))
        counter.reset()
        assert counter.distinct_ids() == 0

    def test_most_common_tie_breaks_on_smaller_id(self):
        counter = FrequencyCounter()
        counter.observe(np.array([5, 5, 2, 2, 9]))
        assert counter.most_common(3) == [(2, 2), (5, 2), (9, 1)]
        assert counter.top_k(2) == [2, 5]

    def test_most_common_is_arrival_order_independent(self):
        # Counter.most_common alone breaks ties on insertion order;
        # the deterministic tie-break must erase that history.
        forward = FrequencyCounter()
        forward.observe(np.array([7, 3, 3, 7, 11]))
        backward = FrequencyCounter()
        backward.observe(np.array([11]))
        backward.observe(np.array([7, 7]))
        backward.observe(np.array([3, 3]))
        assert forward.most_common(10) == backward.most_common(10)


class TestSharding:
    def test_shards_in_range(self):
        shards = shard_for_id(np.arange(1000), 16)
        assert shards.min() >= 0
        assert shards.max() < 16

    def test_deterministic(self):
        ids = np.arange(100)
        assert np.array_equal(shard_for_id(ids, 8), shard_for_id(ids, 8))

    def test_roughly_balanced(self):
        shards = shard_for_id(np.arange(100_000), 16)
        counts = np.bincount(shards, minlength=16)
        assert counts.min() > 100_000 / 16 * 0.8
        assert counts.max() < 100_000 / 16 * 1.2

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_for_id(np.arange(5), 0)

    def test_placement_partition_is_exact(self):
        placement = ShardPlacement(worker_index=2, num_workers=8)
        ids = np.arange(10_000)
        local, remote = placement.partition(ids)
        total = len(local) + sum(len(chunk) for chunk in remote.values())
        assert total == len(np.unique(ids))
        owners = shard_for_id(local, 8)
        assert np.all(owners == 2)

    def test_placement_local_fraction(self):
        placement = ShardPlacement(worker_index=0, num_workers=16)
        fraction = placement.local_fraction(np.arange(100_000))
        assert fraction == pytest.approx(1 / 16, rel=0.2)

    def test_placement_validation(self):
        with pytest.raises(ValueError):
            ShardPlacement(worker_index=8, num_workers=8)

    def test_placement_empty_ids(self):
        placement = ShardPlacement(worker_index=0, num_workers=4)
        assert placement.local_fraction(np.array([], dtype=int)) == 0.0
