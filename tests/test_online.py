"""Tests for the continuous-training -> online-serving loop."""

import json

import numpy as np
import pytest

from repro.api import StreamConfig, stream
from repro.cli import main
from repro.data.spec import DatasetSpec, FieldSpec
from repro.faults import CompositeServeController
from repro.nn.network import WdlNetwork
from repro.online import (
    DriftingStream,
    ReplicaAutoscaler,
    SnapshotRegistry,
    StreamingTrainer,
    apply_delta,
    capture_delta,
    clone_network,
    load_delta,
    save_delta,
)
from repro.serving.traffic import (
    DiurnalShape,
    FlashCrowdShape,
    shape_from_dict,
)
from repro.telemetry.monitor import SloBurnRateMonitor


def _dataset(fields=2, vocab=400):
    return DatasetSpec(name="online", num_numeric=2, fields=tuple(
        FieldSpec(name=f"cat_{index}", vocab_size=vocab,
                  embedding_dim=8, zipf_exponent=1.15)
        for index in range(fields)))


def _network(seed=0):
    return WdlNetwork(_dataset(), variant="wdl", embedding_dim=8,
                      vocab_rows=400, mlp_layers=(16,), seed=seed)


def _trainer(tmp_path, publish_interval=5, max_chain=8, seed=0):
    network = _network(seed=seed)
    registry = SnapshotRegistry(tmp_path, max_chain=max_chain)
    events = DriftingStream(_dataset(), 32, drift_ids_per_step=4.0,
                            seed=seed)
    return StreamingTrainer(network, events, registry,
                            publish_interval=publish_interval)


def _assert_same_weights(one, other):
    for name, table in one.embeddings.items():
        assert np.array_equal(table.table,
                              other.embeddings[name].table), name
    for name, (value, _grad) in one.parameters().items():
        assert np.array_equal(value,
                              dict(other.parameters())[name][0]), name


class TestDriftingStream:
    def test_random_access_is_deterministic(self):
        events = DriftingStream(_dataset(), 16, seed=0)
        first, second = events.batch(7), events.batch(7)
        for name in first.sparse:
            assert np.array_equal(first.sparse[name],
                                  second.sparse[name])
        assert np.array_equal(first.labels, second.labels)

    def test_drift_moves_the_hot_window(self):
        events = DriftingStream(_dataset(vocab=5_000), 256,
                                drift_ids_per_step=16.0, seed=0)
        early = set(events.batch(0).sparse["cat_0"].ravel().tolist())
        late = set(events.batch(200).sparse["cat_0"].ravel().tolist())
        assert events.drift_offset(200) > events.drift_offset(0)
        assert early != late


class TestDeltaRoundTrip:
    def test_base_plus_deltas_bitwise(self, tmp_path):
        """The acceptance bar: full base + N deltas == live weights."""
        trainer = _trainer(tmp_path, publish_interval=5)
        trainer.run_steps(15)  # publishes v0 (full), v1, v2 (deltas)
        registry = trainer.registry
        kinds = [entry.kind for entry in registry.versions()]
        assert kinds == ["full", "delta", "delta"]
        replica = clone_network(trainer.network)
        landed = registry.materialize(replica)
        assert landed.version == 2
        _assert_same_weights(trainer.network, replica)

    def test_materialize_any_live_version(self, tmp_path):
        trainer = _trainer(tmp_path, publish_interval=5)
        trainer.run_steps(10)
        snapshot_at_v0 = clone_network(trainer.network)
        trainer.registry.materialize(snapshot_at_v0, version=0)
        trainer.run_steps(5)
        replica = clone_network(trainer.network)
        trainer.registry.materialize(replica, version=0)
        _assert_same_weights(snapshot_at_v0, replica)

    def test_deltas_much_smaller_than_full(self, tmp_path):
        # Needs a realistic vocab-to-batch ratio: the compression win
        # comes from most rows staying untouched between publishes.
        dataset = _dataset(vocab=5_000)
        network = WdlNetwork(dataset, variant="wdl", embedding_dim=8,
                             vocab_rows=5_000, mlp_layers=(16,), seed=0)
        registry = SnapshotRegistry(tmp_path)
        events = DriftingStream(dataset, 32, drift_ids_per_step=4.0,
                                seed=0)
        trainer = StreamingTrainer(network, events, registry,
                                   publish_interval=5)
        trainer.run_steps(15)
        full = registry.full_bytes()
        for nbytes in registry.delta_bytes():
            assert nbytes * 5 <= full

    def test_delta_file_round_trip(self, tmp_path):
        # A seed-0 source so the (seed-0) clone starts bitwise equal.
        fresh = _network(seed=0)
        stale = clone_network(fresh)
        _assert_same_weights(fresh, stale)
        rows = np.array([3, 7, 11], dtype=np.int64)
        field = next(iter(fresh.embeddings))
        fresh.embeddings[field].table[rows] += 1.0
        delta = capture_delta(fresh, {field: rows}, version=1,
                              base_version=0, step=1)
        loaded = load_delta(save_delta(delta, tmp_path / "d1"))
        apply_delta(stale, loaded)
        _assert_same_weights(fresh, stale)


class TestRegistry:
    def test_first_publish_is_full(self, tmp_path):
        trainer = _trainer(tmp_path, publish_interval=5)
        trainer.run_steps(5)
        latest = trainer.registry.latest()
        assert latest.version == 0
        assert latest.kind == "full"

    def test_compaction_and_gc(self, tmp_path):
        trainer = _trainer(tmp_path, publish_interval=5, max_chain=2)
        trainer.run_steps(30)  # six publishes with a chain cap of two
        registry = trainer.registry
        assert registry.chain_length() <= registry.max_chain
        assert registry.gc_removed > 0
        # GC'd payloads are really gone; every live one is on disk.
        live = {entry.filename for entry in registry.versions()}
        on_disk = {path.name for path in tmp_path.iterdir()
                   if path.name != "registry.json"}
        assert on_disk == live

    def test_chain_starts_at_a_full_base(self, tmp_path):
        trainer = _trainer(tmp_path, publish_interval=5)
        trainer.run_steps(15)
        chain = trainer.registry.chain()
        assert chain[0].kind == "full"
        assert all(entry.kind == "delta" for entry in chain[1:])
        versions = [entry.version for entry in chain]
        assert versions == sorted(versions)

    def test_manifest_survives_reopen(self, tmp_path):
        trainer = _trainer(tmp_path, publish_interval=5)
        trainer.run_steps(15)
        reopened = SnapshotRegistry(tmp_path)
        assert [entry.as_dict() for entry in reopened.versions()] \
            == [entry.as_dict() for entry in trainer.registry.versions()]
        replica = clone_network(trainer.network)
        reopened.materialize(replica)
        _assert_same_weights(trainer.network, replica)

    def test_rejects_unknown_version(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotRegistry(tmp_path).chain(99)
        with pytest.raises(ValueError):
            SnapshotRegistry(tmp_path, max_chain=0)


class TestCloneNetwork:
    def test_same_architecture_fresh_buffers(self):
        network = _network()
        copy = clone_network(network)
        assert copy.variant == network.variant
        assert copy.embedding_dim == network.embedding_dim
        field = next(iter(network.embeddings))
        assert (copy.embeddings[field].table.shape
                == network.embeddings[field].table.shape)
        copy.embeddings[field].table[:] += 1.0
        assert not np.array_equal(copy.embeddings[field].table,
                                  network.embeddings[field].table)


class TestReplicaAutoscaler:
    def _scaler(self, **overrides):
        monitor = SloBurnRateMonitor(slo_ms=10.0, budget=0.01,
                                     window_s=0.05)
        settings = dict(min_replicas=1, max_replicas=4,
                        cooldown_windows=1)
        settings.update(overrides)
        return ReplicaAutoscaler(monitor, **settings)

    def test_scales_up_on_burn(self):
        scaler = self._scaler()
        for _ in range(10):
            scaler.observe(0.01, None)  # sheds burn the budget
        assert scaler.settle(0.10) == 2
        assert scaler.scale_ups == 1

    def test_cooldown_holds_the_next_decision(self):
        scaler = self._scaler(cooldown_windows=2)
        for window in range(4):
            for _ in range(10):
                scaler.observe(window * 0.05 + 0.01, None)
        scaler.finalize()
        # Four violating windows, but each scale-up pays two cooldown
        # windows before the next may fire: ups land at windows 0 and
        # 3 only (without cooldown all four would).
        assert scaler.replicas == 3
        assert scaler.scale_ups == 2

    def test_scales_down_when_quiet(self):
        scaler = self._scaler(cooldown_windows=0)
        for _ in range(10):
            scaler.observe(0.01, None)
        assert scaler.settle(0.10) == 2
        for window in range(2, 5):
            for _ in range(10):
                scaler.observe(window * 0.05 + 0.01, 0.001)
        scaler.finalize()
        assert scaler.replicas == 1
        assert scaler.scale_downs == 1

    def test_respects_max_replicas(self):
        scaler = self._scaler(max_replicas=2, cooldown_windows=0)
        for window in range(6):
            for _ in range(10):
                scaler.observe(window * 0.05 + 0.01, None)
        scaler.finalize()
        assert scaler.replicas == 2
        assert scaler.service_factor(0.0) == pytest.approx(0.5)

    def test_empty_windows_never_scale(self):
        scaler = self._scaler()
        assert scaler.settle(1.0) == 1
        assert scaler.scale_ups == scaler.scale_downs == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            self._scaler(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            self._scaler(scale_up_burn=0.2, scale_down_burn=0.5)
        with pytest.raises(ValueError):
            self._scaler(cooldown_windows=-1)


class TestCompositeController:
    def test_service_factors_multiply(self):
        class Half:
            def service_factor(self, t):
                return 0.5

        class Double:
            def service_factor(self, t):
                return 2.0

        composite = CompositeServeController([Half(), Double()])
        assert composite.service_factor(0.0) == pytest.approx(1.0)

    def test_summary_maps_member_types(self):
        class Half:
            def service_factor(self, t):
                return 0.5

            def summary(self):
                return {"factor": 0.5}

        composite = CompositeServeController([Half()])
        assert composite.summary() == {"Half": {"factor": 0.5}}


class TestSimulateStream:
    @pytest.fixture(scope="class")
    def swapped(self):
        return stream(self.config())

    @pytest.fixture(scope="class")
    def frozen(self):
        return stream(self.config().with_overrides(hot_swaps=False))

    @staticmethod
    def config():
        return StreamConfig(requests=1_200, rate_qps=20_000.0,
                            shape=FlashCrowdShape(start_s=0.01,
                                                  duration_s=0.02,
                                                  multiplier=3.0),
                            train_steps=50, publish_interval=8,
                            train_batch_size=64)

    def test_swaps_happen_and_drop_nothing(self, swapped):
        assert swapped.publishes >= 2
        assert swapped.swaps >= 1
        assert swapped.swap_attributed_shed == 0
        assert (swapped.serving.served + swapped.serving.shed
                == self.config().requests)

    def test_p99_within_ten_percent_of_no_swap(self, swapped, frozen):
        assert swapped.serving.p99_ms \
            <= 1.10 * frozen.serving.p99_ms

    def test_delta_compression_bar(self, swapped):
        assert swapped.delta_compression >= 5.0

    def test_staleness_bounded_by_publish_cadence(self, swapped):
        config = self.config()
        assert swapped.staleness_mean_s > 0.0
        # Served staleness can never exceed the whole trainer window
        # plus the trace tail after the last publish.
        horizon = config.train_steps * config.train_step_s \
            + swapped.serving.p99_ms * 1e-3
        assert swapped.staleness_max_s <= horizon + 1.0

    def test_no_swap_run_never_swaps(self, frozen):
        assert frozen.swaps == 0
        assert frozen.swap_pause_p99_ms == 0.0

    def test_deterministic_and_json_ready(self, swapped):
        again = stream(self.config())
        assert json.dumps(swapped.as_dict(), sort_keys=True) \
            == json.dumps(again.as_dict(), sort_keys=True)


class TestStreamConfig:
    def test_round_trip_with_shape(self):
        config = StreamConfig(
            requests=100, shape=DiurnalShape(period_s=2.0,
                                             amplitude=0.4))
        rebuilt = StreamConfig.from_dict(config.as_dict())
        assert rebuilt == config
        assert shape_from_dict(config.as_dict()["shape"]) == config.shape

    def test_round_trip_without_shape(self):
        config = StreamConfig(requests=100)
        assert StreamConfig.from_dict(config.as_dict()) == config

    def test_with_overrides(self):
        config = StreamConfig().with_overrides(publish_interval=7)
        assert config.publish_interval == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(requests=0)
        with pytest.raises(ValueError):
            StreamConfig(publish_interval=0)
        with pytest.raises(ValueError):
            StreamConfig(cache="no-such-cache")


class TestStreamCli:
    def test_stream_command_prints_summary(self, capsys):
        assert main(["stream", "--requests", "200",
                     "--train-steps", "20",
                     "--publish-interval", "10"]) == 0
        out = capsys.readouterr().out
        assert "publishes=" in out
        assert "autoscaler:" in out

    def test_stream_shape_flags(self, capsys):
        assert main(["stream", "--requests", "200",
                     "--train-steps", "20",
                     "--publish-interval", "10",
                     "--shape", "flash",
                     "--flash-start-s", "0.002",
                     "--flash-duration-s", "0.004"]) == 0
        assert "swap" in capsys.readouterr().out
