"""Bitwise equivalence of the vectorized engine vs the legacy loop.

The vectorized hot path (``Engine(..., vectorized=True)``, the
default) is only allowed to be *faster* than the per-event Python scan
it replaced — never different.  Every test here runs the same workload
through both loops and compares the complete observable outcome with
``==`` (no tolerances): makespan, event counts, finish times, per-task
execution segments, per-resource utilization traces, and the fault
injector's kill/requeue log.  Any float that drifts by one ulp fails.

Workloads come from three sources: hand-built DAGs covering the
engine's edge cases, hypothesis-generated random DAGs, and the real
compiled plans the bench suites run.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import RunConfig
from repro.bench.walltime import (
    WALLTIME_BUDGET_S,
    _TickClock,
    bench_walltime,
    measure_walltime,
)
from repro.core.config import PicassoConfig
from repro.core.executor import compile_plan
from repro.core.planner import PicassoPlanner
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.sim import Engine, Phase, Resource, ResourceKind, SimTask

KINDS = (ResourceKind.NET, ResourceKind.GPU_SM, ResourceKind.HBM,
         ResourceKind.CPU)


def _both_engines(resources_builder, tasks_builder, **run_kwargs):
    """Run fresh tasks through each loop; return both results.

    Builders are callables so each loop gets its own task/resource
    objects — the engine mutates both during a run.
    """
    results = []
    for vectorized in (False, True):
        engine = Engine(resources_builder(), vectorized=vectorized)
        results.append(engine.run(tasks_builder(),
                                  keep_finish_times=True,
                                  record_tasks=True, **run_kwargs))
    return results


def _assert_bitwise_equal(legacy, vect):
    """Every observable of the two results must compare ``==``."""
    assert vect.makespan == legacy.makespan
    assert vect.task_count == legacy.task_count
    assert vect.event_count == legacy.event_count
    assert vect.finish_times == legacy.finish_times
    legacy_records = [(r.name, r.start, r.end, r.preds, r.segments)
                      for r in legacy.task_records]
    vect_records = [(r.name, r.start, r.end, r.preds, r.segments)
                    for r in vect.task_records]
    assert vect_records == legacy_records
    assert set(vect.recorder.kinds()) == set(legacy.recorder.kinds())
    for kind in legacy.recorder.kinds():
        a = legacy.recorder.trace(kind)
        b = vect.recorder.trace(kind)
        assert b.busy_seconds == a.busy_seconds, kind
        assert b.work_done == a.work_done, kind
        assert b.segments == a.segments, kind


# ---------------------------------------------------------------------
# Hand-built DAGs: the engine's structural edge cases.
# ---------------------------------------------------------------------

class TestHandBuiltEquivalence:
    def _resources(self):
        return {
            ResourceKind.NET: Resource(ResourceKind.NET, capacity=10.0),
            ResourceKind.GPU_SM: Resource(ResourceKind.GPU_SM,
                                          capacity=7.0),
            ResourceKind.LAUNCH: Resource(ResourceKind.LAUNCH,
                                          capacity=2.0, slots=2),
        }

    def test_empty_task_list(self):
        legacy, vect = _both_engines(self._resources, lambda: [])
        _assert_bitwise_equal(legacy, vect)

    def test_zero_phase_and_zero_work_tasks(self):
        def tasks():
            a = SimTask("a", [])
            b = SimTask("b", [Phase(ResourceKind.NET, 0.0),
                              Phase(ResourceKind.NET, 13.0)])
            c = SimTask("c", [Phase(ResourceKind.GPU_SM, 0.0)])
            c.depends_on(a)
            return [a, b, c]
        legacy, vect = _both_engines(self._resources, tasks)
        _assert_bitwise_equal(legacy, vect)

    def test_processor_sharing_with_caps(self):
        def tasks():
            out = [SimTask(f"t{i}",
                           [Phase(ResourceKind.NET, 37.0,
                                  max_rate=1.5 + 0.7 * i)])
                   for i in range(5)]
            out.append(SimTask("free", [Phase(ResourceKind.NET, 11.0)]))
            return out
        legacy, vect = _both_engines(self._resources, tasks)
        _assert_bitwise_equal(legacy, vect)

    def test_fifo_slot_queue_ordering(self):
        def tasks():
            # 5 tasks through a 2-slot resource: admission order and
            # queue rotation must match the legacy FIFO exactly.
            return [SimTask(f"q{i}",
                            [Phase(ResourceKind.LAUNCH, 1.0 + i),
                             Phase(ResourceKind.NET, 5.0)])
                    for i in range(5)]
        legacy, vect = _both_engines(self._resources, tasks)
        _assert_bitwise_equal(legacy, vect)

    def test_diamond_with_mixed_kinds(self):
        def tasks():
            a = SimTask("a", [Phase(ResourceKind.NET, 10.0)])
            b = SimTask("b", [Phase(ResourceKind.GPU_SM, 21.0)])
            c = SimTask("c", [Phase(ResourceKind.NET, 8.0),
                              Phase(ResourceKind.GPU_SM, 3.0)])
            d = SimTask("d", [Phase(ResourceKind.NET, 1.0)])
            b.depends_on(a)
            c.depends_on(a)
            d.depends_on(b)
            d.depends_on(c)
            return [a, b, c, d]
        legacy, vect = _both_engines(self._resources, tasks)
        _assert_bitwise_equal(legacy, vect)

    def test_cycle_detection_in_both_loops(self):
        for vectorized in (False, True):
            a = SimTask("a", [Phase(ResourceKind.NET, 1.0)])
            b = SimTask("b", [Phase(ResourceKind.NET, 1.0)])
            a.depends_on(b)
            b.depends_on(a)
            engine = Engine(self._resources(), vectorized=vectorized)
            with pytest.raises(RuntimeError):
                engine.run([a, b])


# ---------------------------------------------------------------------
# Random DAGs (hypothesis): structure, work amounts, caps, and slots
# drawn adversarially.
# ---------------------------------------------------------------------

@st.composite
def dag_specs(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    work = st.floats(min_value=1e-6, max_value=1e4,
                     allow_nan=False, allow_infinity=False)
    tasks = []
    for i in range(n):
        phase_count = draw(st.integers(min_value=0, max_value=3))
        phases = []
        for _ in range(phase_count):
            kind = draw(st.sampled_from(range(len(KINDS))))
            cap = draw(st.one_of(
                st.none(),
                st.floats(min_value=0.1, max_value=50.0,
                          allow_nan=False)))
            phases.append((kind, draw(work), cap))
        preds = sorted(draw(st.sets(
            st.integers(min_value=0, max_value=i - 1),
            max_size=min(i, 3)))) if i else []
        tasks.append((phases, preds))
    capacities = tuple(
        draw(st.floats(min_value=0.5, max_value=100.0,
                       allow_nan=False))
        for _ in KINDS)
    slots = draw(st.one_of(st.none(),
                           st.integers(min_value=1, max_value=3)))
    return tasks, capacities, slots


def _materialize(spec):
    task_specs, capacities, slots = spec

    def resources():
        built = {
            kind: Resource(kind, capacity=capacity)
            for kind, capacity in zip(KINDS, capacities)
        }
        if slots is not None:
            built[KINDS[0]] = Resource(KINDS[0],
                                       capacity=capacities[0],
                                       slots=slots)
        return built

    def tasks():
        built = []
        for index, (phases, _preds) in enumerate(task_specs):
            built.append(SimTask(
                f"t{index}",
                [Phase(KINDS[kind], amount)
                 if cap is None
                 else Phase(KINDS[kind], amount, max_rate=cap)
                 for kind, amount, cap in phases]))
        for index, (_phases, preds) in enumerate(task_specs):
            for pred in preds:
                built[index].depends_on(built[pred])
        return built

    return resources, tasks


class TestRandomDagEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(dag_specs())
    def test_random_dag_bitwise(self, spec):
        resources, tasks = _materialize(spec)
        legacy, vect = _both_engines(resources, tasks)
        _assert_bitwise_equal(legacy, vect)


# ---------------------------------------------------------------------
# Fault injection: capacity windows and crash kill/requeue ordering.
# ---------------------------------------------------------------------

class TestFaultEquivalence:
    def _plan(self):
        return FaultPlan(events=(
            FaultEvent(kind="straggler", time_s=0.5, duration_s=2.0,
                       severity=3.0),
            FaultEvent(kind="crash", time_s=2.0, duration_s=1.0),
            FaultEvent(kind="link_degrade", time_s=4.0,
                       duration_s=2.0, severity=0.5),
            FaultEvent(kind="crash", time_s=7.0, duration_s=0.5),
        ))

    def _resources(self):
        return {
            ResourceKind.NET: Resource(ResourceKind.NET, capacity=10.0),
            ResourceKind.GPU_SM: Resource(ResourceKind.GPU_SM,
                                          capacity=7.0),
        }

    def _tasks(self):
        out = []
        for i in range(8):
            task = SimTask(f"f{i}",
                           [Phase(ResourceKind.NET, 9.0 + i),
                            Phase(ResourceKind.GPU_SM, 4.0)])
            if i >= 4:
                task.depends_on(out[i - 4])
            out.append(task)
        return out

    def test_faulted_run_bitwise(self):
        results = []
        logs = []
        for vectorized in (False, True):
            injector = FaultInjector(self._plan())
            engine = Engine(self._resources(), vectorized=vectorized)
            results.append(engine.run(self._tasks(),
                                      keep_finish_times=True,
                                      record_tasks=True,
                                      injector=injector))
            logs.append([(event.kind, event.time_s, time_s, killed)
                         for event, time_s, killed in injector.log])
        _assert_bitwise_equal(results[0], results[1])
        # Kill/requeue ordering: same crashes applied at the same
        # instants, killing the same number of in-flight tasks.
        assert logs[1] == logs[0]
        assert any(killed > 0 for _k, _t0, _t1, killed in logs[0])


# ---------------------------------------------------------------------
# Real compiled plans: the exact workloads the bench suites gate.
# ---------------------------------------------------------------------

class TestCompiledPlanEquivalence:
    @pytest.mark.parametrize("scale,batch,iterations", [
        (0.05, 4000, 2),
        (0.2, 8000, 1),
    ])
    def test_bench_workload_bitwise(self, scale, batch, iterations):
        config = RunConfig(model="W&D", dataset="Product-1",
                           scale=scale, cluster="eflops:2",
                           batch_size=batch, iterations=iterations)
        planner = PicassoPlanner(config.picasso or PicassoConfig())
        plan = planner.plan(config.build_model(),
                            config.resolved_cluster(), batch)
        results = []
        for vectorized in (False, True):
            # compile_plan memoizes (graph, tasks) per fingerprint and
            # resets task state on every hit, so both loops see
            # identical fresh task objects.
            _graph, tasks, resources = compile_plan(plan, iterations)
            engine = Engine(resources, vectorized=vectorized)
            results.append(engine.run(tasks, keep_finish_times=True,
                                      record_tasks=True))
        _assert_bitwise_equal(results[0], results[1])


# ---------------------------------------------------------------------
# The walltime harness itself.
# ---------------------------------------------------------------------

class TestWalltimeHarness:
    def test_tick_clock_protocol(self):
        # Each run costs exactly one tick under the deterministic
        # clock, so the protocol's bookkeeping is fully pinned.
        record = measure_walltime(clock=_TickClock())
        assert record["warmup_s"] == [1.0]
        assert record["runs_s"] == [1.0, 1.0, 1.0]
        assert record["median_s"] == 1.0
        assert record["task_count"] > 0
        assert record["event_count"] > 0
        assert "within_budget" not in record

    def test_budget_verdict(self):
        over = measure_walltime(clock=_TickClock(), budget_s=0.5)
        assert over["budget_s"] == 0.5
        assert over["within_budget"] is False
        under = measure_walltime(clock=_TickClock(), budget_s=2.0)
        assert under["within_budget"] is True

    def test_protocol_validation(self):
        with pytest.raises(ValueError):
            measure_walltime(runs=0)
        with pytest.raises(ValueError):
            measure_walltime(warmup=-1)

    def test_snapshot_is_modeled_not_wall_clock(self):
        snapshot = bench_walltime()
        assert snapshot.name == "walltime"
        assert snapshot.metrics["timed_runs"] == 3
        assert snapshot.metrics["warmup_runs"] == 1
        assert snapshot.metrics["tick_median_s"] == 1.0
        assert all(value == 0.0
                   for value in snapshot.tolerances.values())
        assert snapshot.monitors["harness"]["budget_s"] \
            == WALLTIME_BUDGET_S
