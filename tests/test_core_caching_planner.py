"""Unit tests for cache planning, PicassoConfig and the planner."""

import pytest

from repro.core import PicassoConfig, PicassoPlanner
from repro.core.caching import batch_size_penalty, expected_hit_ratio
from repro.data import criteo, product1
from repro.hardware import eflops_cluster
from repro.models import wide_deep

_GIB = float(1 << 30)


class TestExpectedHitRatio:
    def test_monotone_in_cache_size(self):
        dataset = criteo(0.001)
        small = expected_hit_ratio(dataset, 0.01 * _GIB, 2048)
        large = expected_hit_ratio(dataset, 0.5 * _GIB, 2048)
        assert large.hit_ratio >= small.hit_ratio

    def test_zero_cache_zero_hits(self):
        plan = expected_hit_ratio(criteo(0.001), 0.0, 2048)
        assert plan.hit_ratio == 0.0

    def test_huge_cache_near_full_hits(self):
        dataset = criteo(0.0001)
        plan = expected_hit_ratio(dataset, 100 * _GIB, 2048)
        assert plan.hit_ratio > 0.95

    def test_rows_bounded_by_vocab(self):
        dataset = criteo(0.0001)
        plan = expected_hit_ratio(dataset, 100 * _GIB, 2048)
        for spec in dataset.fields:
            assert plan.rows_per_field[spec.name] <= spec.vocab_size

    def test_bytes_used_within_budget(self):
        plan = expected_hit_ratio(criteo(0.001), 0.1 * _GIB, 2048)
        assert plan.hot_bytes_used <= 0.1 * _GIB * 1.01

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_hit_ratio(criteo(0.001), -1.0, 2048)
        with pytest.raises(ValueError):
            expected_hit_ratio(criteo(0.001), 1.0, 0)


class TestBatchPenalty:
    def test_no_cache_no_penalty(self):
        assert batch_size_penalty(0.0, 16 * _GIB) == 1.0

    def test_bigger_cache_bigger_penalty(self):
        assert batch_size_penalty(4 * _GIB, 16 * _GIB) \
            < batch_size_penalty(1 * _GIB, 16 * _GIB)

    def test_floor(self):
        assert batch_size_penalty(100 * _GIB, 1 * _GIB) >= 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_size_penalty(1.0, 0.0)


class TestPicassoConfig:
    def test_defaults_enable_everything(self):
        config = PicassoConfig()
        assert config.enable_packing
        assert config.enable_interleaving
        assert config.enable_caching

    def test_base_disables_everything(self):
        config = PicassoConfig.base()
        assert not config.enable_packing
        assert not config.enable_interleaving
        assert not config.enable_caching

    def test_without(self):
        config = PicassoConfig().without("interleaving")
        assert config.enable_packing
        assert not config.enable_interleaving

    def test_without_unknown(self):
        with pytest.raises(ValueError):
            PicassoConfig().without("sorcery")

    def test_config_is_frozen(self):
        with pytest.raises(AttributeError):
            PicassoConfig().enable_packing = False


class TestPlanner:
    @pytest.fixture(scope="class")
    def model(self):
        return wide_deep(product1(0.001))

    def test_full_plan(self, model):
        planner = PicassoPlanner()
        plan = planner.plan(model, eflops_cluster(4), 2048)
        assert plan.strategy == "hybrid"
        assert plan.fuse_kernels
        assert plan.fine_grained_deps
        assert plan.micro_batches >= 2
        assert plan.interleave_sets >= 2
        assert plan.cache_hit_ratio is not None
        assert len(plan.groups) < model.dataset.num_fields

    def test_base_plan(self, model):
        planner = PicassoPlanner(PicassoConfig.base())
        plan = planner.plan(model, eflops_cluster(4), 2048)
        assert plan.strategy == "hybrid"
        assert not plan.fuse_kernels
        assert plan.micro_batches == 1
        assert plan.interleave_sets == 1
        assert plan.cache_hit_ratio is None
        assert len(plan.groups) == model.dataset.num_fields

    def test_no_packing_keeps_per_field_groups(self, model):
        planner = PicassoPlanner(PicassoConfig().without("packing"))
        plan = planner.plan(model, eflops_cluster(4), 2048)
        assert len(plan.groups) == model.dataset.num_fields
        assert plan.micro_batches >= 2  # interleaving still on

    def test_explicit_knobs_respected(self, model):
        config = PicassoConfig(interleave_sets=5, micro_batches=2)
        plan = PicassoPlanner(config).plan(model, eflops_cluster(4), 2048)
        assert plan.interleave_sets == 5
        assert plan.micro_batches == 2

    def test_excluded_fields_propagate(self, model):
        config = PicassoConfig(excluded_fields=("f0",))
        plan = PicassoPlanner(config).plan(model, eflops_cluster(4), 2048)
        assert any(group.excluded for group in plan.groups)

    def test_cache_staleness_discount(self, model):
        from repro.core.caching import expected_hit_ratio as ehr
        config = PicassoConfig()
        plan = PicassoPlanner(config).plan(model, eflops_cluster(4), 2048)
        oracle = ehr(model.dataset, config.hot_storage_bytes, 2048)
        assert plan.cache_hit_ratio < oracle.hit_ratio
