"""Smoke tests for the experiment harnesses (reduced sizes).

Each experiment's full-size run lives in ``benchmarks/``; here we
verify the harness code paths with small parameters.
"""

import pytest

from repro.experiments import (
    fig01_gpu_util,
    fig03_distribution,
    fig10_walltime,
    fig13_ips,
    fig15_scaling,
    tab03_auc,
    tab04_ablation,
    tab05_op_counts,
    tab06_hot_storage,
    tab07_twelve_models,
    tab08_feature_fields,
    tab10_model_scale,
)
from repro.experiments.common import (
    BENCHMARK_BATCH_SIZES,
    benchmark_model,
    format_table,
    mini_alibaba,
    mini_criteo,
    production_model,
    run_framework,
)
from repro.hardware import eflops_cluster


class TestCommon:
    def test_benchmark_models_resolve(self):
        for name in BENCHMARK_BATCH_SIZES:
            model, dataset = benchmark_model(name)
            assert model.name == name
            assert dataset.num_fields > 0

    def test_benchmark_model_cached(self):
        first, _ = benchmark_model("DLRM")
        second, _ = benchmark_model("DLRM")
        assert first is second

    def test_unknown_models_rejected(self):
        with pytest.raises(KeyError):
            benchmark_model("BERT")
        with pytest.raises(KeyError):
            production_model("BERT")

    def test_run_framework_dispatch(self):
        model, _dataset = benchmark_model("DLRM")
        cluster = eflops_cluster(2)
        for name in ("TF-PS", "PICASSO", "PICASSO(Base)"):
            report = run_framework(name, model, cluster, 1024,
                                   iterations=1)
            assert report.ips > 0

    def test_mini_datasets(self):
        assert mini_criteo(fields=5).num_fields == 5
        mini = mini_alibaba(profile_fields=2, behavior_fields=1,
                            seq_length=4)
        assert mini.ids_per_instance == 2 + 4

    def test_format_table(self):
        text = format_table([{"a": 1, "b": "x"}], ["a", "b"])
        assert "a" in text and "x" in text


class TestLightExperiments:
    def test_fig03(self):
        rows = fig03_distribution.run_id_distribution(
            sample_batches=1, batch_size=2000, scale=0.01)
        assert len(rows) == 5

    def test_tab05(self):
        rows = tab05_op_counts.run_op_counts(num_nodes=4)
        assert {row["model"] for row in rows} == {"W&D", "CAN", "MMoE"}

    def test_tab03_single_model(self):
        rows = [row for row in tab03_auc.run_auc(steps=10,
                                                 eval_batches=2)
                if row["model"] == "DLRM"]
        assert len(rows) == 4

    def test_paper_references_well_formed(self):
        assert fig01_gpu_util.paper_reference()["band"]
        assert len(tab04_ablation.paper_reference()) == 12
        assert len(tab07_twelve_models.paper_reference()) == 12
        assert len(tab10_model_scale.paper_reference()) == 4
        assert fig10_walltime.paper_reference()["speedup_vs_tf_ps"]

    def test_fig13_accelerations_math(self):
        rows = [
            {"model": "X", "system": "TF-PS", "ips": 100},
            {"model": "X", "system": "PICASSO", "ips": 400},
        ]
        accel = fig13_ips.accelerations(rows)
        assert accel[0]["picasso_vs_ps"] == 4.0

    def test_fig15_efficiency_math(self):
        rows = [
            {"model": "X", "workers": 1, "cluster_ips": 100},
            {"model": "X", "workers": 4, "cluster_ips": 300},
        ]
        eff = fig15_scaling.scaling_efficiency(rows)
        assert eff[0]["efficiency_pct"] == pytest.approx(75.0)

    def test_fig10_speedup_math(self):
        rows = [
            {"model": "X", "framework": "TF-PS", "ips": 10},
            {"model": "X", "framework": "PyTorch", "ips": 20},
            {"model": "X", "framework": "Horovod", "ips": 25},
            {"model": "X", "framework": "PICASSO", "ips": 50},
        ]
        speedups = fig10_walltime.speedups(rows)
        assert speedups[0]["vs_tf_ps"] == 5.0
        assert speedups[0]["vs_best_baseline"] == 2.0

    def test_tab08_small_sweep(self):
        rows = tab08_feature_fields.run_feature_field_sweep(
            multiples=(1, 2), batch_size=1024, iterations=1,
            num_nodes=2, scale=0.002)
        assert len(rows) == 2
        assert rows[0]["picasso_vs_ap_pct"] == 0.0

    def test_tab06_structure(self):
        rows = tab06_hot_storage.run_hot_storage_sweep(
            iterations=1, num_nodes=2, models=("W&D",))
        assert len(rows) == 5
        assert all("hit_ratio_pct" in row for row in rows)

    def test_tab07_subset(self):
        rows = tab07_twelve_models.run_twelve_models(
            iterations=1, num_nodes=2, scale=0.002, models=("LR", "DCN"))
        assert len(rows) == 2
