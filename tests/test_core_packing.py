"""Unit tests for D-Packing (Eq. 1)."""

import pytest

from repro.core.packing import (
    calc_vparam,
    pack_by_dimension,
    packed_embedding_count,
)
from repro.data import criteo, product1, product2
from repro.data.spec import DatasetSpec, FieldSpec
from repro.graph.builder import WorkloadStats


def _dataset(dims):
    return DatasetSpec(name="d", fields=tuple(
        FieldSpec(name=f"f{index}", vocab_size=10_000, embedding_dim=dim)
        for index, dim in enumerate(dims)))


class TestCalcVParam:
    def test_proportional_to_dim(self):
        narrow = calc_vparam([FieldSpec(name="a", vocab_size=100,
                                        embedding_dim=8)], 100)
        wide = calc_vparam([FieldSpec(name="b", vocab_size=100,
                                      embedding_dim=16)], 100)
        assert wide == pytest.approx(2 * narrow)

    def test_proportional_to_sequence_length(self):
        scalar = calc_vparam([FieldSpec(name="a", vocab_size=100,
                                        embedding_dim=8)], 100)
        seq = calc_vparam([FieldSpec(name="b", vocab_size=100,
                                     embedding_dim=8, seq_length=10)],
                          100)
        assert seq == pytest.approx(10 * scalar)

    def test_stats_deduplicate(self):
        field = FieldSpec(name="a", vocab_size=10, embedding_dim=8,
                          zipf_exponent=1.3)
        raw = calc_vparam([field], 1000)
        deduped = calc_vparam([field], 1000, WorkloadStats())
        assert deduped < raw

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            calc_vparam([], 0)


class TestPackByDimension:
    def test_fields_partitioned_exactly_once(self):
        dataset = product1(0.001)
        groups = pack_by_dimension(dataset, 1000)
        # Sharded packs repeat field sets with fractional shares, so
        # count distinct names weighted by shard fractions instead.
        weights = {}
        for group in groups:
            for spec in group.fields:
                weights[spec.name] = weights.get(spec.name, 0.0) \
                    + group.shard_fraction
        full_fields = {spec.name for spec in dataset.fields}
        covered = {name for name, weight in weights.items()
                   if weight > 0}
        assert covered == full_fields

    def test_groups_share_dimension(self):
        groups = pack_by_dimension(_dataset([8, 8, 16, 16, 16]), 1000)
        for group in groups:
            dims = {spec.embedding_dim for spec in group.fields}
            assert len(dims) == 1

    def test_packing_collapses_fields(self):
        dataset = product1(0.001)
        groups = pack_by_dimension(dataset, 1000)
        assert len(groups) < dataset.num_fields / 4

    def test_uniform_dim_dataset_packs_small(self):
        dataset = criteo(0.001)  # all dim 128
        count = packed_embedding_count(dataset, 1000)
        assert count <= 4

    def test_heavy_pack_is_sharded(self):
        # One huge-dim pack vs one tiny pack: the huge one must split.
        dataset = _dataset([4, 4, 4, 4, 64, 64, 64, 64])
        groups = pack_by_dimension(dataset, 1000)
        wide_groups = [g for g in groups if g.embedding_dim == 64]
        assert len(wide_groups) > 1

    def test_excluded_fields_get_own_groups(self):
        dataset = _dataset([8, 8, 8])
        groups = pack_by_dimension(dataset, 1000,
                                   excluded_fields=("f0",))
        excluded = [g for g in groups if g.excluded]
        assert len(excluded) == 1
        assert excluded[0].fields[0].name == "f0"
        packed = [g for g in groups if not g.excluded]
        assert sum(len(g.fields) for g in packed) == 2

    def test_production_counts_in_paper_range(self):
        # Paper Tab. V: 16 / 19 / 11 packed embeddings; we assert the
        # same order of magnitude.
        for dataset_fn in (product1, product2):
            count = packed_embedding_count(dataset_fn(0.001), 10_000)
            assert 3 <= count <= 40


class TestShardSplitting:
    def test_fractional_split_when_few_fields(self):
        dataset = _dataset([4, 128])
        groups = pack_by_dimension(dataset, 1000)
        wide = [g for g in groups if g.embedding_dim == 128]
        assert len(wide) >= 2
        assert sum(g.shard_fraction for g in wide) == pytest.approx(1.0)

    def test_field_split_balances_weight(self):
        dims = [4] + [64] * 8
        groups = pack_by_dimension(_dataset(dims), 1000)
        wide = [g for g in groups if g.embedding_dim == 64]
        sizes = sorted(len(g.fields) for g in wide)
        assert sizes[-1] - sizes[0] <= 1  # balanced deal
