"""Tests for trace export, topology-aware comm, and the CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.distributed.topology import (
    effective_worker_bandwidth,
    plan_nic_assignments,
    stagger_offsets,
)
from repro.hardware import eflops_cluster, gn6e_cluster
from repro.sim import Engine, Phase, Resource, ResourceKind, SimTask
from repro.sim.export import ascii_gantt, busy_summary, timeline_json


def _result():
    resources = {
        ResourceKind.NET: Resource(ResourceKind.NET, 10.0),
        ResourceKind.GPU_SM: Resource(ResourceKind.GPU_SM, 100.0),
    }
    first = SimTask("a", [Phase(ResourceKind.NET, 50.0)])
    second = SimTask("b", [Phase(ResourceKind.GPU_SM, 200.0)])
    second.depends_on(first)
    return Engine(resources).run([first, second])


class TestExport:
    def test_timeline_json_schema(self):
        payload = json.loads(timeline_json(_result(), bucket=1.0))
        assert payload["makespan"] == pytest.approx(7.0)
        assert "net" in payload["buckets"]
        series = payload["buckets"]["net"]["utilization"]
        assert series[0] == pytest.approx(1.0)
        assert series[-1] == pytest.approx(0.0)

    def test_timeline_json_final_partial_bucket(self):
        # makespan 7.0 with bucket 2.0 -> 4 buckets; the last covers
        # only [6, 7) and must be normalized by that 1 s, not by 2 s.
        payload = json.loads(timeline_json(_result(), bucket=2.0))
        series = payload["buckets"]["gpu_sm"]["utilization"]
        assert len(series) == 4
        # gpu_sm runs 5..7 at full rate: bucket [4,6) is half busy,
        # and the trailing partial bucket [6,7) is fully busy.
        assert series[-2] == pytest.approx(0.5)
        assert series[-1] == pytest.approx(1.0)

    def test_ascii_gantt_rows(self):
        chart = ascii_gantt(_result(), width=20)
        lines = chart.splitlines()
        assert any(line.startswith("net") for line in lines)
        assert any(line.startswith("gpu_sm") for line in lines)

    def test_ascii_gantt_width_validation(self):
        with pytest.raises(ValueError):
            ascii_gantt(_result(), width=2)

    def test_busy_summary(self):
        summary = busy_summary(_result())
        assert summary["net"]["busy_fraction"] == pytest.approx(5 / 7,
                                                                abs=0.01)
        assert 0 <= summary["gpu_sm"]["mean_utilization"] <= 1


class TestTopologyAwareComm:
    def test_assignments_cover_all_workers(self):
        cluster = gn6e_cluster(1)  # 8 GPUs per node
        assignments = plan_nic_assignments(cluster, nics_per_node=2)
        assert len(assignments) == 8
        assert {a.nic_index for a in assignments} == {0, 1}

    def test_shares_sum_to_one_per_nic(self):
        assignments = plan_nic_assignments(gn6e_cluster(1),
                                           nics_per_node=2)
        per_nic: dict = {}
        for assignment in assignments:
            per_nic.setdefault(assignment.nic_index, 0.0)
            per_nic[assignment.nic_index] += assignment.bandwidth_share
        for total in per_nic.values():
            assert total == pytest.approx(1.0)

    def test_single_gpu_node_trivial(self):
        assignments = plan_nic_assignments(eflops_cluster(1))
        assert len(assignments) == 1
        assert assignments[0].bandwidth_share == 1.0

    def test_topology_awareness_beats_contention(self):
        aware = effective_worker_bandwidth(gn6e_cluster(1),
                                           topology_aware=True)
        naive = effective_worker_bandwidth(gn6e_cluster(1),
                                           topology_aware=False)
        assert aware > naive

    def test_more_nics_more_bandwidth(self):
        one = effective_worker_bandwidth(gn6e_cluster(1), nics_per_node=1)
        two = effective_worker_bandwidth(gn6e_cluster(1), nics_per_node=2)
        assert two == pytest.approx(2 * one)

    def test_stagger_offsets(self):
        assignments = plan_nic_assignments(gn6e_cluster(1),
                                           nics_per_node=4)
        offsets = stagger_offsets(assignments, burst_seconds=0.01)
        assert offsets[0] == 0.0
        assert max(offsets.values()) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_nic_assignments(gn6e_cluster(1), nics_per_node=0)
        with pytest.raises(ValueError):
            stagger_offsets([], burst_seconds=-1.0)


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["list"])
        assert args.command == "list"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "DLRM" in out
        assert "Criteo" in out

    def test_simulate_command(self, capsys):
        code = main(["simulate", "--model", "DLRM", "--dataset",
                     "Criteo", "--scale", "0.001", "--cluster",
                     "eflops:2", "--batch", "512", "--iterations", "1"])
        assert code == 0
        assert "ips" in capsys.readouterr().out

    def test_train_command(self, capsys):
        code = main(["train", "--variant", "wdl", "--steps", "5",
                     "--batch", "128"])
        assert code == 0
        assert "AUC" in capsys.readouterr().out

    def test_gantt_command(self, capsys):
        code = main(["gantt", "--model", "DLRM", "--dataset", "Criteo",
                     "--scale", "0.001", "--cluster", "eflops:2",
                     "--batch", "512", "--iterations", "1",
                     "--width", "30"])
        assert code == 0
        assert "|" in capsys.readouterr().out

    def test_profile_command(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        code = main(["profile", "--model", "DLRM", "--dataset",
                     "Criteo", "--scale", "0.001", "--cluster",
                     "eflops:2", "--batch", "512", "--iterations", "1",
                     "--output", str(trace_path), "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "coverage" in out
        payload = json.loads(trace_path.read_text())
        assert payload["traceEvents"]

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--model", "BERT"])

    def test_bad_cluster_spec(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--cluster", "tpu:4"])
