"""Tests for static graph analysis (critical path, bottlenecks)."""

import pytest

from repro.graph import Graph, Op, OpKind
from repro.graph.analysis import (
    bottleneck_report,
    critical_path_seconds,
    dominant_resource,
    iteration_time_lower_bound,
    op_duration_lower_bound,
    resource_work_summary,
)
from repro.sim.resource import Phase, ResourceKind

CAPACITIES = {
    ResourceKind.GPU_SM: 100.0,
    ResourceKind.NET: 10.0,
    ResourceKind.LAUNCH: 1.0,
}


def _op(name, kind, resource, work, micro=0):
    return Op(name=name, kind=kind,
              phases=[Phase(resource, work)], micro_ops=micro)


def _two_stage_graph():
    graph = Graph()
    comm = graph.add(_op("comm", OpKind.SHUFFLE, ResourceKind.NET, 50.0))
    compute = graph.add(_op("compute", OpKind.MLP,
                            ResourceKind.GPU_SM, 200.0))
    graph.add_edge(comm, compute)
    return graph


class TestOpDuration:
    def test_phase_time(self):
        op = _op("x", OpKind.MLP, ResourceKind.GPU_SM, 200.0)
        assert op_duration_lower_bound(op, CAPACITIES, 0.0) \
            == pytest.approx(2.0)

    def test_launch_cost_added(self):
        op = _op("x", OpKind.MLP, ResourceKind.GPU_SM, 0.0, micro=100)
        assert op_duration_lower_bound(op, CAPACITIES, 1e-3) \
            == pytest.approx(0.1)

    def test_max_rate_respected(self):
        op = Op(name="x", kind=OpKind.MLP,
                phases=[Phase(ResourceKind.GPU_SM, 200.0, max_rate=50.0)])
        assert op_duration_lower_bound(op, CAPACITIES, 0.0) \
            == pytest.approx(4.0)


class TestSummaries:
    def test_resource_work_summary(self):
        summary = resource_work_summary(_two_stage_graph(), CAPACITIES)
        assert summary[ResourceKind.NET]["work"] == 50.0
        assert summary[ResourceKind.NET]["seconds"] == pytest.approx(5.0)
        assert summary[ResourceKind.GPU_SM]["seconds"] \
            == pytest.approx(2.0)

    def test_dominant_resource(self):
        kind, seconds = dominant_resource(_two_stage_graph(), CAPACITIES)
        assert kind is ResourceKind.NET
        assert seconds == pytest.approx(5.0)

    def test_launch_can_dominate(self):
        graph = Graph()
        graph.add(_op("tiny", OpKind.MLP, ResourceKind.GPU_SM, 1.0,
                      micro=1_000_000))
        kind, seconds = dominant_resource(graph, CAPACITIES,
                                          launch_seconds_per_micro_op=1e-4)
        assert kind is ResourceKind.LAUNCH
        assert seconds == pytest.approx(100.0)


class TestCriticalPath:
    def test_chain_sums(self):
        assert critical_path_seconds(_two_stage_graph(), CAPACITIES) \
            == pytest.approx(7.0)

    def test_parallel_branches_take_max(self):
        graph = Graph()
        source = graph.add(_op("s", OpKind.MLP, ResourceKind.GPU_SM,
                               100.0))
        short = graph.add(_op("short", OpKind.MLP, ResourceKind.GPU_SM,
                              100.0))
        long_op = graph.add(_op("long", OpKind.MLP, ResourceKind.GPU_SM,
                                500.0))
        graph.add_edge(source, short)
        graph.add_edge(source, long_op)
        assert critical_path_seconds(graph, CAPACITIES) \
            == pytest.approx(6.0)

    def test_lower_bound_is_max_of_bounds(self):
        graph = _two_stage_graph()
        bound = iteration_time_lower_bound(graph, CAPACITIES)
        assert bound == pytest.approx(7.0)  # chain > any resource alone

    def test_simulation_respects_lower_bound(self):
        """The engine can never beat the analytic bound."""
        from repro.sim import Engine, Resource
        graph = _two_stage_graph()
        bound = iteration_time_lower_bound(graph, CAPACITIES)
        resources = {
            kind: Resource(kind, capacity)
            for kind, capacity in CAPACITIES.items()
        }
        result = Engine(resources).run(graph.to_sim_tasks(0.0))
        assert result.makespan >= bound - 1e-9


class TestReport:
    def test_report_fields(self):
        report = bottleneck_report(_two_stage_graph(), CAPACITIES)
        assert report["dominant_resource"] == "net"
        assert report["lower_bound_seconds"] == pytest.approx(7.0)
        assert "gpu_sm" in report["per_resource_seconds"]

    def test_report_on_builder_graph(self):
        from repro.data import criteo
        from repro.graph import (ExecutionPlan, IterationGraphBuilder,
                                 groups_per_field)
        from repro.hardware import eflops_cluster
        from repro.models import dlrm
        from repro.sim.engine import build_node_resources
        model = dlrm(criteo(0.001))
        plan = ExecutionPlan(model=model, cluster=eflops_cluster(4),
                             batch_size=1024, strategy="mp",
                             groups=groups_per_field(model.dataset))
        graph = IterationGraphBuilder(plan).build(1)
        resources = build_node_resources(plan.cluster.node)
        capacities = {kind: res.capacity
                      for kind, res in resources.items()}
        report = bottleneck_report(
            graph, capacities,
            launch_seconds_per_micro_op=plan.cost.launch_per_micro_op)
        assert report["lower_bound_seconds"] > 0
