"""Unit tests for the bounded-Zipf samplers."""

import numpy as np
import pytest

from repro.data.spec import FieldSpec
from repro.data.synthetic import BoundedZipf, FieldSampler, sample_field_batch


class TestBoundedZipf:
    def test_ids_within_vocabulary(self):
        zipf = BoundedZipf(1000, 1.1)
        ids = zipf.sample(10_000, np.random.default_rng(0))
        assert ids.min() >= 0
        assert ids.max() < 1000

    def test_skew_favors_low_ranks(self):
        zipf = BoundedZipf(100_000, 1.2)
        ids = zipf.sample(50_000, np.random.default_rng(0))
        head = np.mean(ids < 1000)
        assert head > 0.3  # 1% of vocab covers >30% of draws

    def test_higher_exponent_more_skew(self):
        rng = np.random.default_rng(0)
        mild = BoundedZipf(100_000, 1.01).sample(50_000, rng)
        rng = np.random.default_rng(0)
        steep = BoundedZipf(100_000, 1.5).sample(50_000, rng)
        assert np.mean(steep < 100) > np.mean(mild < 100)

    def test_single_id_vocabulary(self):
        zipf = BoundedZipf(1, 1.1)
        ids = zipf.sample(100, np.random.default_rng(0))
        assert np.all(ids == 0)

    def test_zero_size(self):
        zipf = BoundedZipf(10, 1.1)
        assert zipf.sample(0, np.random.default_rng(0)).size == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BoundedZipf(10, 1.1).sample(-1, np.random.default_rng(0))

    @pytest.mark.parametrize("vocab,exponent", [(0, 1.1), (10, 0.0)])
    def test_validation(self, vocab, exponent):
        with pytest.raises(ValueError):
            BoundedZipf(vocab, exponent)

    def test_exponent_one_special_case(self):
        zipf = BoundedZipf(1000, 1.0)
        ids = zipf.sample(1000, np.random.default_rng(0))
        assert ids.max() < 1000

    def test_probability_sums_to_one(self):
        # The continuous-CDF normalization is an approximation of the
        # discrete zeta sum; ~15% is its documented accuracy envelope.
        zipf = BoundedZipf(500, 1.1)
        probs = zipf.probability(np.arange(500))
        assert probs.sum() == pytest.approx(1.0, rel=0.15)

    def test_probability_decreasing(self):
        zipf = BoundedZipf(500, 1.1)
        probs = zipf.probability(np.arange(500))
        assert np.all(np.diff(probs) <= 0)


class TestFieldSampler:
    def _field(self, **kwargs):
        defaults = dict(name="f", vocab_size=10_000, embedding_dim=8)
        defaults.update(kwargs)
        return FieldSpec(**defaults)

    def test_batch_shape_scalar(self):
        sampler = FieldSampler(self._field())
        assert sampler.sample_batch(128).shape == (128,)

    def test_batch_shape_sequence(self):
        sampler = FieldSampler(self._field(seq_length=20))
        assert sampler.sample_batch(128).shape == (128 * 20,)

    def test_deterministic_given_seed(self):
        first = FieldSampler(self._field(), seed=5).sample_batch(64)
        second = FieldSampler(self._field(), seed=5).sample_batch(64)
        assert np.array_equal(first, second)

    def test_different_seeds_differ(self):
        first = FieldSampler(self._field(), seed=1).sample_batch(256)
        second = FieldSampler(self._field(), seed=2).sample_batch(256)
        assert not np.array_equal(first, second)

    def test_fields_have_distinct_hot_ids(self):
        one = FieldSampler(self._field(name="a"), seed=0)
        two = FieldSampler(self._field(name="b"), seed=0)
        hot_a = np.bincount(one.sample_batch(5000),
                            minlength=10_000).argmax()
        hot_b = np.bincount(two.sample_batch(5000),
                            minlength=10_000).argmax()
        assert hot_a != hot_b

    def test_ids_in_range(self):
        sampler = FieldSampler(self._field(vocab_size=77))
        ids = sampler.sample_batch(1000)
        assert ids.min() >= 0
        assert ids.max() < 77


class TestConvenience:
    def test_sample_field_batch(self):
        field = FieldSpec(name="f", vocab_size=100, embedding_dim=4,
                          seq_length=3)
        ids = sample_field_batch(field, 10, np.random.default_rng(0))
        assert ids.shape == (30,)
