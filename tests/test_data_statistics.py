"""Unit tests for distribution statistics (Fig. 3 machinery)."""

import numpy as np
import pytest

from repro.data.spec import FieldSpec
from repro.data.statistics import (
    analytic_coverage,
    coverage_curve,
    coverage_of_top_fraction,
    dataset_coverage_summary,
    expected_unique_fraction,
)
from repro.data import criteo


class TestCoverageCurve:
    def test_uniform_ids(self):
        ids = np.arange(100)
        id_frac, data_frac = coverage_curve(ids)
        # Uniform data: coverage curve is the diagonal.
        assert np.allclose(id_frac, data_frac)

    def test_skewed_ids_bow_above_diagonal(self):
        ids = np.concatenate([np.zeros(90, dtype=int),
                              np.arange(1, 11)])
        id_frac, data_frac = coverage_curve(ids)
        assert np.all(data_frac >= id_frac - 1e-12)

    def test_empty(self):
        id_frac, data_frac = coverage_curve(np.array([], dtype=int))
        assert id_frac.size == 0

    def test_point_cap(self):
        ids = np.arange(1000)
        id_frac, _ = coverage_curve(ids, points=50)
        assert len(id_frac) == 50


class TestTopFraction:
    def test_single_hot_id(self):
        ids = np.concatenate([np.zeros(99, dtype=int), np.array([1])])
        assert coverage_of_top_fraction(ids, 0.5) == pytest.approx(0.99)

    def test_full_fraction_is_total(self):
        ids = np.arange(10)
        assert coverage_of_top_fraction(ids, 1.0) == pytest.approx(1.0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            coverage_of_top_fraction(np.arange(3), 0.0)

    def test_empty(self):
        assert coverage_of_top_fraction(np.array([], dtype=int)) == 0.0


class TestAnalyticCoverage:
    def test_matches_empirical_roughly(self):
        field = FieldSpec(name="f", vocab_size=50_000, embedding_dim=4,
                          zipf_exponent=1.2)
        analytic = analytic_coverage(field, 0.2)
        assert 0.5 < analytic < 1.0

    def test_more_skew_more_coverage(self):
        mild = FieldSpec(name="a", vocab_size=50_000, embedding_dim=4,
                         zipf_exponent=1.01)
        steep = FieldSpec(name="b", vocab_size=50_000, embedding_dim=4,
                          zipf_exponent=1.4)
        assert analytic_coverage(steep, 0.2) > analytic_coverage(mild, 0.2)

    def test_dataset_summary_covers_all_fields(self):
        dataset = criteo(0.001)
        summary = dataset_coverage_summary(dataset)
        assert set(summary) == {spec.name for spec in dataset.fields}


class TestUniqueFraction:
    def test_bounded(self):
        field = FieldSpec(name="f", vocab_size=1_000, embedding_dim=4,
                          zipf_exponent=1.2)
        fraction = expected_unique_fraction(field, 10_000)
        assert 0.0 < fraction <= 1.0

    def test_small_vocab_saturates(self):
        field = FieldSpec(name="f", vocab_size=10, embedding_dim=4)
        fraction = expected_unique_fraction(field, 10_000)
        assert fraction <= 10 / 10_000 * 1.5

    def test_zero_batch(self):
        field = FieldSpec(name="f", vocab_size=10, embedding_dim=4)
        assert expected_unique_fraction(field, 0) == 1.0

    def test_bigger_batches_lower_fraction(self):
        field = FieldSpec(name="f", vocab_size=100_000, embedding_dim=4,
                          zipf_exponent=1.1)
        small = expected_unique_fraction(field, 1_000)
        large = expected_unique_fraction(field, 100_000)
        assert large < small
