"""Gradient checks for BatchNorm and the residual block."""

import numpy as np
import pytest

from repro.nn.normalization import BatchNorm, ResidualBlock


def numerical_grad(func, array, epsilon=1e-6):
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = func()
        flat[index] = original - epsilon
        minus = func()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return grad


class TestBatchNorm:
    def test_training_output_is_normalized(self):
        bn = BatchNorm(4, "bn")
        x = np.random.default_rng(0).standard_normal((64, 4)) * 5 + 3
        out = bn.forward(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_statistics_track_batches(self):
        bn = BatchNorm(2, "bn", momentum=0.5)
        x = np.full((16, 2), 10.0)
        bn.forward(x)
        assert np.all(bn.running_mean > 0)

    def test_eval_mode_uses_running_stats(self):
        bn = BatchNorm(2, "bn", momentum=0.0)
        rng = np.random.default_rng(0)
        bn.forward(rng.standard_normal((64, 2)) + 5.0)
        bn.training = False
        single = bn.forward(np.array([[5.0, 5.0]]))
        # Normalizing the mean input gives ~0 in eval mode.
        assert np.allclose(single, 0.0, atol=0.5)

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        bn = BatchNorm(3, "bn")
        x = rng.standard_normal((8, 3))
        upstream = rng.standard_normal((8, 3))

        def loss():
            return float((bn.forward(x) * upstream).sum())

        expected = numerical_grad(loss, x)
        bn.forward(x)
        grad = bn.backward(upstream)
        assert np.allclose(grad, expected, atol=1e-4)

    def test_gamma_beta_gradients_match_numerical(self):
        rng = np.random.default_rng(2)
        bn = BatchNorm(3, "bn")
        x = rng.standard_normal((8, 3))
        upstream = rng.standard_normal((8, 3))

        def loss():
            return float((bn.forward(x) * upstream).sum())

        expected_gamma = numerical_grad(loss, bn.gamma)
        expected_beta = numerical_grad(loss, bn.beta)
        bn.zero_grad()
        bn.forward(x)
        bn.backward(upstream)
        assert np.allclose(bn.grad_gamma, expected_gamma, atol=1e-4)
        assert np.allclose(bn.grad_beta, expected_beta, atol=1e-4)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            BatchNorm(2, "bn").backward(np.ones((1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchNorm(0, "bn")
        with pytest.raises(ValueError):
            BatchNorm(2, "bn", momentum=1.0)

    def test_parameters(self):
        bn = BatchNorm(2, "bn")
        assert set(bn.parameters()) == {"bn.gamma", "bn.beta"}


class TestResidualBlock:
    def test_forward_shape(self):
        block = ResidualBlock(4, "res", np.random.default_rng(0))
        out = block.forward(np.random.default_rng(1)
                            .standard_normal((8, 4)))
        assert out.shape == (8, 4)

    def test_identity_component(self):
        """Zeroed branch weights leave relu(x) (the skip path)."""
        block = ResidualBlock(3, "res", np.random.default_rng(0))
        block.second.weight[:] = 0.0
        block.second.bias[:] = 0.0
        x = np.abs(np.random.default_rng(1).standard_normal((4, 3)))
        assert np.allclose(block.forward(x), x)

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(3)
        block = ResidualBlock(3, "res", rng)
        x = rng.standard_normal((4, 3))
        upstream = rng.standard_normal((4, 3))

        def loss():
            return float((block.forward(x) * upstream).sum())

        expected = numerical_grad(loss, x)
        block.forward(x)
        grad = block.backward(upstream)
        assert np.allclose(grad, expected, atol=1e-4)

    def test_weight_gradients_match_numerical(self):
        rng = np.random.default_rng(4)
        block = ResidualBlock(2, "res", rng)
        x = rng.standard_normal((4, 2))
        upstream = rng.standard_normal((4, 2))

        def loss():
            return float((block.forward(x) * upstream).sum())

        expected = numerical_grad(loss, block.first.weight)
        block.zero_grad()
        block.forward(x)
        block.backward(upstream)
        assert np.allclose(block.first.grad_weight, expected, atol=1e-4)

    def test_parameters_cover_both_layers(self):
        block = ResidualBlock(2, "res", np.random.default_rng(0))
        names = set(block.parameters())
        assert "res.fc1.weight" in names
        assert "res.fc2.bias" in names

    def test_backward_before_forward(self):
        block = ResidualBlock(2, "res", np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            block.backward(np.ones((1, 2)))
