"""Unit tests for the iteration-graph builder (the cost model)."""

import pytest

from repro.data import criteo
from repro.graph import (
    EmbeddingGroup,
    ExecutionPlan,
    IterationGraphBuilder,
    WorkloadStats,
    groups_per_field,
)
from repro.hardware import eflops_cluster, gn6e_cluster
from repro.models import dlrm, wide_deep
from repro.sim.resource import ResourceKind


@pytest.fixture(scope="module")
def small_model():
    return dlrm(criteo(0.001))


def _plan(model, **overrides):
    defaults = dict(
        model=model,
        cluster=eflops_cluster(4),
        batch_size=1024,
        strategy="mp",
        groups=groups_per_field(model.dataset),
    )
    defaults.update(overrides)
    return ExecutionPlan(**defaults)


class TestPlanValidation:
    def test_unknown_strategy(self, small_model):
        with pytest.raises(ValueError):
            _plan(small_model, strategy="magic")

    def test_bad_batch(self, small_model):
        with pytest.raises(ValueError):
            _plan(small_model, batch_size=0)

    def test_bad_micro_batches(self, small_model):
        with pytest.raises(ValueError):
            _plan(small_model, micro_batches=0)

    def test_bad_cache_ratio(self, small_model):
        with pytest.raises(ValueError):
            _plan(small_model, cache_hit_ratio=1.5)

    def test_bad_scope(self, small_model):
        with pytest.raises(ValueError):
            _plan(small_model, micro_batch_scope="sideways")

    def test_strategy_flags(self, small_model):
        assert _plan(small_model, strategy="hybrid").uses_alltoall
        assert not _plan(small_model, strategy="dp").uses_alltoall
        assert _plan(small_model, strategy="ps-async").is_async


class TestEmbeddingGroup:
    def test_requires_fields(self):
        with pytest.raises(ValueError):
            EmbeddingGroup(name="g", fields=())

    def test_shard_fraction_bounds(self, small_model):
        field = small_model.dataset.fields[0]
        with pytest.raises(ValueError):
            EmbeddingGroup(name="g", fields=(field,), shard_fraction=0.0)

    def test_ids_per_batch_respects_shard(self, small_model):
        field = small_model.dataset.fields[0]
        full = EmbeddingGroup(name="g", fields=(field,))
        half = EmbeddingGroup(name="h", fields=(field,),
                              shard_fraction=0.5)
        assert half.ids_per_batch(100) == full.ids_per_batch(100) / 2

    def test_groups_per_field_covers_dataset(self, small_model):
        groups = groups_per_field(small_model.dataset)
        assert len(groups) == small_model.dataset.num_fields
        assert all(not group.is_packed for group in groups)


class TestGraphConstruction:
    def test_graph_is_acyclic(self, small_model):
        graph = IterationGraphBuilder(_plan(small_model)).build(2)
        graph.validate()

    def test_iterations_scale_ops(self, small_model):
        builder = IterationGraphBuilder(_plan(small_model))
        one = IterationGraphBuilder(_plan(small_model)).build(1)
        two = builder.build(2)
        assert len(two) == pytest.approx(2 * len(one), rel=0.05)

    def test_micro_batches_multiply_ops(self, small_model):
        base = IterationGraphBuilder(_plan(small_model)).build(1)
        sliced = IterationGraphBuilder(
            _plan(small_model, micro_batches=3)).build(1)
        assert len(sliced) > 2 * len(base)

    def test_fusion_reduces_ops_and_micro_ops(self, small_model):
        plain = IterationGraphBuilder(_plan(small_model)).build(1)
        fused = IterationGraphBuilder(
            _plan(small_model, fuse_kernels=True)).build(1)
        assert len(fused) < len(plain)
        assert fused.total_micro_ops < plain.total_micro_ops

    def test_ps_strategy_has_pull_push_no_shuffle(self, small_model):
        graph = IterationGraphBuilder(
            _plan(small_model, strategy="ps-async")).build(1)
        kinds = {op.kind for op in graph.ops}
        assert "ps_pull" in kinds
        assert "ps_push" in kinds
        assert "shuffle" not in kinds

    def test_mp_strategy_has_shuffle(self, small_model):
        graph = IterationGraphBuilder(_plan(small_model)).build(1)
        kinds = {op.kind for op in graph.ops}
        assert "shuffle" in kinds

    def test_dp_strategy_allreduces_embeddings(self, small_model):
        graph = IterationGraphBuilder(
            _plan(small_model, strategy="dp")).build(1)
        names = [op.name for op in graph.ops
                 if op.kind == "allreduce"]
        assert any("grad_allreduce" in name for name in names)

    def test_single_worker_skips_collectives(self, small_model):
        graph = IterationGraphBuilder(
            _plan(small_model, cluster=eflops_cluster(1))).build(1)
        kinds = {op.kind for op in graph.ops}
        assert "shuffle" not in kinds
        assert "allreduce" not in kinds

    def test_segment_reduce_only_for_sequences(self, small_model):
        graph = IterationGraphBuilder(_plan(small_model)).build(1)
        # Criteo has no sequence fields.
        assert not [op for op in graph.ops
                    if op.kind == "segment_reduce"]

    def test_sequence_dataset_gets_segment_reduce(self):
        from repro.data import alibaba
        seq_model = wide_deep(alibaba(0.001))
        plan = _plan(seq_model)
        graph = IterationGraphBuilder(plan).build(1)
        assert [op for op in graph.ops if op.kind == "segment_reduce"]

    def test_interleave_sets_add_ordering_edges(self, small_model):
        groups = groups_per_field(small_model.dataset)
        for index, group in enumerate(groups):
            group.interleave_set = index % 3
        plain = IterationGraphBuilder(
            _plan(small_model, interleave_sets=1)).build(1)
        ordered_plan = _plan(small_model, interleave_sets=3,
                             groups=groups)
        ordered = IterationGraphBuilder(ordered_plan).build(1)
        count_edges = lambda graph: sum(
            len(graph.successors(op)) for op in graph.ops)
        assert count_edges(ordered) > count_edges(plain)


class TestCosts:
    def test_cache_reduces_pcie_work(self, small_model):
        cold = IterationGraphBuilder(_plan(small_model)).build(1)
        cached = IterationGraphBuilder(
            _plan(small_model, cache_hit_ratio=0.8)).build(1)
        pcie = lambda graph: sum(op.total_work(ResourceKind.PCIE)
                                 for op in graph.ops)
        assert pcie(cached) < pcie(cold)

    def test_more_workers_more_network(self, small_model):
        few = IterationGraphBuilder(
            _plan(small_model, cluster=eflops_cluster(2))).build(1)
        many = IterationGraphBuilder(
            _plan(small_model, cluster=eflops_cluster(64))).build(1)
        net = lambda graph: sum(op.total_work(ResourceKind.NET)
                                for op in graph.ops)
        assert net(many) > net(few)

    def test_nvlink_used_on_multi_gpu_nodes(self, small_model):
        plan = _plan(small_model, cluster=gn6e_cluster(2))
        graph = IterationGraphBuilder(plan).build(1)
        nvlink = sum(op.total_work(ResourceKind.NVLINK)
                     for op in graph.ops)
        assert nvlink > 0

    def test_io_compression_shrinks_wire(self, small_model):
        plain = IterationGraphBuilder(_plan(small_model)).build(1)
        packed = IterationGraphBuilder(
            _plan(small_model, io_compression=0.5)).build(1)
        wire = lambda graph: sum(
            op.total_work(ResourceKind.NET) for op in graph.ops
            if op.kind == "io_read")
        assert wire(packed) == pytest.approx(wire(plain) / 2)

    def test_activation_bytes_divided_by_micro_batches(self, small_model):
        whole = IterationGraphBuilder(_plan(small_model))
        sliced = IterationGraphBuilder(
            _plan(small_model, micro_batches=4))
        assert sliced.activation_bytes() < whole.activation_bytes()

    def test_build_rejects_zero_iterations(self, small_model):
        with pytest.raises(ValueError):
            IterationGraphBuilder(_plan(small_model)).build(0)


class TestWorkloadStats:
    def test_cache_is_shared_across_same_distribution(self):
        stats = WorkloadStats()
        dataset = criteo(0.001)
        first = stats.unique_fraction(dataset.fields[0], 1000)
        again = stats.unique_fraction(dataset.fields[0], 1000)
        assert first == again

    def test_group_unique_ids_positive(self):
        stats = WorkloadStats()
        dataset = criteo(0.001)
        group = EmbeddingGroup(name="g", fields=tuple(dataset.fields[:3]))
        unique = stats.group_unique_ids(group, 512)
        assert 0 < unique <= 3 * 512
