"""Unit tests for the hardware specification layer."""

import pytest

from repro.hardware import (
    EFLOPS_NODE,
    GN6E_NODE,
    GPU_V100_SXM2,
    NET_RDMA_100G,
    NET_TCP_32G,
    eflops_cluster,
    gn6e_cluster,
)
from repro.hardware.specs import LinkSpec, gbps, gib, gbytes_per_s


class TestUnitHelpers:
    def test_gbps_converts_bits_to_bytes(self):
        assert gbps(8) == pytest.approx(1e9)

    def test_gib(self):
        assert gib(1) == 1 << 30

    def test_gbytes_per_s(self):
        assert gbytes_per_s(1.5) == pytest.approx(1.5e9)


class TestPresets:
    def test_v100_specs_are_plausible(self):
        assert GPU_V100_SXM2.sm_count == 80
        assert 10e12 < GPU_V100_SXM2.fp32_flops < 20e12
        assert GPU_V100_SXM2.hbm_bytes == gib(32)

    def test_network_presets_derate_line_rate(self):
        assert NET_TCP_32G.bandwidth < gbps(32)
        assert NET_RDMA_100G.bandwidth < gbps(100)
        assert NET_RDMA_100G.latency < NET_TCP_32G.latency

    def test_gn6e_node_matches_tab1(self):
        assert GN6E_NODE.gpus_per_node == 8
        assert GN6E_NODE.has_nvlink
        assert GN6E_NODE.cpu.physical_cores == 96

    def test_eflops_node_matches_tab1(self):
        assert EFLOPS_NODE.gpus_per_node == 1
        assert not EFLOPS_NODE.has_nvlink
        assert EFLOPS_NODE.cpu.physical_cores == 104


class TestClusters:
    def test_gn6e_worker_count(self):
        assert gn6e_cluster(2).num_workers == 16

    def test_eflops_worker_count(self):
        assert eflops_cluster(16).num_workers == 16

    def test_with_nodes_scales(self):
        cluster = eflops_cluster(4)
        bigger = cluster.with_nodes(128)
        assert bigger.num_nodes == 128
        assert cluster.num_nodes == 4  # original untouched

    def test_with_nodes_rejects_zero(self):
        with pytest.raises(ValueError):
            eflops_cluster(4).with_nodes(0)

    def test_cluster_is_frozen(self):
        cluster = eflops_cluster(4)
        with pytest.raises(AttributeError):
            cluster.num_nodes = 7


class TestLinkSpec:
    def test_link_fields(self):
        link = LinkSpec(name="x", bandwidth=1e9, latency=1e-6)
        assert link.duplex
