"""Unit tests for the multi-level cache (HybridHash extension)."""

import numpy as np
import pytest

from repro.data.spec import FieldSpec
from repro.data.synthetic import FieldSampler
from repro.embedding import EmbeddingTable
from repro.embedding.multilevel import (
    CacheTier,
    DEFAULT_TIERS,
    MultiLevelCache,
)


def _tiers(hot_rows=4, warm_rows=16):
    return (
        CacheTier("hbm", capacity_bytes=hot_rows * 16,
                  access_seconds_per_byte=1e-12),
        CacheTier("dram", capacity_bytes=warm_rows * 16,
                  access_seconds_per_byte=1e-11),
        CacheTier("ssd", capacity_bytes=float("inf"),
                  access_seconds_per_byte=1e-9),
    )


def _cache(warmup=2, flush=2, **kwargs):
    table = EmbeddingTable(dim=4, seed=0)
    return MultiLevelCache(table, tiers=_tiers(**kwargs),
                           warmup_iters=warmup, flush_iters=flush)


class TestConstruction:
    def test_requires_tiers(self):
        with pytest.raises(ValueError):
            MultiLevelCache(EmbeddingTable(dim=4), tiers=())

    def test_requires_fastest_first(self):
        bad = (_tiers()[2], _tiers()[0])
        with pytest.raises(ValueError):
            MultiLevelCache(EmbeddingTable(dim=4), tiers=bad)

    def test_tier_validation(self):
        with pytest.raises(ValueError):
            CacheTier("x", capacity_bytes=-1,
                      access_seconds_per_byte=1.0)

    def test_default_tiers_ordered(self):
        costs = [tier.access_seconds_per_byte for tier in DEFAULT_TIERS]
        assert costs == sorted(costs)


class TestPlacement:
    def test_everything_bottom_before_flush(self):
        cache = _cache(warmup=10)
        cache.lookup(np.array([1, 2, 3]))
        assert cache.tier_of(1) == "ssd"

    def test_hottest_rows_float_up(self):
        cache = _cache(warmup=1, flush=1, hot_rows=1, warm_rows=2)
        for _step in range(4):
            cache.lookup(np.array([9, 9, 9, 5, 5, 2]))
        assert cache.tier_of(9) == "hbm"
        assert cache.tier_of(5) == "dram"
        assert cache.tier_of(2) in ("dram", "ssd")

    def test_rows_per_tier_respects_capacity(self):
        cache = _cache(warmup=1, flush=1, hot_rows=4, warm_rows=16)
        for step in range(6):
            cache.lookup(np.arange(step * 10, step * 10 + 10))
        counts = cache.rows_per_tier()
        assert counts["hbm"] <= 4
        assert counts["dram"] <= 16
        assert sum(counts.values()) == cache.counter.distinct_ids()


class TestLookupSemantics:
    def test_transparent_results(self):
        cache = _cache()
        plain = EmbeddingTable(dim=4, seed=0)
        rng = np.random.default_rng(0)
        for _step in range(8):
            ids = rng.integers(0, 100, size=32)
            assert np.array_equal(cache.lookup(ids), plain.lookup(ids))

    def test_update_reaches_table(self):
        cache = _cache()
        cache.lookup(np.array([1]))
        before = cache.table.lookup(np.array([1])).copy()
        cache.update(np.array([1]), np.ones((1, 4), dtype=np.float32))
        assert np.allclose(cache.table.lookup(np.array([1])) - before,
                           1.0)


class TestHitAccounting:
    def test_skewed_stream_hits_fast_tiers(self):
        field = FieldSpec(name="f", vocab_size=50_000, embedding_dim=4,
                          zipf_exponent=1.3)
        sampler = FieldSampler(field, seed=2)
        table = EmbeddingTable(dim=4, seed=0)
        cache = MultiLevelCache(
            table,
            tiers=(
                CacheTier("hbm", 2_000 * 16, 1e-12),
                CacheTier("dram", 20_000 * 16, 1e-11),
                CacheTier("ssd", float("inf"), 1e-9),
            ),
            warmup_iters=5, flush_iters=5)
        for _step in range(40):
            cache.lookup(sampler.sample_batch(256))
        fractions = cache.hit_fractions()
        assert fractions["hbm"] > 0.1
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_access_cost_prefers_hot_placement(self):
        cache = _cache(warmup=1, flush=1, hot_rows=2, warm_rows=4)
        for _step in range(4):
            cache.lookup(np.array([1, 1, 1, 1]))
        hot_cost = cache.expected_access_cost(np.array([1]))
        cold_cost = cache.expected_access_cost(np.array([999]))
        assert hot_cost < cold_cost

    def test_no_hits_recorded_in_warmup(self):
        cache = _cache(warmup=10)
        cache.lookup(np.array([1, 2]))
        assert all(stats.hits == 0 for stats in cache.stats.values())

    def test_empty_hit_fractions(self):
        cache = _cache(warmup=10)
        assert sum(cache.hit_fractions().values()) == 0.0


class TestServingEdgeCases:
    """Edge cases the online serving path exercises."""

    def test_zero_capacity_top_tier(self):
        tiers = (
            CacheTier("hbm", capacity_bytes=0.0,
                      access_seconds_per_byte=1e-12),
            CacheTier("dram", capacity_bytes=float("inf"),
                      access_seconds_per_byte=1e-11),
        )
        cache = MultiLevelCache(EmbeddingTable(dim=4, seed=0),
                                tiers=tiers, warmup_iters=1,
                                flush_iters=1)
        for _step in range(5):
            cache.lookup(np.array([1, 1, 2, 3]))
        assert cache.rows_per_tier()["hbm"] == 0
        assert cache.tier_of(1) == "dram"
        assert cache.stats["hbm"].hits == 0

    def test_all_rows_fit_in_top_tier(self):
        tiers = (
            CacheTier("hbm", capacity_bytes=float("inf"),
                      access_seconds_per_byte=1e-12),
            CacheTier("dram", capacity_bytes=float("inf"),
                      access_seconds_per_byte=1e-11),
        )
        cache = MultiLevelCache(EmbeddingTable(dim=4, seed=0),
                                tiers=tiers, warmup_iters=1,
                                flush_iters=1)
        for _step in range(4):
            cache.lookup(np.arange(20))
        assert all(cache.tier_of(key) == "hbm" for key in range(20))
        # Post-flush lookups all hit the pinned top tier.
        cache.lookup(np.arange(20))
        assert cache.stats["hbm"].hits > 0
        assert cache.stats["dram"].hits == 0

    def test_flush_deterministic_when_frequencies_tie(self):
        def build():
            cache = _cache(warmup=1, flush=1, hot_rows=2, warm_rows=4)
            # Every ID appears exactly once per batch: all counts tie.
            for _step in range(3):
                cache.lookup(np.array([7, 3, 9, 1, 5]))
            return cache

        first, second = build(), build()
        placements = [
            {key: cache.tier_of(key) for key in (7, 3, 9, 1, 5)}
            for cache in (first, second)
        ]
        assert placements[0] == placements[1]
        # Capacity still binds under ties: exactly hot_rows in hbm.
        counts = first.rows_per_tier()
        assert counts["hbm"] == 2

    def test_access_latency_validated(self):
        with pytest.raises(ValueError):
            CacheTier("x", capacity_bytes=1.0,
                      access_seconds_per_byte=1.0, access_latency=-1.0)

    def test_access_latency_in_expected_cost(self):
        tiers = (CacheTier("dram", float("inf"), 0.0,
                           access_latency=1e-6),)
        cache = MultiLevelCache(EmbeddingTable(dim=4, seed=0),
                                tiers=tiers, warmup_iters=1,
                                flush_iters=1)
        cost = cache.expected_access_cost(np.array([1, 2, 3]))
        assert cost == pytest.approx(3e-6)


class TestStatsExport:
    def test_stats_as_dict_structure(self):
        cache = _cache(warmup=1, flush=1)
        for _step in range(4):
            cache.lookup(np.array([1, 1, 2]))
        snapshot = cache.stats_as_dict()
        assert set(snapshot["tiers"]) == {"hbm", "dram", "ssd"}
        assert snapshot["queries"] == sum(
            stats["hits"] for stats in snapshot["tiers"].values())
        fractions = snapshot["hit_fractions"]
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert snapshot["hit_ratio"] == fractions["hbm"]

    def test_tier_stats_as_dict(self):
        cache = _cache(warmup=0, flush=1)
        cache.lookup(np.array([4]))
        assert cache.stats["ssd"].as_dict() == {
            "hits": cache.stats["ssd"].hits}
