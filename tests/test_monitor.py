"""Tests for repro.telemetry.monitor (pulse/overlap/cache/SLO)."""

import pytest

from repro.api import RunConfig, profile
from repro.core import PicassoConfig
from repro.embedding.hybrid_hash import HybridHash
from repro.embedding.table import EmbeddingTable
from repro.serving.metrics import ServingMetrics
from repro.sim.metrics import (
    intersect_seconds,
    merge_intervals,
    merged_busy_intervals,
    overlap_seconds,
)
from repro.sim.resource import ResourceKind
from repro.sim.trace import TaskRecord, TraceRecorder
from repro.telemetry import (
    CacheHealthMonitor,
    ManualClock,
    OverlapMonitor,
    PulseDetector,
    SloBurnRateMonitor,
    Tracer,
    chrome_trace,
    emit_alerts,
)

import numpy as np


def make_recorder(segments_by_kind, capacity=1.0):
    """A TraceRecorder with explicit (t0, t1, rate) segments per kind."""
    recorder = TraceRecorder(
        {kind: capacity for kind in segments_by_kind})
    for kind, segments in segments_by_kind.items():
        for t0, t1, rate in segments:
            recorder.add_interval(t0, t1, {kind: rate})
    return recorder


class TestIntervalHelpers:
    def test_merge_intervals(self):
        assert merge_intervals([(2.0, 3.0), (0.0, 1.0), (0.5, 1.5)]) == \
            [(0.0, 1.5), (2.0, 3.0)]
        assert merge_intervals([]) == []

    def test_intersect_seconds(self):
        a = [(0.0, 1.0), (2.0, 3.0)]
        b = [(0.5, 2.5)]
        assert intersect_seconds(a, b) == pytest.approx(1.0)
        assert intersect_seconds(a, []) == 0.0

    def test_merged_busy_intervals_ignores_unknown_kinds(self):
        recorder = make_recorder(
            {ResourceKind.GPU_SM: [(0.0, 1.0, 1.0)]})
        spans = merged_busy_intervals(
            recorder, {ResourceKind.GPU_SM, ResourceKind.NVLINK})
        assert spans == [(0.0, 1.0)]

    def test_overlap_seconds(self):
        recorder = make_recorder({
            ResourceKind.NET: [(0.0, 2.0, 1.0)],
            ResourceKind.GPU_SM: [(1.0, 3.0, 1.0)],
        })
        assert overlap_seconds(recorder, {ResourceKind.NET},
                               {ResourceKind.GPU_SM}) \
            == pytest.approx(1.0)


class TestPulseDetector:
    def test_alternating_phases(self):
        # 10 ms memory burst, 10 ms compute burst, repeated.
        hbm = [(0.00, 0.01, 1.0), (0.02, 0.03, 1.0)]
        sm = [(0.01, 0.02, 1.0), (0.03, 0.04, 1.0)]
        recorder = make_recorder({ResourceKind.HBM: hbm,
                                  ResourceKind.GPU_SM: sm})
        detector = PulseDetector(bucket=0.01)
        phases = detector.phases(recorder, makespan=0.04)
        assert [phase.label for phase in phases] == [
            "memory-bound", "compute-bound",
            "memory-bound", "compute-bound"]
        report = detector.analyze(recorder, makespan=0.04)
        assert report.summary["alternations"] == 3
        assert report.summary["idle_fraction"] == pytest.approx(0.0)
        assert report.healthy

    def test_idle_alert(self):
        recorder = make_recorder(
            {ResourceKind.GPU_SM: [(0.0, 0.01, 1.0)]})
        detector = PulseDetector(bucket=0.01, max_idle_fraction=0.5)
        report = detector.analyze(recorder, makespan=0.10)
        assert report.summary["idle_fraction"] > 0.5
        assert not report.healthy
        assert report.alerts[0].severity == "warning"
        assert report.alerts[0].monitor == "pulse"

    def test_empty_run_is_one_idle_phase(self):
        recorder = TraceRecorder({ResourceKind.GPU_SM: 1.0})
        phases = PulseDetector().phases(recorder, makespan=0.05)
        assert len(phases) == 1
        assert phases[0].label == "idle"

    def test_zero_makespan(self):
        recorder = TraceRecorder({ResourceKind.GPU_SM: 1.0})
        assert PulseDetector().phases(recorder, makespan=0.0) == []

    def test_alternating_on_fig05_breakdown_workload(self):
        # Acceptance: the fig05-style baseline workload pulses between
        # memory-bound (embedding) and compute-bound (dense) stages.
        result = profile(RunConfig(
            model="W&D", dataset="Product-1", scale=0.05,
            cluster="eflops:2", framework="TF-PS", batch_size=4_000,
            iterations=2))
        pulse = result.monitors["pulse"].summary
        assert pulse["memory_phases"] >= 2
        assert pulse["compute_phases"] >= 1
        assert pulse["alternations"] >= 2


class TestOverlapMonitor:
    def test_full_overlap(self):
        recorder = make_recorder({
            ResourceKind.NET: [(0.0, 1.0, 1.0)],
            ResourceKind.GPU_SM: [(0.0, 2.0, 1.0)],
        })
        report = OverlapMonitor().analyze(recorder, makespan=2.0)
        assert report.summary["overlap_ratio"] == pytest.approx(1.0)
        assert report.healthy

    def test_no_comm_is_healthy_zero(self):
        recorder = make_recorder(
            {ResourceKind.GPU_SM: [(0.0, 1.0, 1.0)]})
        report = OverlapMonitor().analyze(recorder, makespan=1.0)
        assert report.summary["comm_seconds"] == 0.0
        assert report.healthy

    def test_exposed_comm_alerts(self):
        recorder = make_recorder({
            ResourceKind.NET: [(0.0, 1.0, 1.0)],
            ResourceKind.GPU_SM: [(1.0, 2.0, 1.0)],
        })
        monitor = OverlapMonitor(min_overlap_ratio=0.5)
        report = monitor.analyze(recorder, makespan=2.0)
        assert report.summary["overlap_ratio"] == pytest.approx(0.0)
        assert not report.healthy
        assert "exposed" in report.alerts[0].message

    def test_group_ratios_from_records(self):
        recorder = make_recorder({
            ResourceKind.NET: [(0.0, 1.0, 1.0), (2.0, 3.0, 1.0)],
            ResourceKind.GPU_SM: [(0.0, 1.0, 1.0)],
        })
        records = [
            TaskRecord(name="a", start=0.0, end=1.0,
                       tags={"group": "g0"},
                       segments=(("net", 0.0, 1.0),)),
            TaskRecord(name="b", start=2.0, end=3.0,
                       tags={"group": "g1"},
                       segments=(("net", 2.0, 3.0),)),
            TaskRecord(name="c", start=0.0, end=1.0, tags={},
                       segments=(("gpu_sm", 0.0, 1.0),)),
        ]
        ratios = OverlapMonitor().group_ratios(recorder, records)
        assert ratios["g0"] == pytest.approx(1.0)
        assert ratios["g1"] == pytest.approx(0.0)

    def test_interleaving_strictly_increases_overlap(self):
        # Acceptance: K-Interleaving on reports strictly higher
        # comm/compute overlap than off, on the same workload.
        workload = dict(model="W&D", dataset="Product-1", scale=0.05,
                        cluster="eflops:4", batch_size=8_000,
                        iterations=2)
        on = profile(RunConfig(picasso=PicassoConfig(), **workload))
        off = profile(RunConfig(
            picasso=PicassoConfig().without("interleaving"), **workload))
        ratio_on = on.monitors["overlap"].summary["overlap_ratio"]
        ratio_off = off.monitors["overlap"].summary["overlap_ratio"]
        assert ratio_on > ratio_off


class TestCacheHealthMonitor:
    def _trained_cache(self, hot_rows=64, iterations=60):
        table = EmbeddingTable(dim=4, seed=0)
        cache = HybridHash(table, hot_bytes=hot_rows * 16,
                           warmup_iters=10, flush_iters=10)
        rng = np.random.default_rng(0)
        for _ in range(iterations):
            cache.lookup(rng.integers(0, 200, size=32))
        return cache

    def test_histories_recorded(self):
        cache = self._trained_cache()
        assert len(cache.hit_history) == cache.iteration - 10
        assert cache.flush_history
        assert all(0.0 <= ratio <= 1.0 for ratio in cache.hit_history)

    def test_healthy_cache(self):
        cache = self._trained_cache()
        report = CacheHealthMonitor(min_hit_ratio=0.05).analyze(cache)
        assert report.summary["ewma_hit_ratio"] > 0.05
        assert report.summary["flushes"] == len(cache.flush_history)
        assert report.healthy

    def test_low_hit_rate_alerts(self):
        # Tiny hot set over a uniform stream: hit ratio stays low.
        table = EmbeddingTable(dim=4, seed=0)
        cache = HybridHash(table, hot_bytes=1 * 16, warmup_iters=5,
                           flush_iters=10)
        rng = np.random.default_rng(1)
        for _ in range(40):
            cache.lookup(rng.integers(0, 10_000, size=64))
        report = CacheHealthMonitor(min_hit_ratio=0.3).analyze(cache)
        assert not report.healthy
        assert report.alerts[0].monitor == "cache"

    def test_flush_effects_need_both_sides(self):
        cache = self._trained_cache(iterations=12)
        monitor = CacheHealthMonitor(flush_window=100)
        # Windows larger than the history: no measurable effects.
        assert monitor.flush_effects(cache) == []

    def test_empty_cache(self):
        table = EmbeddingTable(dim=4, seed=0)
        cache = HybridHash(table, hot_bytes=1024)
        report = CacheHealthMonitor().analyze(cache)
        assert report.healthy
        assert report.summary["observed_iterations"] == 0


class TestSloBurnRateMonitor:
    def _metrics(self, latencies_and_times, shed=()):
        metrics = ServingMetrics()
        for completion, latency in latencies_and_times:
            metrics.record_served(completion - latency, completion)
        for when in shed:
            metrics.record_shed(when - 0.001, when)
        return metrics

    def test_no_violations(self):
        metrics = self._metrics([(0.01 * i, 0.001) for i in range(1, 20)])
        report = SloBurnRateMonitor(slo_ms=10.0).analyze(metrics)
        assert report.summary["violations"] == 0
        assert report.summary["overall_burn_rate"] == 0.0
        assert report.healthy

    def test_burn_rate_alerts(self):
        # All requests in one window blow the SLO.
        metrics = self._metrics([(0.01, 0.05), (0.02, 0.06)])
        monitor = SloBurnRateMonitor(slo_ms=10.0, budget=0.01,
                                     window_s=0.05)
        report = monitor.analyze(metrics)
        assert not report.healthy
        assert report.summary["violations"] == 2
        assert report.summary["worst_burn_rate"] == pytest.approx(100.0)
        assert report.alerts[0].severity == "critical"

    def test_shed_counts_as_violation(self):
        metrics = self._metrics([(0.01, 0.001)], shed=[0.02])
        report = SloBurnRateMonitor(slo_ms=10.0).analyze(metrics)
        assert report.summary["violations"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SloBurnRateMonitor(slo_ms=0.0)
        with pytest.raises(ValueError):
            SloBurnRateMonitor(slo_ms=1.0, budget=1.5)
        with pytest.raises(ValueError):
            SloBurnRateMonitor(slo_ms=1.0, window_s=0.0)


class TestEmitAlerts:
    def test_alerts_become_trace_instants(self):
        recorder = make_recorder({
            ResourceKind.NET: [(0.0, 1.0, 1.0)],
            ResourceKind.GPU_SM: [(1.0, 2.0, 1.0)],
        })
        report = OverlapMonitor(min_overlap_ratio=0.9).analyze(
            recorder, makespan=2.0)
        tracer = Tracer(clock=ManualClock())
        emitted = emit_alerts(tracer, [report])
        assert emitted == 1
        when, name, track, attrs = tracer.instants[0]
        assert name == "overlap:warning"
        assert track == "alerts"
        assert "message" in attrs
        payload = chrome_trace(tracer=tracer, makespan=2.0)
        instant_events = [event for event in payload["traceEvents"]
                          if event.get("ph") == "i"]
        assert any(event["name"] == "overlap:warning"
                   for event in instant_events)

    def test_profile_embeds_monitors(self):
        result = profile(RunConfig(
            model="W&D", dataset="Product-1", scale=0.05,
            cluster="eflops:2", batch_size=4_000, iterations=1))
        assert set(result.monitors) == {"pulse", "overlap"}
        for report in result.monitors.values():
            payload = report.as_dict()
            assert payload["monitor"] == report.monitor
            assert isinstance(payload["summary"], dict)
