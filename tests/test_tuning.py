"""Tests for the what-if auto-tuner (repro.tuning + repro.api.tune).

The acceptance bar from the ROADMAP extension: on the training bench
scenario, coordinate descent must crown a validated winner at least
10% faster than the baseline, with its replay prediction within 15%
of the real run.
"""

import importlib
import json
import sys

import pytest

from repro import api
from repro.api import RunConfig, TuneConfig, tune
from repro.core.config import PicassoConfig
from repro.tuning import (
    Candidate,
    Knob,
    KnobSpace,
    ReplayPredictor,
    default_space,
    rank_candidates,
    register_strategy,
    strategies,
    strategy,
)
strategies_module = importlib.import_module(
    "repro.tuning.strategies")

BASE = RunConfig(model="W&D", dataset="Product-1", scale=0.05,
                 cluster="eflops:2", batch_size=4_000, iterations=2)


@pytest.fixture(scope="module")
def base_workload():
    model = BASE.build_model()
    report = api.run(BASE.with_overrides(record_tasks=True),
                     model=model)
    return model, report


@pytest.fixture(scope="module")
def tuned(base_workload):
    model, _report = base_workload
    return tune(TuneConfig(run=BASE), model=model)


class TestStrategyRegistry:
    def test_built_ins_registered(self):
        names = strategies()
        assert "coordinate-descent" in names
        assert "successive-halving" in names
        assert "warmup-grid" in names
        assert names == tuple(sorted(names))

    def test_lookup(self):
        assert callable(strategy("coordinate-descent"))
        with pytest.raises(ValueError, match="unknown strategy"):
            strategy("simulated-annealing")

    def test_duplicate_rejected_without_overwrite(self):
        def dummy(ctx):
            return []

        register_strategy("test-dummy", dummy)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_strategy("test-dummy", dummy)
            register_strategy("test-dummy", dummy, overwrite=True)
            assert strategy("test-dummy") is dummy
        finally:
            strategies_module._STRATEGIES.pop("test-dummy", None)


class TestKnobSpace:
    def test_knob_validation(self):
        with pytest.raises(ValueError, match="unknown knob"):
            Knob("warp_speed", (1, 2))
        with pytest.raises(ValueError, match="no values"):
            Knob("micro_batches", ())

    def test_space_validation(self):
        with pytest.raises(ValueError, match="empty"):
            KnobSpace(knobs=())
        with pytest.raises(ValueError, match="duplicate"):
            KnobSpace(knobs=(Knob("micro_batches", (1,)),
                             Knob("micro_batches", (2,))))

    def test_grid_enumeration(self):
        space = KnobSpace(knobs=(Knob("interleave_sets", (1, 2)),
                                 Knob("micro_batches", (1, 2, 3))))
        assert space.size == 6
        assignments = list(space.assignments())
        assert len(assignments) == 6
        assert {"interleave_sets": 1, "micro_batches": 3} in assignments

    def test_apply_validates(self):
        space = KnobSpace(knobs=(Knob("micro_batches", (1, 2)),))
        base = PicassoConfig()
        applied = space.apply(base, {"micro_batches": 2})
        assert applied.micro_batches == 2
        assert space.apply(base, {}) is base
        with pytest.raises(ValueError, match="outside the knob"):
            space.apply(base, {"interleave_sets": 2})
        with pytest.raises(ValueError):  # config's own validation
            space.apply(base, {"micro_batches": 0})

    def test_round_trip(self):
        space = default_space()
        rebuilt = KnobSpace.from_dict(space.as_dict())
        assert rebuilt == space
        assert [knob.name for knob in space] \
            == ["interleave_sets", "micro_batches",
                "hot_storage_bytes", "prefetch_lookahead",
                "prefetch_hot_threshold"]


class TestReplayPredictor:
    def test_unperturbed_prediction_is_exact(self, base_workload):
        model, report = base_workload
        predictor = ReplayPredictor(
            model, BASE.resolved_cluster(), BASE.batch_size,
            BASE.iterations, report.result.task_records)
        prediction = predictor.predict(PicassoConfig())
        assert prediction.hooks.identity
        assert prediction.makespan == report.result.makespan
        assert prediction.ips == report.ips

    def test_predictions_are_cached(self, base_workload):
        model, report = base_workload
        predictor = ReplayPredictor(
            model, BASE.resolved_cluster(), BASE.batch_size,
            BASE.iterations, report.result.task_records)
        first = predictor.predict(PicassoConfig(micro_batches=2))
        assert predictor.predict(PicassoConfig(micro_batches=2)) \
            is first

    def test_shrink_credit_validation(self, base_workload):
        model, report = base_workload
        records = report.result.task_records
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="shrink_credit"):
                ReplayPredictor(model, BASE.resolved_cluster(),
                                BASE.batch_size, BASE.iterations,
                                records, shrink_credit=bad)

    def test_bound_seconds_positive(self, base_workload):
        model, report = base_workload
        predictor = ReplayPredictor(
            model, BASE.resolved_cluster(), BASE.batch_size,
            BASE.iterations, report.result.task_records)
        assert predictor.bound_seconds(PicassoConfig()) > 0.0


class TestRankCandidates:
    def _candidate(self, predicted, measured=None):
        return Candidate(assignment={}, picasso=PicassoConfig(),
                         predicted_ips=predicted,
                         measured_ips=measured)

    def test_best_first_and_dedup(self):
        low = self._candidate(100.0)
        high = self._candidate(200.0)
        dup = self._candidate(100.0)
        assert rank_candidates([low, high, dup]) == [high, low]

    def test_measured_wins_over_predicted(self):
        optimistic = self._candidate(500.0)
        measured = self._candidate(50.0, measured=600.0)
        assert measured.best_known_ips == 600.0
        ranked = rank_candidates([optimistic, measured])
        assert ranked[0] is measured


class TestTuneAcceptance:
    def test_winner_beats_baseline_by_ten_percent(self, tuned):
        assert tuned.improved
        assert tuned.gain >= 0.10

    def test_prediction_within_fifteen_percent(self, tuned):
        assert abs(tuned.fidelity_error) <= 0.15

    def test_winner_config_is_usable(self, tuned):
        assert tuned.best_config.picasso is not None
        assert tuned.best_assignment  # non-empty knob dict
        report = api.run(tuned.best_config)
        assert report.ips == pytest.approx(tuned.best_ips, rel=1e-9)

    def test_validation_accounting(self, tuned):
        config = TuneConfig(run=BASE)
        assert 1 <= len(tuned.validations) <= config.top_k
        assert tuned.candidates_evaluated >= len(tuned.validations)
        best = max(tuned.validations,
                   key=lambda entry: entry.measured_ips)
        assert tuned.best_ips == best.measured_ips

    def test_result_serializes(self, tuned):
        payload = tuned.as_dict()
        assert payload["strategy"] == "coordinate-descent"
        assert payload["gain"] == tuned.gain
        json.dumps(payload)  # JSON-friendly throughout


class TestTuneFacade:
    def test_non_picasso_framework_rejected(self):
        config = TuneConfig(run=BASE.with_overrides(framework="TF-PS"))
        with pytest.raises(ValueError, match="PICASSO"):
            tune(config)

    def test_warmup_grid_strategy_is_fully_measured(self,
                                                    base_workload):
        model, _report = base_workload
        space = KnobSpace(knobs=(Knob("interleave_sets", (1, 2)),
                                 Knob("micro_batches", (2, 3))))
        result = tune(TuneConfig(run=BASE, strategy="warmup-grid",
                                 knobs=space, top_k=2), model=model)
        assert result.strategy == "warmup-grid"
        assert result.fidelity_error == 0.0
        assert all(entry.source == "measured"
                   for entry in result.validations)

    def test_tune_from_saved_trace(self, base_workload, tmp_path):
        from repro.sim import FrozenTrace

        model, report = base_workload
        trace = FrozenTrace(records=report.result.task_records,
                            makespan=report.result.makespan)
        path = trace.save(str(tmp_path / "trace.json"))
        result = tune(TuneConfig(run=BASE, trace_path=path),
                      model=model)
        assert result.base_ips == pytest.approx(report.ips, rel=1e-9)
        assert result.improved


class TestTuneConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TuneConfig(top_k=0)
        with pytest.raises(ValueError):
            TuneConfig(strategy="")
        with pytest.raises(ValueError):
            TuneConfig(wait_model="psychic")
        with pytest.raises(ValueError):
            TuneConfig(shrink_credit=0.0)
        with pytest.raises(ValueError):
            TuneConfig(diversity_cap=0)

    def test_round_trip(self):
        config = TuneConfig(run=BASE, strategy="successive-halving",
                            knobs=default_space(), top_k=2,
                            options={"eta": 2})
        rebuilt = TuneConfig.from_dict(config.as_dict())
        assert rebuilt.as_dict() == config.as_dict()
        assert rebuilt.knobs == config.knobs

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown TuneConfig"):
            TuneConfig.from_dict({"stratgy": "coordinate-descent"})


class TestAutotunerShim:
    def test_old_import_path_warns_and_aliases(self):
        sys.modules.pop("repro.core.autotuner", None)
        with pytest.warns(DeprecationWarning,
                          match="repro.tuning"):
            shim = importlib.import_module("repro.core.autotuner")
        from repro.tuning.warmup import AutoTuner, TuningResult
        assert shim.AutoTuner is AutoTuner
        assert shim.TuningResult is TuningResult

    def test_core_package_lazy_alias(self):
        import repro.core as core
        from repro.tuning.warmup import AutoTuner
        assert core.AutoTuner is AutoTuner
        with pytest.raises(AttributeError):
            core.NoSuchThing
