"""Tests for the telemetry layer: spans, metrics, traces, critical path."""

import json

import pytest

from repro.api import RunConfig, profile
from repro.sim.trace import TaskRecord
from repro.telemetry import (
    ManualClock,
    MetricsRegistry,
    Tracer,
    analyze_critical_path,
    chrome_trace,
    format_critical_path,
    maybe_span,
    merge_all,
    merge_numeric_dicts,
    trace_to_json,
    validate_chrome_trace,
)
from repro.telemetry.critical_path import WAIT_LABEL, group_label


class TestSpans:
    def test_nesting_records_parent_ids(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(2.0)
            clock.advance(0.5)
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.duration == pytest.approx(2.0)
        assert outer.duration == pytest.approx(3.5)
        # Spans are stored in creation (start) order.
        assert [s.name for s in tracer.completed_spans()] == \
            ["outer", "inner"]

    def test_sibling_order_and_ids_sequential(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = [s.span_id for s in tracer.completed_spans()]
        assert ids == [0, 1]

    def test_add_span_rejects_negative_duration(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(ValueError):
            tracer.add_span("bad", start=2.0, end=1.0)

    def test_add_span_inherits_open_parent(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            child = tracer.add_span("modeled", start=0.0, end=1.0)
        assert child.parent_id == outer.span_id

    def test_maybe_span_noop_without_tracer(self):
        with maybe_span(None, "anything") as span:
            assert span is None

    def test_tracks_first_appearance_order(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("a", track="train"):
            pass
        with tracer.span("b", track="serve"):
            pass
        tracer.instant("shed", timestamp=0.0, track="slo")
        assert tracer.tracks() == ["train", "serve", "slo"]


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc()
        registry.counter("requests").inc(2.0)
        gauge = registry.gauge("depth")
        gauge.set(3.0)
        gauge.set(1.0)
        snapshot = registry.as_dict()
        assert snapshot["counters"]["requests"] == pytest.approx(3.0)
        assert snapshot["gauges"]["depth"]["high"] == pytest.approx(3.0)
        assert snapshot["gauges"]["depth"]["value"] == pytest.approx(1.0)

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1.0)

    def test_name_collision_across_types(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_registry_merge_unions(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("shared").inc(1.0)
        right.counter("shared").inc(2.0)
        right.counter("only_right").inc(5.0)
        merged = left.merge(right).as_dict()
        assert merged["counters"]["shared"] == pytest.approx(3.0)
        assert merged["counters"]["only_right"] == pytest.approx(5.0)


def _synthetic_records():
    """A 3-op chain whose middle op (a 5 s net transfer) dominates."""
    first = TaskRecord("load", 0.0, 1.0,
                       segments=(("gpu_sm", 0.0, 1.0),))
    second = TaskRecord("allreduce", 1.0, 6.0, preds=("load",),
                        segments=(("net", 1.0, 6.0),))
    third = TaskRecord("apply", 6.0, 7.0, preds=("allreduce",),
                       segments=(("gpu_sm", 6.0, 7.0),))
    # Off-path task: finishes early, must not appear on the path.
    extra = TaskRecord("side", 0.0, 0.5,
                       segments=(("cpu", 0.0, 0.5),))
    return [first, second, third, extra]


class TestCriticalPath:
    def test_known_bottleneck_ranks_first(self):
        report = analyze_critical_path(_synthetic_records())
        assert report.makespan == pytest.approx(7.0)
        top = report.top(1)[0]
        assert top.label == "allreduce"
        assert top.seconds == pytest.approx(5.0)
        assert top.share == pytest.approx(5.0 / 7.0)
        assert top.dominant_class == "communication"

    def test_path_partitions_makespan(self):
        report = analyze_critical_path(_synthetic_records())
        assert report.path[0].start == pytest.approx(0.0)
        assert report.path[-1].end == pytest.approx(report.makespan)
        for prev, step in zip(report.path, report.path[1:]):
            assert step.start == pytest.approx(prev.end)
        assert report.coverage(len(report.entries)) == pytest.approx(1.0)
        assert "side" not in {step.name for step in report.path}

    def test_queue_wait_becomes_wait_step(self):
        stalled = [
            TaskRecord("a", 0.0, 1.0, segments=(("gpu_sm", 0.0, 1.0),)),
            # Ready at 1.0 but only executes 2.0..3.0: 1 s of queueing.
            TaskRecord("b", 1.0, 3.0, preds=("a",),
                       segments=(("gpu_sm", 2.0, 3.0),)),
        ]
        report = analyze_critical_path(stalled)
        entry = {e.label: e for e in report.entries}["b"]
        assert entry.classes["wait"] == pytest.approx(1.0)
        assert report.class_seconds["wait"] == pytest.approx(1.0)

    def test_gap_between_ops_attributed_to_wait(self):
        gapped = [
            TaskRecord("a", 0.0, 1.0, segments=(("gpu_sm", 0.0, 1.0),)),
            TaskRecord("b", 2.0, 3.0, preds=("a",),
                       segments=(("gpu_sm", 2.0, 3.0),)),
        ]
        report = analyze_critical_path(gapped)
        waits = [s for s in report.path if s.kind == "wait"]
        assert len(waits) == 1
        assert waits[0].seconds == pytest.approx(1.0)
        assert any(e.label == WAIT_LABEL for e in report.entries)

    def test_group_label_collapses_instances(self):
        assert group_label("it2/s3/dim128.1/gather") == "dim128.1/gather"
        assert group_label("it0/mb1/mlp/fwd") == "mlp/fwd"
        assert group_label("it0") == "it0"  # nothing left: keep the name

    def test_instances_aggregate_into_one_entry(self):
        chain = []
        prev = None
        for it in range(3):
            name = f"it{it}/gather"
            start = float(it)
            chain.append(TaskRecord(
                name, start, start + 1.0,
                preds=(prev,) if prev else (),
                segments=(("hbm", start, start + 1.0),)))
            prev = name
        report = analyze_critical_path(chain)
        assert len(report.entries) == 1
        entry = report.entries[0]
        assert entry.label == "gather"
        assert entry.occurrences == 3
        assert entry.seconds == pytest.approx(3.0)

    def test_merge_composes_sequentially(self):
        report = analyze_critical_path(_synthetic_records())
        merged = report.merge(report)
        assert merged.makespan == pytest.approx(14.0)
        top = merged.top(1)[0]
        assert top.label == "allreduce"
        assert top.occurrences == 2
        assert top.seconds == pytest.approx(10.0)

    def test_empty_records(self):
        report = analyze_critical_path([], makespan=1.0)
        assert report.entries == []
        assert report.coverage() == 0.0

    def test_top_k_validation(self):
        with pytest.raises(ValueError):
            analyze_critical_path(_synthetic_records(), top_k=0)

    def test_format_contains_ranking_and_coverage(self):
        report = analyze_critical_path(_synthetic_records())
        text = format_critical_path(report)
        assert "allreduce" in text
        assert "coverage" in text
        assert "communication" in text


class TestChromeTrace:
    def test_schema_validates(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("run", track="train"):
            clock.advance(1.0)
        tracer.instant("marker", timestamp=0.5, track="train")
        payload = chrome_trace(records=_synthetic_records(),
                               tracer=tracer,
                               metadata={"case": "unit"})
        count = validate_chrome_trace(payload)
        assert count > 0
        assert payload["otherData"] == {"case": "unit"}

    def test_events_sorted_by_timestamp(self):
        payload = chrome_trace(records=_synthetic_records())
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)

    def test_microseconds_and_durations(self):
        payload = chrome_trace(records=_synthetic_records())
        by_name = {e["name"]: e for e in payload["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["allreduce"]["ts"] == pytest.approx(1_000_000.0)
        assert by_name["allreduce"]["dur"] == pytest.approx(5_000_000.0)
        assert by_name["allreduce"]["cat"] == "net"

    def test_track_metadata_present(self):
        payload = chrome_trace(records=_synthetic_records())
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert "M" in phases
        names = {e["name"] for e in payload["traceEvents"]
                 if e["ph"] == "M"}
        assert "thread_name" in names

    def test_validation_rejects_bad_payload(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Z"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x", "pid": 1,
                                  "tid": 1, "ts": -1.0, "dur": 0.0}]})


class TestStatsHelpers:
    def test_merge_numeric_dicts(self):
        merged = merge_numeric_dicts(
            {"a": 1, "nested": {"x": 2.0}, "label": "keep"},
            {"a": 3, "nested": {"x": 1.5, "y": 1}, "label": "drop"})
        assert merged["a"] == 4
        assert merged["nested"] == {"x": 3.5, "y": 1}
        assert merged["label"] == "keep"

    def test_merge_all(self):
        reports = [analyze_critical_path(_synthetic_records())
                   for _ in range(3)]
        combined = merge_all(reports)
        assert combined.makespan == pytest.approx(21.0)


class TestProfileDeterminism:
    CONFIG = RunConfig(cluster="eflops:2", batch_size=2_000, iterations=1)

    def test_same_seedless_config_is_byte_identical(self):
        first = profile(self.CONFIG)
        second = profile(self.CONFIG)
        assert trace_to_json(first.trace) == trace_to_json(second.trace)
        assert first.critical_path.as_dict() == \
            second.critical_path.as_dict()

    def test_trace_round_trips_through_json(self):
        result = profile(self.CONFIG)
        payload = json.loads(trace_to_json(result.trace))
        assert validate_chrome_trace(payload) > 0

    def test_default_workload_coverage_at_ten(self):
        result = profile(RunConfig())
        assert result.critical_path.coverage(10) >= 0.90
        assert result.critical_path.makespan == pytest.approx(
            result.report.result.makespan)
