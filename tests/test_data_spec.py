"""Unit tests for dataset specifications (Tab. II)."""

import pytest

from repro.data import (
    ALL_DATASETS,
    DatasetSpec,
    FieldSpec,
    alibaba,
    criteo,
    product1,
    product2,
    product3,
)


class TestFieldSpec:
    def test_defaults(self):
        spec = FieldSpec(name="f", vocab_size=10, embedding_dim=4)
        assert spec.seq_length == 1
        assert spec.ids_per_instance == 1
        assert spec.parameter_count == 40

    def test_sequence_field(self):
        spec = FieldSpec(name="f", vocab_size=10, embedding_dim=4,
                         seq_length=50)
        assert spec.ids_per_instance == 50

    @pytest.mark.parametrize("kwargs", [
        {"vocab_size": 0, "embedding_dim": 4},
        {"vocab_size": 10, "embedding_dim": 0},
        {"vocab_size": 10, "embedding_dim": 4, "seq_length": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FieldSpec(name="f", **kwargs)


class TestDatasetSpec:
    def test_rejects_duplicate_fields(self):
        field = FieldSpec(name="f", vocab_size=10, embedding_dim=4)
        with pytest.raises(ValueError):
            DatasetSpec(name="d", fields=(field, field))

    def test_field_lookup(self):
        dataset = criteo(0.001)
        assert dataset.field("cat_0").name == "cat_0"
        with pytest.raises(KeyError):
            dataset.field("nope")

    def test_ids_per_instance_counts_sequences(self):
        dataset = alibaba(0.001)
        assert dataset.ids_per_instance == 7 + 12 * 100


class TestTab2Statistics:
    def test_criteo_shape(self):
        dataset = criteo()
        assert dataset.num_fields == 26
        assert dataset.num_numeric == 13
        assert dataset.total_parameters == pytest.approx(6e9, rel=0.15)

    def test_alibaba_shape(self):
        dataset = alibaba()
        assert dataset.num_fields == 19  # 7 scalar + 12 sequence groups
        assert sum(spec.seq_length for spec in dataset.fields) \
            == 7 + 12 * 100
        assert dataset.total_parameters == pytest.approx(6e9, rel=0.15)

    def test_product1_shape(self):
        dataset = product1()
        assert dataset.num_fields == 204
        assert dataset.num_numeric == 10
        assert dataset.total_parameters == pytest.approx(160e9, rel=0.25)
        dims = {spec.embedding_dim for spec in dataset.fields}
        assert min(dims) >= 8 and max(dims) <= 32

    def test_product2_shape(self):
        dataset = product2()
        assert dataset.num_fields == 364  # 334 scalar + 30 seq groups
        assert dataset.total_parameters == pytest.approx(1e12, rel=0.35)

    def test_product3_shape(self):
        dataset = product3()
        assert dataset.num_fields == 94  # 84 scalar + 10 seq groups
        assert dataset.total_parameters == pytest.approx(1e12, rel=0.35)

    def test_scale_shrinks_vocabularies(self):
        big = criteo(1.0)
        small = criteo(0.01)
        assert small.total_parameters < big.total_parameters / 50

    def test_registry_complete(self):
        assert set(ALL_DATASETS) == {"Criteo", "Alibaba", "Product-1",
                                     "Product-2", "Product-3"}


class TestReplication:
    def test_replicated_multiplies_fields(self):
        base = product2(0.001)
        wide = base.replicated(3)
        assert wide.num_fields == base.num_fields * 3
        assert wide.total_parameters == base.total_parameters * 3

    def test_replicated_names_are_unique(self):
        wide = product2(0.001).replicated(4)
        names = [spec.name for spec in wide.fields]
        assert len(set(names)) == len(names)

    def test_replicated_identity(self):
        base = product2(0.001)
        assert base.replicated(1).num_fields == base.num_fields

    def test_replicated_rejects_zero(self):
        with pytest.raises(ValueError):
            product2(0.001).replicated(0)
