"""Tests for the Criteo TSV reader/writer."""

import io

import numpy as np
import pytest

from repro.data.criteo_format import (
    NUM_CATEGORICAL_FEATURES,
    NUM_INTEGER_FEATURES,
    CriteoRecord,
    criteo_dataset_spec,
    format_line,
    parse_line,
    read_batches,
    records_to_batch,
    write_synthetic_tsv,
)
from repro.nn.network import WdlNetwork
from repro.nn.optim import Adagrad


def _line(label=1, integer="5", token="a1b2c3d4"):
    columns = [str(label)] + [integer] * NUM_INTEGER_FEATURES \
        + [token] * NUM_CATEGORICAL_FEATURES
    return "\t".join(columns)


class TestParsing:
    def test_parse_roundtrip(self):
        record = parse_line(_line())
        assert record.label == 1
        assert record.integers == [5] * NUM_INTEGER_FEATURES
        assert record.categoricals == ["a1b2c3d4"] \
            * NUM_CATEGORICAL_FEATURES

    def test_missing_fields_become_none(self):
        record = parse_line(_line(integer="", token=""))
        assert record.integers[0] is None
        assert record.categoricals[0] is None

    def test_wrong_column_count(self):
        with pytest.raises(ValueError):
            parse_line("1\t2\t3")

    def test_bad_label(self):
        with pytest.raises(ValueError):
            parse_line(_line(label=7))

    def test_format_inverts_parse(self):
        line = _line(integer="", token="deadbeef")
        assert format_line(parse_line(line)) == line

    def test_format_validates_lengths(self):
        with pytest.raises(ValueError):
            format_line(CriteoRecord(label=0, integers=[1],
                                     categoricals=[]))


class TestBatchConversion:
    def test_batch_shapes(self):
        records = [parse_line(_line()) for _row in range(8)]
        batch = records_to_batch(records)
        assert batch.batch_size == 8
        assert batch.numeric.shape == (8, NUM_INTEGER_FEATURES)
        assert len(batch.sparse) == NUM_CATEGORICAL_FEATURES
        assert batch.labels.shape == (8,)

    def test_log_transform(self):
        records = [parse_line(_line(integer="0"))]
        batch = records_to_batch(records)
        assert batch.numeric[0, 0] == pytest.approx(np.log1p(1))

    def test_missing_integer_is_zero(self):
        records = [parse_line(_line(integer=""))]
        batch = records_to_batch(records)
        assert batch.numeric[0, 0] == 0.0

    def test_ids_within_vocab(self):
        dataset = criteo_dataset_spec(vocab_size=1000)
        records = [parse_line(_line(token=f"{value:08x}"))
                   for value in (3, 99999, 2**31)]
        batch = records_to_batch(records, dataset)
        for ids in batch.sparse.values():
            assert ids.max() < 1000

    def test_same_token_same_id(self):
        records = [parse_line(_line(token="cafef00d"))
                   for _row in range(2)]
        batch = records_to_batch(records)
        ids = batch.sparse["C1"]
        assert ids[0] == ids[1]

    def test_non_hex_tokens_hash(self):
        line = _line(token="cat_food")
        batch = records_to_batch([parse_line(line)])
        assert batch.sparse["C1"][0] >= 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            records_to_batch([])


class TestStreaming:
    def test_read_batches_counts(self):
        stream = io.StringIO()
        write_synthetic_tsv(stream, rows=25, seed=0)
        stream.seek(0)
        batches = list(read_batches(stream, batch_size=10))
        assert [batch.batch_size for batch in batches] == [10, 10, 5]

    def test_blank_lines_skipped(self):
        stream = io.StringIO(_line() + "\n\n" + _line() + "\n")
        batches = list(read_batches(stream, batch_size=4))
        assert batches[0].batch_size == 2

    def test_malformed_line_raises(self):
        stream = io.StringIO("not a criteo line\n")
        with pytest.raises(ValueError):
            list(read_batches(stream, batch_size=1))

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            list(read_batches(io.StringIO(""), batch_size=0))

    def test_synthetic_writer_params(self):
        stream = io.StringIO()
        write_synthetic_tsv(stream, rows=200, seed=1,
                            positive_rate=0.5, missing_rate=0.0)
        stream.seek(0)
        records = [parse_line(line) for line in stream]
        labels = [record.label for record in records]
        assert 0.35 < np.mean(labels) < 0.65
        assert all(value is not None
                   for record in records
                   for value in record.integers)

    def test_writer_validation(self):
        with pytest.raises(ValueError):
            write_synthetic_tsv(io.StringIO(), rows=-1)
        with pytest.raises(ValueError):
            write_synthetic_tsv(io.StringIO(), rows=1, missing_rate=1.0)


class TestEndToEndTraining:
    def test_network_trains_on_tsv_stream(self):
        """The TSV path feeds the same training code as synthetic data."""
        dataset = criteo_dataset_spec(vocab_size=5000, embedding_dim=8)
        network = WdlNetwork(dataset, variant="dlrm", embedding_dim=8,
                             mlp_layers=(16,), seed=0)
        optimizer = Adagrad(lr=0.05)
        stream = io.StringIO()
        write_synthetic_tsv(stream, rows=256, seed=3)
        stream.seek(0)
        losses = [network.train_step(batch, optimizer)
                  for batch in read_batches(stream, batch_size=64)]
        assert len(losses) == 4
        assert all(np.isfinite(loss) for loss in losses)
