"""Tests for the hot/cold lookahead prefetch pipeline (repro.prefetch)."""

import numpy as np
import pytest

from repro.api import RunConfig, ServeConfig, StreamConfig, profile, run, \
    serve, stream
from repro.embedding.counter import FrequencyCounter
from repro.embedding.hybrid_hash import HybridHash
from repro.embedding.table import EmbeddingTable
from repro.prefetch import (
    AdaptiveResidency,
    BatchClass,
    FifoClassifier,
    HotnessClassifier,
    LookaheadPrefetcher,
    PrefetchConfig,
    batch_classifier,
    batch_classifiers,
    choose_deadline_aware,
    register_batch_classifier,
    resident_from_cache,
    resident_from_counter,
)
from repro.prefetch import classifiers as classifiers_module

#: Tiny-but-real facade workload (seconds, not minutes).
_WORKLOAD = dict(model="W&D", dataset="Product-1", scale=0.05,
                 cluster="eflops:2", batch_size=4_000, iterations=2)


def _zipf_stream(batches=32, batch_size=256, vocab=20_000, seed=0,
                 cold_every=4, hot_rows=1_000):
    """Skewed stream with a periodic uniform cold scan."""
    rng = np.random.default_rng(seed)
    stream_ids = []
    for index in range(batches):
        if (index + 1) % cold_every == 0:
            stream_ids.append(rng.integers(hot_rows, vocab, batch_size,
                                           dtype=np.int64))
        else:
            ranks = rng.zipf(1.2, size=batch_size)
            stream_ids.append(np.minimum(ranks, hot_rows) - 1)
    return stream_ids


def _oracle(stream_ids, hot_rows=1_000):
    counter = FrequencyCounter()
    for ids in stream_ids:
        counter.observe(ids)
    return resident_from_counter(counter, hot_rows)


class TestPrefetchConfig:
    def test_defaults_and_validation(self):
        config = PrefetchConfig()
        assert config.lookahead_depth == 4
        assert config.policy == "hotness"
        assert config.reorders
        with pytest.raises(ValueError):
            PrefetchConfig(lookahead_depth=0)
        with pytest.raises(ValueError):
            PrefetchConfig(hot_threshold=1.5)
        with pytest.raises(ValueError):
            PrefetchConfig(max_inflight_bytes=0.0)
        with pytest.raises(ValueError):
            PrefetchConfig(policy="")

    def test_fifo_and_depth_one_never_reorder(self):
        assert not PrefetchConfig(policy="fifo").reorders
        assert not PrefetchConfig(lookahead_depth=1).reorders

    def test_round_trip(self):
        config = PrefetchConfig(lookahead_depth=8, hot_threshold=0.25,
                                max_inflight_bytes=1e6, policy="fifo")
        assert PrefetchConfig.from_dict(config.as_dict()) == config

    @pytest.mark.parametrize("facade_cls,extra", [
        (RunConfig, {}),
        (ServeConfig, {}),
        (StreamConfig, {}),
    ])
    def test_facade_round_trip(self, facade_cls, extra):
        prefetch = PrefetchConfig(lookahead_depth=2, hot_threshold=0.9)
        config = facade_cls(prefetch=prefetch, **extra)
        back = facade_cls.from_dict(config.as_dict())
        assert back.prefetch == prefetch
        # Lossless: a second round trip is byte-stable.
        assert facade_cls.from_dict(back.as_dict()).as_dict() \
            == back.as_dict()

    def test_facade_default_is_off(self):
        for facade_cls in (RunConfig, ServeConfig, StreamConfig):
            config = facade_cls()
            assert config.prefetch is None
            assert facade_cls.from_dict(config.as_dict()).prefetch is None


class TestClassifierRegistry:
    def test_builtins_registered(self):
        names = batch_classifiers()
        assert "hotness" in names and "fifo" in names

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="hotness"):
            batch_classifier("no-such-policy")

    def test_register_duplicate_and_overwrite(self):
        def factory(config, resident=None):
            return FifoClassifier()

        register_batch_classifier("test-dup", factory)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_batch_classifier("test-dup", factory)
            register_batch_classifier("test-dup", factory,
                                      overwrite=True)
        finally:
            classifiers_module._CLASSIFIER_REGISTRY.pop("test-dup", None)

    def test_live_view(self):
        import repro.prefetch as prefetch_module

        def factory(config, resident=None):
            return FifoClassifier()

        register_batch_classifier("test-live", factory)
        try:
            assert "test-live" in prefetch_module.BATCH_CLASSIFIERS
        finally:
            classifiers_module._CLASSIFIER_REGISTRY.pop("test-live",
                                                        None)
        assert "test-live" not in prefetch_module.BATCH_CLASSIFIERS

    def test_plugin_policy_drives_pipeline(self):
        register_batch_classifier(
            "test-all-cold",
            lambda config, resident=None: HotnessClassifier(
                1.0, resident=None))
        try:
            config = PrefetchConfig(policy="test-all-cold")
            prefetcher = LookaheadPrefetcher(config)
            assert prefetcher.plan(_zipf_stream(batches=8)) \
                == list(range(8))
        finally:
            classifiers_module._CLASSIFIER_REGISTRY.pop("test-all-cold",
                                                        None)


class TestClassifiers:
    def test_hotness_scores_residency_fraction(self):
        classifier = HotnessClassifier(0.5,
                                       resident=lambda key: key < 2)
        verdict = classifier.classify(np.array([0, 1, 2, 3]), index=7)
        assert verdict == BatchClass(index=7, score=0.5, hot=True)
        assert not classifier.classify(np.array([2, 3, 4]), 0).hot

    def test_no_oracle_means_cold(self):
        classifier = HotnessClassifier(0.5)
        assert classifier.classify(np.array([1, 2]), 0).score == 0.0

    def test_fifo_always_hot(self):
        verdict = FifoClassifier().classify(np.array([9]), index=3)
        assert verdict.hot and verdict.score == 1.0

    def test_resident_from_cache_hybrid_hash(self):
        table = EmbeddingTable(dim=4, seed=0)
        cache = HybridHash(table, hot_bytes=64 * 4 * 4,
                           warmup_iters=0, flush_iters=1)
        rng = np.random.default_rng(0)
        for _ in range(4):
            cache.lookup(rng.integers(0, 8, 128))
        oracle = resident_from_cache(cache)
        assert any(oracle(key) for key in range(8))
        with pytest.raises(TypeError):
            resident_from_cache(object())

    def test_adaptive_residency_learns_stream(self):
        adaptive = AdaptiveResidency(hot_k=4, refresh_every=2)
        assert not adaptive(0)
        for _ in range(2):
            adaptive.observe(np.array([0, 1, 2, 3]))
        assert adaptive(0) and not adaptive(9)


class TestLookaheadPrefetcher:
    def test_plan_is_deterministic_permutation(self):
        stream_ids = _zipf_stream()
        oracle = _oracle(stream_ids)
        config = PrefetchConfig(lookahead_depth=4, hot_threshold=0.6)
        plans = [LookaheadPrefetcher(config, resident=oracle)
                 .plan(stream_ids) for _ in range(2)]
        assert plans[0] == plans[1]
        assert sorted(plans[0]) == list(range(len(stream_ids)))
        assert plans[0] != list(range(len(stream_ids)))  # it reorders

    def test_starvation_bound(self):
        stream_ids = _zipf_stream(batches=48)
        oracle = _oracle(stream_ids)
        for depth in (2, 4, 6):
            config = PrefetchConfig(lookahead_depth=depth,
                                    hot_threshold=0.6)
            plan = LookaheadPrefetcher(config, resident=oracle) \
                .plan(stream_ids)
            assert max(position - index
                       for position, index in enumerate(plan)) \
                <= depth - 1

    def test_fifo_and_depth_one_are_identity(self):
        stream_ids = _zipf_stream()
        oracle = _oracle(stream_ids)
        identity = list(range(len(stream_ids)))
        fifo = LookaheadPrefetcher(
            PrefetchConfig(policy="fifo"), resident=oracle)
        assert fifo.plan(stream_ids) == identity
        assert fifo.stats.staged == 0
        depth_one = LookaheadPrefetcher(
            PrefetchConfig(lookahead_depth=1), resident=oracle)
        assert depth_one.plan(stream_ids) == identity

    def test_inflight_byte_cap_blocks_reorder(self):
        stream_ids = _zipf_stream()
        oracle = _oracle(stream_ids)
        config = PrefetchConfig(lookahead_depth=4, hot_threshold=0.6,
                                max_inflight_bytes=1.0)
        capped = LookaheadPrefetcher(config, resident=oracle)
        assert capped.plan(stream_ids) == list(range(len(stream_ids)))
        assert capped.stats.staged_bytes == 0.0

    def test_staging_account_and_overlap(self):
        stream_ids = _zipf_stream()
        oracle = _oracle(stream_ids)
        config = PrefetchConfig(lookahead_depth=4, hot_threshold=0.6)
        prefetcher = LookaheadPrefetcher(config, resident=oracle,
                                         step_seconds=1e-3)
        prefetcher.plan(stream_ids)
        stats = prefetcher.stats
        assert stats.batches == len(stream_ids)
        assert stats.staged == len(prefetcher.records)
        assert stats.staged > 0
        assert stats.fetch_seconds > 0
        assert 0.0 <= stats.overlap_ratio <= 1.0
        for record in prefetcher.records:
            assert record.exposed_s == pytest.approx(
                record.fetch_s - record.hidden_s)
        # One modeled step per deferral hides these tiny fetches fully.
        assert stats.exposed_fetch_seconds == pytest.approx(0.0)

    def test_zero_step_seconds_exposes_everything(self):
        stream_ids = _zipf_stream()
        oracle = _oracle(stream_ids)
        config = PrefetchConfig(lookahead_depth=4, hot_threshold=0.6)
        prefetcher = LookaheadPrefetcher(config, resident=oracle)
        prefetcher.plan(stream_ids)
        assert prefetcher.stats.hidden_seconds == 0.0
        assert prefetcher.stats.exposed_fetch_seconds \
            == pytest.approx(prefetcher.stats.fetch_seconds)


class TestDeadlineAwareChoice:
    def _classes(self, hot_flags):
        return [BatchClass(index=i, score=1.0 if hot else 0.0, hot=hot)
                for i, hot in enumerate(hot_flags)]

    def test_hot_jumps_when_deadlines_hold(self):
        choice = choose_deadline_aware(
            self._classes([False, True]), estimates=[0.01, 0.01],
            deadlines=[1.0, 1.0], start_s=0.0, lookahead_depth=4,
            deferred=[0, 0])
        assert choice == 1

    def test_never_reorders_past_a_deadline(self):
        # Serving the hot batch first would finish the deferred cold
        # batch at 0.02 > its 0.015 deadline: FIFO order must win.
        choice = choose_deadline_aware(
            self._classes([False, True]), estimates=[0.01, 0.01],
            deadlines=[0.015, 1.0], start_s=0.0, lookahead_depth=4,
            deferred=[0, 0])
        assert choice == 0

    def test_starvation_bound_forces_head(self):
        choice = choose_deadline_aware(
            self._classes([False, True]), estimates=[0.01, 0.01],
            deadlines=[1.0, 1.0], start_s=0.0, lookahead_depth=2,
            deferred=[1, 0])
        assert choice == 0

    def test_fifo_mode_and_singleton(self):
        assert choose_deadline_aware(
            self._classes([False, True]), estimates=[0.01, 0.01],
            deadlines=[1.0, 1.0], start_s=0.0, lookahead_depth=4,
            deferred=[0, 0], reorders=False) == 0
        assert choose_deadline_aware(
            self._classes([True]), estimates=[0.01], deadlines=[1.0],
            start_s=0.0, lookahead_depth=4, deferred=[0]) == 0


class TestFacadeIntegration:
    def test_fifo_and_depth_one_reproduce_baseline_run(self):
        base = RunConfig(record_tasks=True, **_WORKLOAD)
        off = run(base)
        for prefetch in (PrefetchConfig(policy="fifo"),
                         PrefetchConfig(lookahead_depth=1)):
            same = run(base.with_overrides(prefetch=prefetch))
            assert same.ips == off.ips
            assert same.result.makespan == off.result.makespan
            assert tuple(same.result.task_records) \
                == tuple(off.result.task_records)

    def test_hotness_prefetch_changes_the_plan(self):
        off = run(RunConfig(**_WORKLOAD))
        on = run(RunConfig(prefetch=PrefetchConfig(lookahead_depth=4,
                                                   hot_threshold=1.0),
                           **_WORKLOAD))
        assert on.ips != off.ips

    def test_profile_reports_prefetch_monitor_only_when_on(self):
        off = profile(RunConfig(**_WORKLOAD))
        assert "prefetch" not in off.monitors
        on = profile(RunConfig(prefetch=PrefetchConfig(
            lookahead_depth=4, hot_threshold=1.0), **_WORKLOAD))
        summary = on.monitors["prefetch"].summary
        assert summary["prefetch_seconds"] > 0
        assert summary["exposed_fetch_seconds"] >= 0.0

    def test_serving_fifo_prefetch_is_identity(self):
        base = ServeConfig(requests=600, rate_qps=30_000.0)
        off = serve(base)
        fifo = serve(base.with_overrides(
            prefetch=PrefetchConfig(policy="fifo")))
        assert fifo.as_dict() == off.as_dict()

    def test_serving_hotness_prefetch_serves_everything(self):
        report = serve(ServeConfig(
            requests=600, rate_qps=30_000.0,
            prefetch=PrefetchConfig(lookahead_depth=4)))
        assert report.served + report.shed == 600

    def test_stream_fifo_prefetch_is_identity(self):
        base = StreamConfig(requests=400, train_steps=40,
                            publish_interval=10)
        off = stream(base)
        fifo = stream(base.with_overrides(
            prefetch=PrefetchConfig(policy="fifo")))
        assert fifo.final_loss == off.final_loss
        assert fifo.publishes == off.publishes

    def test_stream_hotness_prefetch_runs(self):
        report = stream(StreamConfig(
            requests=400, train_steps=40, publish_interval=10,
            prefetch=PrefetchConfig(lookahead_depth=2)))
        assert report.publishes >= 1
