"""Tests for differential observability: trace diff, flight recorder,
provenance manifests and the bench-diff attribution report.

The acceptance bar from the PR issue lives here: diffing a frozen
trace against a replay whose Shuffle ops were scaled 1.3x must
attribute >= 90% of the makespan delta to the shuffle op classes.
"""

import json

import pytest

from repro.api import RunConfig, run, run_manifest
from repro.bench.snapshot import BenchSnapshot
from repro.replay import CostHooks, TraceReplayer
from repro.sim import FrozenTrace, TaskRecord
from repro.sim.resource import ResourceKind
from repro.telemetry import (
    Alert,
    AnomalyDetector,
    FlightRecorder,
    RunManifest,
    align_records,
    annotate_timeseries,
    build_manifest,
    config_fingerprint,
    diff_snapshots,
    diff_traces,
    git_describe,
    validate_chrome_trace,
)
from repro.telemetry.diff import (
    ALIGN_BY_CLASS,
    ALIGN_BY_NAME,
    SHARED_WORKER,
    op_basename,
    worker_of,
)

BASE = RunConfig(model="W&D", dataset="Product-1", scale=0.02,
                 cluster="eflops:2", batch_size=2_000, iterations=2,
                 record_tasks=True)

_SM = ResourceKind.GPU_SM.value


@pytest.fixture(scope="module")
def base_trace():
    report = run(BASE)
    return FrozenTrace(records=tuple(report.result.task_records),
                       makespan=report.result.makespan,
                       metadata={"provenance": report.result.provenance})


@pytest.fixture(scope="module")
def shuffle_scaled(base_trace):
    """Replay with every shuffle op's costs scaled 1.3x."""
    hooks = CostHooks(compute=1.3, memory=1.3, communication=1.3,
                      launch=1.3, wait_model="frozen")

    def per_record(record):
        if "shuffle" in op_basename(record.name):
            return hooks
        return None

    replayer = TraceReplayer(base_trace.records,
                             makespan=base_trace.makespan)
    result = replayer.replay(record_hooks=per_record)
    return FrozenTrace(records=tuple(result.records),
                       makespan=result.makespan)


def _record(name, start, end, kind=_SM, wait=0.0, preds=()):
    return TaskRecord(name=name, start=start, end=end, preds=preds,
                      segments=((kind, start + wait, end),))


def _tiny_dataset():
    from repro.data.spec import DatasetSpec, FieldSpec
    return DatasetSpec(name="diff", num_numeric=2, fields=tuple(
        FieldSpec(name=f"cat_{index}", vocab_size=400,
                  embedding_dim=8, zipf_exponent=1.15)
        for index in range(2)))


def _tiny_network(seed=0):
    from repro.nn.network import WdlNetwork
    return WdlNetwork(_tiny_dataset(), variant="wdl", embedding_dim=8,
                      vocab_rows=400, mlp_layers=(16,), seed=seed)


class TestIdentity:
    def test_worker_of(self):
        assert worker_of("it0/s3/dim32.0/shuffle_stitch") == "s3"
        assert worker_of("dataset/read") == SHARED_WORKER

    def test_op_basename(self):
        assert op_basename("it0/s3/dim32.0/gather") == "gather"
        assert op_basename("barrier") == "barrier"


class TestAlignment:
    def test_identical_sets_align_by_name(self):
        records = [_record("it0/s0/a", 0.0, 1.0),
                   _record("it0/s1/a", 0.0, 1.0)]
        pairs, base_only, cand_only = align_records(records, records)
        assert len(pairs) == 2
        assert all(pair.how == ALIGN_BY_NAME for pair in pairs)
        assert base_only == [] and cand_only == []

    def test_renamed_instances_align_by_class(self):
        base = [_record("it0/s0/gather", 0.0, 1.0)]
        cand = [_record("it1/s0/gather", 0.0, 1.5)]
        pairs, base_only, cand_only = align_records(base, cand)
        assert len(pairs) == 1
        assert pairs[0].how == ALIGN_BY_CLASS
        assert base_only == [] and cand_only == []

    def test_disjoint_sets_fall_to_unmatched(self):
        base = [_record("it0/s0/gather", 0.0, 1.0)]
        cand = [_record("it0/s0/scatter", 0.0, 1.0)]
        pairs, base_only, cand_only = align_records(base, cand)
        assert pairs == []
        assert [r.name for r in base_only] == ["it0/s0/gather"]
        assert [r.name for r in cand_only] == ["it0/s0/scatter"]

    def test_class_pairing_is_start_ordered(self):
        base = [_record("it0/s0/a", 0.0, 1.0),
                _record("it1/s0/a", 2.0, 3.0)]
        cand = [_record("it2/s0/a", 2.5, 3.5),
                _record("it3/s0/a", 0.5, 1.5)]
        pairs, _, _ = align_records(base, cand)
        matched = {pair.base.name: pair.candidate.name
                   for pair in pairs}
        assert matched == {"it0/s0/a": "it3/s0/a",
                           "it1/s0/a": "it2/s0/a"}


class TestTraceDiffZero:
    def test_identical_traces_diff_to_exact_zero(self, base_trace):
        diff = diff_traces(base_trace, base_trace)
        assert diff.makespan_delta == 0.0  # exact, not approx
        assert all(entry.path_delta == 0.0 for entry in diff.entries)
        assert all(entry.share == 0.0 for entry in diff.entries)
        assert all(row["delta"] == 0.0
                   for row in diff.by_worker.values())
        assert diff.alignment["class"] == 0
        assert diff.alignment["base_only"] == 0
        assert diff.alignment["candidate_only"] == 0
        assert diff.alignment["name"] == len(base_trace.records)

    def test_unperturbed_replay_diffs_to_zero(self, base_trace):
        replayed = TraceReplayer(base_trace.records,
                                 makespan=base_trace.makespan).replay()
        again = FrozenTrace(records=tuple(replayed.records),
                            makespan=replayed.makespan)
        diff = diff_traces(base_trace, again)
        assert diff.makespan_delta == 0.0

    def test_dumps_is_byte_stable(self, base_trace, shuffle_scaled):
        first = diff_traces(base_trace, shuffle_scaled).dumps()
        second = diff_traces(base_trace, shuffle_scaled).dumps()
        assert first == second
        json.loads(first)  # strict JSON


class TestShuffleAttribution:
    """The PR acceptance bar: >= 90% of the delta lands on shuffle."""

    def test_attribution_share(self, base_trace, shuffle_scaled):
        diff = diff_traces(base_trace, shuffle_scaled)
        assert diff.makespan_delta > 0.0
        assert diff.explained_share("shuffle") >= 0.9

    def test_shares_partition_the_delta(self, base_trace,
                                        shuffle_scaled):
        diff = diff_traces(base_trace, shuffle_scaled)
        assert sum(entry.share for entry in diff.entries) \
            == pytest.approx(1.0)
        assert sum(row["share"] for row in diff.by_worker.values()) \
            == pytest.approx(1.0)

    def test_top_entry_is_a_shuffle_op(self, base_trace,
                                       shuffle_scaled):
        diff = diff_traces(base_trace, shuffle_scaled)
        assert "shuffle" in diff.entries[0].label

    def test_format_mentions_the_culprit(self, base_trace,
                                         shuffle_scaled):
        text = diff_traces(base_trace, shuffle_scaled).format()
        assert "shuffle" in text
        assert "ranked attribution" in text

    def test_overlay_validates(self, base_trace, shuffle_scaled):
        overlay = diff_traces(base_trace, shuffle_scaled).overlay()
        validate_chrome_trace(overlay)
        pids = {event["pid"] for event in overlay["traceEvents"]}
        assert pids == {0, 1, 2}


class TestProvenance:
    def test_manifest_round_trip(self):
        manifest = build_manifest(kind="run",
                                  config={"model": "W&D", "scale": 1.0},
                                  knobs={"interleaving": True})
        payload = manifest.as_dict()
        restored = RunManifest.from_dict(payload)
        assert restored.as_dict() == payload

    def test_schema_mismatch_raises(self):
        payload = build_manifest().as_dict()
        payload["schema_version"] = 999
        with pytest.raises(ValueError):
            RunManifest.from_dict(payload)

    def test_fingerprint_tracks_config(self):
        one = config_fingerprint({"a": 1})
        assert one == config_fingerprint({"a": 1})
        assert one != config_fingerprint({"a": 2})

    def test_git_describe_is_cached_and_stable(self):
        assert git_describe() == git_describe()
        assert isinstance(git_describe(), str)

    def test_run_stamps_result_provenance(self, base_trace):
        prov = base_trace.metadata["provenance"]
        assert prov["kind"] == "run"
        assert prov["config"]["model"] == "W&D"
        assert prov["config_fingerprint"] \
            == config_fingerprint(prov["config"])

    def test_run_manifest_helper(self):
        payload = run_manifest(BASE, "PICASSO", kind="trace")
        assert payload["kind"] == "trace"
        assert payload["extra"]["report_name"] == "PICASSO"

    def test_diff_carries_provenance(self, base_trace, shuffle_scaled):
        diff = diff_traces(base_trace, shuffle_scaled)
        assert diff.base_provenance["kind"] == "run"
        assert diff.candidate_provenance == {}


class TestFlightRecorder:
    def test_ring_never_exceeds_capacity(self):
        recorder = FlightRecorder(capacity=16)
        for index in range(100):
            recorder.record_sample("loss", float(index), 1.0)
        assert len(recorder) == 16
        assert recorder.dropped == 84
        assert recorder.events()[0].time_s == 84.0

    def test_retention_window(self):
        recorder = FlightRecorder(capacity=64, retention_s=5.0)
        for index in range(20):
            recorder.record_sample("loss", float(index), 1.0)
        window = recorder.window()
        assert [event.time_s for event in window] \
            == [14.0, 15.0, 16.0, 17.0, 18.0, 19.0]

    def test_dump_on_alert_is_valid_chrome_trace(self):
        recorder = FlightRecorder(capacity=32)
        recorder.record_span("batch0", 0.0, 0.5, track="server")
        recorder.record_sample("qps", 0.5, 100.0)
        payload = recorder.record_alert(Alert(
            time_s=0.6, monitor="slo", severity="warning",
            message="shed", value=1.0, threshold=0.0, name="shed"))
        assert payload is not None
        validate_chrome_trace(payload)
        assert payload["otherData"]["flight"]["reason"] == "alert:shed"

    def test_info_alert_does_not_dump(self):
        recorder = FlightRecorder(capacity=32)
        payload = recorder.record_alert(Alert(
            time_s=0.0, monitor="slo", severity="info", message="ok",
            value=0.0, threshold=0.0))
        assert payload is None

    def test_watch_dumps_and_reraises(self, tmp_path):
        recorder = FlightRecorder(capacity=32, dump_dir=str(tmp_path))
        with pytest.raises(RuntimeError):
            with recorder.watch(time_s=1.0, label="train/step"):
                raise RuntimeError("boom")
        assert len(recorder.dump_paths) == 1
        with open(recorder.dump_paths[0]) as handle:
            validate_chrome_trace(json.load(handle))

    def test_dump_filenames_are_deterministic(self, tmp_path):
        recorder = FlightRecorder(capacity=8, dump_dir=str(tmp_path))
        recorder.dump(reason="manual")
        recorder.dump(reason="alert:shed")
        names = [path.rsplit("/", 1)[-1]
                 for path in recorder.dump_paths]
        assert names == ["flight_000_manual.json",
                         "flight_001_alert_shed.json"]

    def test_empty_dump_is_valid(self):
        recorder = FlightRecorder(capacity=8)
        validate_chrome_trace(recorder.dump(reason="manual"))


class TestAnomalyDetector:
    def test_warmup_suppresses_alerts(self):
        detector = AnomalyDetector("loss", warmup=8)
        for index in range(8):
            assert detector.observe(float(index), 100.0) is None

    def test_spike_alerts_after_warmup(self):
        detector = AnomalyDetector("loss", z_threshold=3.0, warmup=4)
        samples = [(float(i), 1.0 + 0.01 * (i % 2)) for i in range(20)]
        assert annotate_timeseries(detector, samples) == []
        alert = detector.observe(20.0, 50.0)
        assert alert is not None
        assert alert.name == "anomaly"
        assert alert.severity == "warning"

    def test_anomaly_does_not_shift_the_mean(self):
        detector = AnomalyDetector("loss", z_threshold=3.0, warmup=4)
        for index in range(20):
            detector.observe(float(index), 1.0 + 0.01 * (index % 2))
        mean_before = detector.mean
        assert detector.observe(20.0, 50.0) is not None
        assert detector.mean == mean_before

    def test_trainer_integration_records_losses(self):
        from repro.data.labeled import LabeledBatchIterator
        from repro.training.trainer import SyncTrainer

        dataset = _tiny_dataset()
        network = _tiny_network()
        recorder = FlightRecorder(capacity=64)
        trainer = SyncTrainer(network, flight=recorder)
        iterator = LabeledBatchIterator(dataset, 64, seed=0)
        trainer.train(iterator, steps=3)
        samples = [event for event in recorder.events()
                   if event.kind == "sample"]
        assert len(samples) == 3
        assert samples[0].name == "train/loss"


class TestOnlineProvenanceRoundTrip:
    def _network(self):
        return _tiny_network()

    def test_delta_snapshot_round_trips_provenance(self, tmp_path):
        from repro.online.delta import (
            capture_delta,
            load_delta,
            save_delta,
        )
        network = self._network()
        manifest = build_manifest(kind="stream",
                                  config={"seed": 0}).as_dict()
        dirty = {name: [0, 1] for name in network.embeddings}
        delta = capture_delta(network, dirty, version=1,
                              base_version=0, step=10,
                              provenance=manifest)
        path = save_delta(delta, tmp_path / "delta")
        restored = load_delta(path)
        assert restored.provenance == manifest

    def test_registry_round_trips_provenance(self, tmp_path):
        from repro.online.registry import SnapshotRegistry
        network = self._network()
        manifest = build_manifest(kind="stream",
                                  config={"seed": 0}).as_dict()
        registry = SnapshotRegistry(tmp_path)
        entry = registry.publish(network, step=0, provenance=manifest)
        assert entry.provenance == manifest
        reloaded = SnapshotRegistry(tmp_path)
        assert reloaded.latest().provenance == manifest


class TestBenchDiff:
    def _snapshots(self):
        baseline = BenchSnapshot(
            name="demo", config={"seed": 0},
            metrics={"ips": 100.0, "p99_ms": 10.0, "count": 5},
            tolerances={"ips": 0.05, "p99_ms": 0.05, "count": 0.0},
            provenance={"git": "abc", "config_fingerprint": "f00"})
        candidate = BenchSnapshot(
            name="demo", config={"seed": 0},
            metrics={"ips": 80.0, "p99_ms": 10.2, "fresh": 1.0},
            tolerances={})
        return baseline, candidate

    def test_ranking_most_severe_first(self):
        baseline, candidate = self._snapshots()
        diff = diff_snapshots(baseline, candidate)
        assert [row.metric for row in diff.rows][:2] == ["count", "ips"]
        assert diff.rows[0].severity == float("inf")  # missing metric
        assert diff.rows[0].status == "missing"
        assert diff.rows[1].severity == pytest.approx(4.0)  # 20% / 5%

    def test_regressed_and_new(self):
        baseline, candidate = self._snapshots()
        diff = diff_snapshots(baseline, candidate)
        assert {row.metric for row in diff.regressed} \
            == {"count", "ips"}
        new = [row for row in diff.rows if row.status == "new"]
        assert [row.metric for row in new] == ["fresh"]
        assert new[0].severity == 0.0

    def test_as_dict_is_strict_json(self):
        baseline, candidate = self._snapshots()
        diff = diff_snapshots(baseline, candidate)
        text = json.dumps(diff.as_dict(), allow_nan=False)
        json.loads(text)

    def test_format_carries_provenance(self):
        baseline, candidate = self._snapshots()
        text = diff_snapshots(baseline, candidate).format()
        assert "git abc" in text
        assert "metric(s) over tolerance" in text

    def test_bench_snapshot_provenance_round_trip(self):
        baseline, _ = self._snapshots()
        restored = BenchSnapshot.from_dict(baseline.as_dict())
        assert restored.provenance == baseline.provenance


class TestValidatorStrengthening:
    """S1: the Chrome-trace validator's new invariants reject bad
    payloads (good payloads are covered by the overlay/dump tests)."""

    def _payload(self, events):
        metadata = [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "p"}},
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "t"}},
        ]
        return {"traceEvents": metadata + events}

    def test_counter_ts_regression_rejected(self):
        events = [
            {"name": "qps", "ph": "C", "ts": 2.0, "pid": 0, "tid": 0,
             "args": {"value": 1.0}},
            {"name": "qps", "ph": "C", "ts": 1.0, "pid": 0, "tid": 0,
             "args": {"value": 2.0}},
        ]
        with pytest.raises(ValueError, match="ts"):
            validate_chrome_trace(self._payload(events))

    def test_cumulative_counter_decrease_rejected(self):
        events = [
            {"name": "cumulative work", "ph": "C", "ts": 1.0,
             "pid": 0, "tid": 0, "args": {"value": 2.0}},
            {"name": "cumulative work", "ph": "C", "ts": 2.0,
             "pid": 0, "tid": 0, "args": {"value": 1.0}},
        ]
        with pytest.raises(ValueError, match="cumulative"):
            validate_chrome_trace(self._payload(events))

    def test_missing_process_name_rejected(self):
        payload = {"traceEvents": [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "t"}},
            {"name": "op", "ph": "X", "ts": 0.0, "dur": 1.0,
             "pid": 0, "tid": 0},
        ]}
        with pytest.raises(ValueError, match="process_name"):
            validate_chrome_trace(payload)

    def test_missing_thread_name_rejected(self):
        payload = {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "p"}},
            {"name": "op", "ph": "X", "ts": 0.0, "dur": 1.0,
             "pid": 0, "tid": 7},
        ]}
        with pytest.raises(ValueError, match="thread_name"):
            validate_chrome_trace(payload)
