"""Unit tests for resources, phases and water-filling allocation."""

import math

import pytest

from repro.sim import Phase, Resource, ResourceKind, SimTask
from repro.sim.resource import (
    COMMUNICATION_KINDS,
    COMPUTE_KINDS,
    MEMORY_KINDS,
)


class TestPhase:
    def test_defaults(self):
        phase = Phase(ResourceKind.GPU_SM, 100.0)
        assert phase.max_rate == math.inf

    def test_rejects_negative_work(self):
        with pytest.raises(ValueError):
            Phase(ResourceKind.NET, -1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Phase(ResourceKind.NET, 1.0, max_rate=0.0)

    def test_zero_work_allowed(self):
        assert Phase(ResourceKind.NET, 0.0).work == 0.0


class TestResourceValidation:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Resource(ResourceKind.NET, capacity=0.0)

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            Resource(ResourceKind.LAUNCH, capacity=1.0, slots=0)

    def test_free_slot_logic(self):
        resource = Resource(ResourceKind.LAUNCH, capacity=1.0, slots=1)
        assert resource.has_free_slot()
        resource.active.append(object())
        assert not resource.has_free_slot()

    def test_unbounded_slots(self):
        resource = Resource(ResourceKind.NET, capacity=1.0)
        resource.active.extend(object() for _ in range(100))
        assert resource.has_free_slot()


def _task_with_rate(max_rate):
    return SimTask("t", [Phase(ResourceKind.NET, 10.0, max_rate=max_rate)])


class TestWaterFilling:
    def test_equal_split_when_unbounded(self):
        resource = Resource(ResourceKind.NET, capacity=10.0)
        tasks = [_task_with_rate(math.inf) for _ in range(4)]
        resource.active.extend(tasks)
        rates = resource.allocate_rates()
        assert all(rate == pytest.approx(2.5) for rate in rates.values())

    def test_capped_task_leaves_share_for_others(self):
        resource = Resource(ResourceKind.NET, capacity=10.0)
        slow = _task_with_rate(1.0)
        fast = _task_with_rate(math.inf)
        resource.active.extend([slow, fast])
        rates = resource.allocate_rates()
        assert rates[slow] == pytest.approx(1.0)
        assert rates[fast] == pytest.approx(9.0)

    def test_total_never_exceeds_capacity(self):
        resource = Resource(ResourceKind.NET, capacity=10.0)
        tasks = [_task_with_rate(rate) for rate in (1.0, 2.0, math.inf,
                                                    math.inf, 0.5)]
        resource.active.extend(tasks)
        total = sum(resource.allocate_rates().values())
        assert total <= 10.0 + 1e-9

    def test_all_capped_below_fair_share(self):
        resource = Resource(ResourceKind.NET, capacity=100.0)
        tasks = [_task_with_rate(1.0) for _ in range(3)]
        resource.active.extend(tasks)
        rates = resource.allocate_rates()
        assert all(rate == pytest.approx(1.0) for rate in rates.values())

    def test_empty_allocation(self):
        resource = Resource(ResourceKind.NET, capacity=10.0)
        assert resource.allocate_rates() == {}


class TestKindGroups:
    def test_groups_are_disjoint(self):
        assert not (COMMUNICATION_KINDS & MEMORY_KINDS)
        assert not (COMMUNICATION_KINDS & COMPUTE_KINDS)
        assert not (MEMORY_KINDS & COMPUTE_KINDS)

    def test_net_is_communication(self):
        assert ResourceKind.NET in COMMUNICATION_KINDS
        assert ResourceKind.NVLINK in COMMUNICATION_KINDS

    def test_pcie_is_memory(self):
        assert ResourceKind.PCIE in MEMORY_KINDS
