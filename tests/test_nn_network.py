"""Unit tests for the runnable WDL networks."""

import numpy as np
import pytest

from repro.data.labeled import LabeledBatchIterator
from repro.data.spec import DatasetSpec, FieldSpec
from repro.nn.network import WdlNetwork
from repro.nn.optim import Adagrad


def _dataset(with_sequence=True):
    fields = [
        FieldSpec(name="a", vocab_size=500, embedding_dim=8),
        FieldSpec(name="b", vocab_size=500, embedding_dim=8),
    ]
    if with_sequence:
        fields.append(FieldSpec(name="s", vocab_size=800, embedding_dim=8,
                                seq_length=4))
    return DatasetSpec(name="d", num_numeric=2, fields=tuple(fields))


def _batch(dataset, size=32, seed=0):
    return LabeledBatchIterator(dataset, size, noise_scale=0.5,
                                seed=seed).next_batch()


class TestConstruction:
    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            WdlNetwork(_dataset(), variant="gpt")

    @pytest.mark.parametrize("variant",
                             ["wdl", "dlrm", "deepfm", "din", "dien"])
    def test_forward_shapes(self, variant):
        dataset = _dataset()
        network = WdlNetwork(dataset, variant=variant, embedding_dim=8,
                             mlp_layers=(16,), seed=0)
        logits = network.forward(_batch(dataset))
        assert logits.shape == (32,)
        assert np.all(np.isfinite(logits))

    def test_din_uses_attention(self):
        network = WdlNetwork(_dataset(), variant="din")
        assert len(network.poolers) == 1

    def test_dien_uses_gru(self):
        from repro.nn.interactions import GruPooling
        network = WdlNetwork(_dataset(), variant="dien")
        assert all(isinstance(p, GruPooling)
                   for p in network.poolers.values())

    def test_wdl_mean_pools(self):
        network = WdlNetwork(_dataset(), variant="wdl")
        assert network.poolers == {}


class TestGradients:
    def test_end_to_end_gradient_check(self):
        """Numerical check through embeddings, pooling and MLP."""
        dataset = _dataset()
        network = WdlNetwork(dataset, variant="din", embedding_dim=4,
                             mlp_layers=(6,), seed=1)
        batch = _batch(dataset, size=8, seed=2)
        upstream = np.random.default_rng(3).standard_normal(8)

        layer = network.mlp[0]

        def loss():
            return float((network.forward(batch) * upstream).sum())

        eps = 1e-6
        expected = np.zeros_like(layer.weight)
        for i in range(min(4, layer.weight.shape[0])):
            for j in range(layer.weight.shape[1]):
                original = layer.weight[i, j]
                layer.weight[i, j] = original + eps
                plus = loss()
                layer.weight[i, j] = original - eps
                minus = loss()
                layer.weight[i, j] = original
                expected[i, j] = (plus - minus) / (2 * eps)

        network.zero_grad()
        network.forward(batch)
        network.backward(upstream)
        assert np.allclose(layer.grad_weight[:4], expected[:4], atol=1e-4)

    def test_backward_without_forward_errors(self):
        network = WdlNetwork(_dataset(), variant="wdl")
        with pytest.raises(RuntimeError):
            network.backward(np.zeros(4))


class TestTraining:
    @pytest.mark.parametrize("variant",
                             ["wdl", "dlrm", "deepfm", "din", "dien"])
    def test_loss_decreases(self, variant):
        dataset = _dataset()
        network = WdlNetwork(dataset, variant=variant, embedding_dim=8,
                             mlp_layers=(16,), seed=0)
        iterator = LabeledBatchIterator(dataset, 256, noise_scale=0.3,
                                        seed=0)
        optimizer = Adagrad(lr=0.1)
        losses = [network.train_step(batch, optimizer)
                  for batch in iterator.batches(30)]
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_train_step_requires_labels(self):
        dataset = _dataset()
        network = WdlNetwork(dataset, variant="wdl")
        batch = _batch(dataset)
        batch.labels = None
        with pytest.raises(ValueError):
            network.train_step(batch, Adagrad())

    def test_predict_returns_probabilities(self):
        dataset = _dataset()
        network = WdlNetwork(dataset, variant="wdl")
        probs = network.predict(_batch(dataset))
        assert np.all((probs >= 0) & (probs <= 1))


class TestStateManagement:
    def test_dense_state_roundtrip(self):
        dataset = _dataset()
        network = WdlNetwork(dataset, variant="din", seed=0)
        state = network.dense_state()
        batch = _batch(dataset)
        network.train_step(batch, Adagrad(lr=0.5))
        network.load_dense_state(state)
        for name, (value, _grad) in network.parameters().items():
            assert np.array_equal(value, state[name])

    def test_dense_state_is_a_copy(self):
        dataset = _dataset()
        network = WdlNetwork(dataset, variant="wdl", seed=0)
        state = network.dense_state()
        network.train_step(_batch(dataset), Adagrad(lr=0.5))
        fresh = WdlNetwork(dataset, variant="wdl", seed=0)
        for name, (value, _grad) in fresh.parameters().items():
            assert np.array_equal(state[name], value)

    def test_parameters_include_poolers(self):
        network = WdlNetwork(_dataset(), variant="din")
        assert any(name.startswith("att.")
                   for name in network.parameters())
