"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.packing import pack_by_dimension
from repro.data.spec import DatasetSpec, FieldSpec
from repro.data.statistics import coverage_of_top_fraction
from repro.data.synthetic import BoundedZipf
from repro.embedding import EmbeddingTable, HybridHash, shard_for_id
from repro.nn.loss import bce_loss
from repro.nn.metrics import auc_score
from repro.sim import Engine, Phase, Resource, ResourceKind, SimTask

settings.register_profile("repro", deadline=None, max_examples=40)
settings.load_profile("repro")


# -- simulator invariants -----------------------------------------------------

@given(capacity=st.floats(0.1, 1e6),
       rates=st.lists(st.floats(0.01, 1e6), min_size=1, max_size=12))
def test_water_filling_never_exceeds_capacity(capacity, rates):
    resource = Resource(ResourceKind.NET, capacity=capacity)
    tasks = [SimTask(f"t{i}", [Phase(ResourceKind.NET, 1.0, max_rate=r)])
             for i, r in enumerate(rates)]
    resource.active.extend(tasks)
    allocation = resource.allocate_rates()
    assert sum(allocation.values()) <= capacity * (1 + 1e-9)
    for task, rate in allocation.items():
        assert rate <= task.current_phase.max_rate * (1 + 1e-9)


@given(works=st.lists(st.floats(0.1, 1e3), min_size=1, max_size=10))
def test_makespan_bounded_by_serial_and_parallel_time(works):
    capacity = 10.0
    resource = {ResourceKind.NET: Resource(ResourceKind.NET, capacity)}
    tasks = [SimTask(f"t{i}", [Phase(ResourceKind.NET, work)])
             for i, work in enumerate(works)]
    result = Engine(resource).run(tasks)
    total = sum(works)
    # Processor sharing: total throughput is exactly the capacity when
    # saturated, so makespan equals total/capacity for concurrent work.
    assert result.makespan >= total / capacity * (1 - 1e-9)
    assert result.makespan <= total / capacity * (1 + 1e-6) + 1e-9


@given(works=st.lists(st.floats(0.1, 100.0), min_size=2, max_size=8))
def test_chained_equals_sum(works):
    capacity = 5.0
    resource = {ResourceKind.NET: Resource(ResourceKind.NET, capacity)}
    tasks = [SimTask(f"t{i}", [Phase(ResourceKind.NET, work)])
             for i, work in enumerate(works)]
    for before, after in zip(tasks[:-1], tasks[1:]):
        after.depends_on(before)
    result = Engine(resource).run(tasks)
    assert math.isclose(result.makespan, sum(works) / capacity,
                        rel_tol=1e-6)


# -- data invariants ----------------------------------------------------------

@given(vocab=st.integers(1, 10_000_000),
       exponent=st.floats(0.5, 2.0),
       size=st.integers(0, 2000),
       seed=st.integers(0, 1000))
def test_zipf_ids_always_in_vocabulary(vocab, exponent, size, seed):
    zipf = BoundedZipf(vocab, exponent)
    ids = zipf.sample(size, np.random.default_rng(seed))
    assert ids.size == size
    if size:
        assert ids.min() >= 0
        assert ids.max() < vocab


@given(ids=st.lists(st.integers(0, 50), min_size=1, max_size=300),
       fraction=st.floats(0.01, 1.0))
def test_coverage_monotone_in_fraction(ids, fraction):
    array = np.array(ids)
    smaller = coverage_of_top_fraction(array, fraction / 2)
    larger = coverage_of_top_fraction(array, fraction)
    assert 0.0 <= smaller <= larger <= 1.0


@given(ids=st.lists(st.integers(-10**9, 10**9), min_size=1, max_size=200),
       shards=st.integers(1, 64))
def test_sharding_total_and_stability(ids, shards):
    array = np.array(ids, dtype=np.int64)
    owners = shard_for_id(array, shards)
    assert owners.shape == array.shape
    assert owners.min() >= 0 and owners.max() < shards
    assert np.array_equal(owners, shard_for_id(array, shards))


# -- cache invariants ---------------------------------------------------------

@given(queries=st.lists(
    st.lists(st.integers(0, 200), min_size=1, max_size=30),
    min_size=1, max_size=15),
    hot_rows=st.integers(0, 100),
    warmup=st.integers(0, 5))
def test_hybrid_hash_transparent(queries, hot_rows, warmup):
    """Cache contents never change lookup results (Algorithm 1)."""
    cache = HybridHash(EmbeddingTable(dim=2, seed=9),
                       hot_bytes=hot_rows * 8, warmup_iters=warmup,
                       flush_iters=2)
    plain = EmbeddingTable(dim=2, seed=9)
    for ids in queries:
        array = np.array(ids)
        assert np.array_equal(cache.lookup(array), plain.lookup(array))
    assert 0.0 <= cache.stats.hit_ratio <= 1.0


# -- packing invariants -------------------------------------------------------

@given(dims=st.lists(st.sampled_from([4, 8, 16, 32, 64, 128]),
                     min_size=1, max_size=24),
       batch=st.integers(1, 4096))
def test_packing_conserves_fields_and_volume(dims, batch):
    dataset = DatasetSpec(name="d", fields=tuple(
        FieldSpec(name=f"f{i}", vocab_size=1000, embedding_dim=dim)
        for i, dim in enumerate(dims)))
    groups = pack_by_dimension(dataset, batch)
    # Every field appears with total shard weight 1.0.
    weights: dict = {}
    for group in groups:
        for spec in group.fields:
            weights[spec.name] = weights.get(spec.name, 0.0) \
                + group.shard_fraction
    assert set(weights) == {spec.name for spec in dataset.fields}
    for weight in weights.values():
        assert math.isclose(weight, 1.0, rel_tol=1e-9) or weight <= 1.0
    # Total processed IDs are conserved.
    total = sum(group.ids_per_batch(batch) for group in groups)
    assert math.isclose(total, batch * len(dims), rel_tol=1e-9)


# -- metric invariants --------------------------------------------------------

@given(labels=st.lists(st.integers(0, 1), min_size=2, max_size=200),
       seed=st.integers(0, 100))
def test_auc_complement_symmetry(labels, seed):
    array = np.array(labels, dtype=float)
    scores = np.random.default_rng(seed).standard_normal(array.size)
    auc = auc_score(array, scores)
    flipped = auc_score(array, -scores)
    if 0 < array.sum() < array.size:
        assert math.isclose(auc + flipped, 1.0, abs_tol=1e-9)
    else:
        assert auc == 0.5


@given(logits=st.lists(st.floats(-30, 30), min_size=1, max_size=100),
       seed=st.integers(0, 50))
def test_bce_nonnegative(logits, seed):
    array = np.array(logits)
    labels = (np.random.default_rng(seed).random(array.size)
              > 0.5).astype(float)
    assert bce_loss(array, labels) >= 0.0
