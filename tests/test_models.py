"""Unit tests for the model zoo and cost formulas."""

import pytest

from repro.data import alibaba, criteo, product1, product2, product3
from repro.models import (
    MODEL_BUILDERS,
    can,
    dien,
    din,
    dlrm,
    lr,
    mmoe,
    wide_deep,
)
from repro.models.base import (
    InteractionKind,
    InteractionModuleSpec,
    ModelSpec,
    interaction_flops_per_instance,
)


class TestZooBuilders:
    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_builds_on_product2(self, name):
        model = MODEL_BUILDERS[name](product2(0.001))
        assert model.num_modules >= 1
        assert model.interaction_output_dim() > 0

    def test_lr_has_no_mlp(self):
        model = lr(product1(0.001))
        assert model.mlp_layers == ()

    def test_din_has_attention_per_sequence(self):
        dataset = alibaba(0.001)
        model = din(dataset)
        attention = [m for m in model.modules
                     if m.kind is InteractionKind.ATTENTION]
        assert len(attention) == 12

    def test_dien_has_gru_and_augru(self):
        model = dien(alibaba(0.001))
        kinds = [m.kind for m in model.modules]
        assert kinds.count(InteractionKind.GRU) == 12
        assert kinds.count(InteractionKind.AUGRU) == 12

    def test_can_module_count_scales_with_sequences(self):
        model = can(product2(0.001))
        coaction = [m for m in model.modules
                    if m.kind is InteractionKind.COACTION]
        assert len(coaction) == 30
        assert all(m.repeats == 8 for m in coaction)

    def test_mmoe_has_71_experts(self):
        model = mmoe(product3(0.001))
        experts = [m for m in model.modules
                   if m.kind is InteractionKind.EXPERT]
        assert len(experts) == 1
        assert experts[0].repeats == 71
        assert model.num_tasks == 4

    def test_wide_deep_has_wide_and_deep(self):
        model = wide_deep(product1(0.001))
        kinds = {m.kind for m in model.modules}
        assert InteractionKind.LINEAR in kinds
        assert InteractionKind.CONCAT in kinds


class TestModelSpec:
    def test_rejects_unknown_fields(self):
        dataset = criteo(0.001)
        module = InteractionModuleSpec(name="bad",
                                       kind=InteractionKind.CONCAT,
                                       fields=("missing",))
        with pytest.raises(ValueError):
            ModelSpec(name="m", dataset=dataset, modules=(module,))

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            InteractionModuleSpec(name="m", kind=InteractionKind.CONCAT,
                                  fields=("a",), repeats=0)

    def test_expert_output_not_multiplied_by_repeats(self):
        """The gate mixes experts; the MLP sees one expert width."""
        model = mmoe(product3(0.001), num_experts=71)
        few = mmoe(product3(0.001), num_experts=2)
        assert model.interaction_output_dim() \
            == few.interaction_output_dim()

    def test_dense_parameters_scale_with_experts(self):
        many = mmoe(product3(0.001), num_experts=71)
        few = mmoe(product3(0.001), num_experts=7)
        assert many.dense_parameters() > few.dense_parameters() * 5

    def test_mlp_parameters_positive(self):
        model = dlrm(criteo(0.001))
        assert model.mlp_parameters() > 0
        assert model.dense_parameters() >= model.mlp_parameters()


class TestFlopFormulas:
    def _fields(self, dataset, module):
        return [dataset.field(name) for name in module.fields]

    def test_concat_is_free(self):
        dataset = criteo(0.001)
        module = InteractionModuleSpec(
            name="c", kind=InteractionKind.CONCAT,
            fields=tuple(f.name for f in dataset.fields))
        assert interaction_flops_per_instance(
            module, self._fields(dataset, module)) == 0.0

    def test_attention_scales_with_sequence(self):
        dataset = alibaba(0.001)
        seq_field = next(f for f in dataset.fields if f.seq_length > 1)
        module = InteractionModuleSpec(
            name="a", kind=InteractionKind.ATTENTION,
            fields=(seq_field.name,), hidden=36)
        flops = interaction_flops_per_instance(module, [seq_field])
        assert flops > seq_field.seq_length  # superlinear in L

    def test_gru_heavier_than_attention(self):
        dataset = alibaba(0.001)
        seq_field = next(f for f in dataset.fields if f.seq_length > 1)
        gru = InteractionModuleSpec(name="g", kind=InteractionKind.GRU,
                                    fields=(seq_field.name,))
        att = InteractionModuleSpec(name="a",
                                    kind=InteractionKind.ATTENTION,
                                    fields=(seq_field.name,), hidden=4)
        assert interaction_flops_per_instance(gru, [seq_field]) \
            > interaction_flops_per_instance(att, [seq_field])

    def test_all_kinds_have_formulas(self):
        dataset = product2(0.001)
        field = dataset.fields[0]
        for kind in InteractionKind:
            module = InteractionModuleSpec(name="x", kind=kind,
                                           fields=(field.name,))
            flops = interaction_flops_per_instance(module, [field])
            assert flops >= 0.0

    def test_empty_fields(self):
        module = InteractionModuleSpec(name="x",
                                       kind=InteractionKind.CONCAT,
                                       fields=())
        assert interaction_flops_per_instance(module, []) == 0.0
