"""Unit tests for trace-derived metrics (timelines, CDFs)."""

import numpy as np
import pytest

from repro.sim.metrics import (
    bandwidth_timeline,
    intersect_seconds,
    merge_intervals,
    overlap_seconds,
    busy_fraction,
    mean_utilization,
    utilization_cdf,
    utilization_timeline,
)
from repro.sim.resource import ResourceKind
from repro.sim.trace import TraceRecorder


def _recorder_with_half_busy():
    recorder = TraceRecorder({ResourceKind.NET: 10.0})
    # Busy at full rate for the first half of a 2-second run.
    recorder.add_interval(0.0, 1.0, {ResourceKind.NET: 10.0})
    return recorder


class TestTimelines:
    def test_utilization_buckets(self):
        recorder = _recorder_with_half_busy()
        times, util = utilization_timeline(recorder, ResourceKind.NET,
                                           makespan=2.0, bucket=0.5)
        assert len(util) == 4
        assert util[0] == pytest.approx(1.0)
        assert util[3] == pytest.approx(0.0)
        assert times[1] == pytest.approx(0.5)

    def test_bandwidth_buckets(self):
        recorder = _recorder_with_half_busy()
        _times, rates = bandwidth_timeline(recorder, ResourceKind.NET,
                                           makespan=2.0, bucket=1.0)
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(0.0)

    def test_partial_bucket_overlap(self):
        recorder = TraceRecorder({ResourceKind.NET: 10.0})
        recorder.add_interval(0.25, 0.75, {ResourceKind.NET: 10.0})
        _times, util = utilization_timeline(recorder, ResourceKind.NET,
                                            makespan=1.0, bucket=0.5)
        assert util[0] == pytest.approx(0.5)
        assert util[1] == pytest.approx(0.5)

    def test_empty_makespan(self):
        recorder = TraceRecorder({ResourceKind.NET: 10.0})
        _times, util = utilization_timeline(recorder, ResourceKind.NET,
                                            makespan=0.0)
        assert util.size == 0


class TestCdf:
    def test_cdf_is_monotone_and_bounded(self):
        recorder = _recorder_with_half_busy()
        levels, cdf = utilization_cdf(recorder, ResourceKind.NET,
                                      makespan=2.0, bucket=0.25)
        assert np.all(np.diff(levels) >= 0)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_half_busy_median(self):
        recorder = _recorder_with_half_busy()
        levels, _cdf = utilization_cdf(recorder, ResourceKind.NET,
                                       makespan=2.0, bucket=0.25)
        assert float(np.median(levels)) == pytest.approx(0.5)


class TestScalars:
    def test_busy_fraction(self):
        recorder = _recorder_with_half_busy()
        assert busy_fraction(recorder, ResourceKind.NET, 2.0) \
            == pytest.approx(0.5)

    def test_mean_utilization(self):
        recorder = _recorder_with_half_busy()
        assert mean_utilization(recorder, ResourceKind.NET, 2.0) \
            == pytest.approx(0.5)

    def test_zero_makespan_guards(self):
        recorder = _recorder_with_half_busy()
        assert busy_fraction(recorder, ResourceKind.NET, 0.0) == 0.0
        assert mean_utilization(recorder, ResourceKind.NET, 0.0) == 0.0


class TestIntervalBoundaries:
    """Half-open boundary semantics at interval abutment.

    Regression cover for the overlap under-credit: two busy segments
    sharing an endpoint are one continuous busy span, and a comm span
    crossing that junction must be credited as fully hidden.
    """

    def test_exact_abutment_merges(self):
        assert merge_intervals([(0.0, 1.0), (1.0, 2.0)]) == [(0.0, 2.0)]

    def test_float_noise_abutment_merges(self):
        # A sub-epsilon gap from endpoint float noise is not a
        # real idle instant.
        merged = merge_intervals([(0.0, 0.5 - 1e-13), (0.5, 1.0)])
        assert merged == [(0.0, 1.0)]

    def test_real_gap_survives(self):
        assert merge_intervals([(0.0, 1.0), (1.5, 2.0)]) \
            == [(0.0, 1.0), (1.5, 2.0)]

    def test_shared_endpoint_has_zero_intersection(self):
        assert intersect_seconds([(0.0, 1.0)], [(1.0, 2.0)]) == 0.0

    def test_overlap_credits_across_abutting_compute(self):
        recorder = TraceRecorder({ResourceKind.NET: 1.0,
                                  ResourceKind.GPU_SM: 1.0})
        recorder.add_interval(0.0, 1.0, {ResourceKind.NET: 1.0})
        recorder.add_interval(0.0, 0.5 - 1e-13,
                              {ResourceKind.GPU_SM: 1.0})
        recorder.add_interval(0.5, 1.0, {ResourceKind.GPU_SM: 1.0})
        hidden = overlap_seconds(recorder, [ResourceKind.NET],
                                 [ResourceKind.GPU_SM])
        # The junction at t=0.5 must not leak exposed time.
        assert hidden == pytest.approx(1.0, abs=1e-9)
