"""Tests for the online serving subsystem (repro.serving)."""

import numpy as np
import pytest

from repro.cli import main
from repro.serving import (
    MicroBatcher,
    ModelServer,
    Request,
    ServingMetrics,
    SloConfig,
    SloPolicy,
    TrafficGenerator,
    build_tiers,
    default_serving_dataset,
    plan_micro_batches,
    simulate_serving,
)
from repro.serving.batcher import MAX_MICRO_BATCHES
from repro.serving.traffic import (
    DiurnalShape,
    FlashCrowdShape,
    shape_from_dict,
)


def _request(request_id, arrival_s):
    return Request(request_id=request_id, arrival_s=arrival_s,
                   sparse={"f": np.array([request_id], dtype=np.int64)},
                   numeric=np.zeros(0, dtype=np.float32))


class TestTraffic:
    def test_poisson_arrivals_sorted_and_rate(self):
        generator = TrafficGenerator(default_serving_dataset(),
                                     rate_qps=1_000.0, seed=0)
        requests = generator.generate(2_000)
        arrivals = [request.arrival_s for request in requests]
        assert arrivals == sorted(arrivals)
        mean_gap = arrivals[-1] / len(arrivals)
        assert mean_gap == pytest.approx(1e-3, rel=0.1)

    def test_deterministic_across_generators(self):
        first = TrafficGenerator(default_serving_dataset(), 500.0,
                                 seed=3).generate(50)
        second = TrafficGenerator(default_serving_dataset(), 500.0,
                                  seed=3).generate(50)
        for a, b in zip(first, second):
            assert a.arrival_s == b.arrival_s
            for name in a.sparse:
                assert np.array_equal(a.sparse[name], b.sparse[name])
            assert np.array_equal(a.numeric, b.numeric)

    def test_request_schema_matches_dataset(self):
        dataset = default_serving_dataset(fields=3)
        request = TrafficGenerator(dataset, 100.0).generate(1)[0]
        assert set(request.sparse) == {spec.name
                                       for spec in dataset.fields}
        assert request.numeric.shape == (dataset.num_numeric,)

    def test_zipf_skew_present(self):
        dataset = default_serving_dataset(fields=1, vocab=10_000)
        requests = TrafficGenerator(dataset, 100.0, seed=0).generate(2_000)
        ids = np.concatenate(
            [request.sparse["cat_0"] for request in requests])
        _values, counts = np.unique(ids, return_counts=True)
        # Hot head: the most frequent ID covers far more than uniform.
        assert counts.max() > 10 * (ids.size / 10_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficGenerator(default_serving_dataset(), rate_qps=0.0)
        with pytest.raises(ValueError):
            TrafficGenerator(default_serving_dataset(),
                             rate_qps=1.0).generate(-1)


def _empirical_rate(arrivals, start, end):
    inside = [value for value in arrivals if start <= value < end]
    return len(inside) / (end - start)


class TestRateShapes:
    def test_diurnal_factor_and_peak(self):
        shape = DiurnalShape(period_s=4.0, amplitude=0.5)
        assert shape.factor(0.0) == pytest.approx(1.0)
        assert shape.factor(1.0) == pytest.approx(1.5)  # quarter cycle
        assert shape.factor(3.0) == pytest.approx(0.5)
        assert shape.peak_factor == pytest.approx(1.5)

    def test_flash_factor_window(self):
        shape = FlashCrowdShape(start_s=1.0, duration_s=0.5,
                                multiplier=4.0)
        assert shape.factor(0.99) == 1.0
        assert shape.factor(1.0) == 4.0
        assert shape.factor(1.49) == 4.0
        assert shape.factor(1.5) == 1.0
        assert shape.peak_factor == 4.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DiurnalShape(period_s=0.0)
        with pytest.raises(ValueError):
            DiurnalShape(period_s=1.0, amplitude=1.0)
        with pytest.raises(ValueError):
            FlashCrowdShape(start_s=-1.0, duration_s=1.0)
        with pytest.raises(ValueError):
            FlashCrowdShape(start_s=0.0, duration_s=0.0)
        with pytest.raises(ValueError):
            FlashCrowdShape(start_s=0.0, duration_s=1.0,
                            multiplier=0.5)

    def test_shape_round_trip(self):
        for shape in (DiurnalShape(period_s=2.0, amplitude=0.3,
                                   phase_s=0.5),
                      FlashCrowdShape(start_s=1.0, duration_s=0.5,
                                      multiplier=3.0)):
            assert shape_from_dict(shape.as_dict()) == shape
        assert shape_from_dict(None) is None
        with pytest.raises(ValueError):
            shape_from_dict({"kind": "square-wave"})

    def test_flash_crowd_tracks_target_rate(self):
        """Thinning reproduces the step: ~4x the arrivals in-window."""
        shape = FlashCrowdShape(start_s=1.0, duration_s=1.0,
                                multiplier=4.0)
        generator = TrafficGenerator(default_serving_dataset(),
                                     rate_qps=1_000.0, seed=0,
                                     shape=shape)
        arrivals = [request.arrival_s
                    for request in generator.generate(6_000)]
        assert arrivals == sorted(arrivals)
        base = _empirical_rate(arrivals, 0.0, 1.0)
        spike = _empirical_rate(arrivals, 1.0, 2.0)
        assert base == pytest.approx(1_000.0, rel=0.10)
        assert spike == pytest.approx(4_000.0, rel=0.10)
        assert spike > 3.0 * base

    def test_diurnal_tracks_target_rate(self):
        """Peak and trough half-cycles carry their analytic mass."""
        shape = DiurnalShape(period_s=2.0, amplitude=0.8)
        generator = TrafficGenerator(default_serving_dataset(),
                                     rate_qps=1_000.0, seed=1,
                                     shape=shape)
        arrivals = [request.arrival_s
                    for request in generator.generate(4_000)]
        # Mean factor over a half cycle is 1 +- amplitude * 2/pi.
        swing = 0.8 * 2.0 / np.pi
        peak = _empirical_rate(arrivals, 0.0, 1.0)
        trough = _empirical_rate(arrivals, 1.0, 2.0)
        assert peak == pytest.approx(1_000.0 * (1 + swing), rel=0.10)
        assert trough == pytest.approx(1_000.0 * (1 - swing), rel=0.15)

    def test_shaped_stream_is_deterministic(self):
        shape = DiurnalShape(period_s=1.0, amplitude=0.5)
        first = TrafficGenerator(default_serving_dataset(), 500.0,
                                 seed=3, shape=shape).generate(100)
        second = TrafficGenerator(default_serving_dataset(), 500.0,
                                  seed=3, shape=shape).generate(100)
        assert [a.arrival_s for a in first] \
            == [b.arrival_s for b in second]

    def test_rate_at_reports_shaped_rate(self):
        shape = FlashCrowdShape(start_s=1.0, duration_s=1.0,
                                multiplier=2.0)
        generator = TrafficGenerator(default_serving_dataset(),
                                     rate_qps=100.0, shape=shape)
        assert generator.rate_at(0.5) == pytest.approx(100.0)
        assert generator.rate_at(1.5) == pytest.approx(200.0)
        unshaped = TrafficGenerator(default_serving_dataset(), 100.0)
        assert unshaped.rate_at(123.0) == pytest.approx(100.0)


class TestBatcher:
    def test_coalesces_up_to_max_size(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_s=10.0)
        requests = [_request(index, 0.001 * index) for index in range(10)]
        batches = batcher.form_batches(requests)
        assert [batch.size for batch in batches] == [4, 4, 2]
        # A size-sealed batch closes when its filling request arrives.
        assert batches[0].close_s == requests[3].arrival_s

    def test_deadline_seals_partial_batch(self):
        batcher = MicroBatcher(max_batch_size=100, max_wait_s=0.005)
        requests = [_request(0, 0.0), _request(1, 0.001),
                    _request(2, 0.050)]
        batches = batcher.form_batches(requests)
        assert [batch.size for batch in batches] == [2, 1]
        assert batches[0].close_s == pytest.approx(0.005)
        assert batches[1].close_s == pytest.approx(0.055)

    def test_sparse_arrivals_one_per_batch(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_s=0.001)
        requests = [_request(index, float(index)) for index in range(3)]
        batches = batcher.form_batches(requests)
        assert [batch.size for batch in batches] == [1, 1, 1]

    def test_every_request_in_exactly_one_batch(self):
        batcher = MicroBatcher(max_batch_size=3, max_wait_s=0.002)
        rng = np.random.default_rng(0)
        arrivals = np.cumsum(rng.exponential(0.001, size=50))
        requests = [_request(index, float(arrival))
                    for index, arrival in enumerate(arrivals)]
        batches = batcher.form_batches(requests)
        seen = [request.request_id for batch in batches
                for request in batch.requests]
        assert sorted(seen) == list(range(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_size=0, max_wait_s=1.0)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_size=1, max_wait_s=-1.0)


class TestMicroBatchPlan:
    def test_small_batch_single_slice(self):
        assert plan_micro_batches(8, 16) == 1

    def test_slices_scale_with_rows(self):
        assert plan_micro_batches(64, 16) == 4

    def test_clamped_like_training_side(self):
        assert plan_micro_batches(10_000, 1) == MAX_MICRO_BATCHES

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_micro_batches(-1, 4)
        with pytest.raises(ValueError):
            plan_micro_batches(4, 0)


class TestSloPolicy:
    def test_everything_admitted_under_budget(self):
        policy = SloPolicy(SloConfig(latency_budget_s=1.0))
        batcher = MicroBatcher(2, 0.001)
        batch = batcher.form_batches(
            [_request(0, 0.0), _request(1, 0.0)])[0]
        admitted, shed = policy.admit(batch, start_s=0.001,
                                      service_estimate_s=0.01)
        assert len(admitted) == 2 and not shed

    def test_stale_requests_shed(self):
        policy = SloPolicy(SloConfig(latency_budget_s=0.010))
        batcher = MicroBatcher(2, 0.010)
        # Request 0 is already 9 ms old at service start; request 1 is
        # fresh.  A 5 ms service puts only request 0 past its budget.
        batch = batcher.form_batches(
            [_request(0, 0.0), _request(1, 0.008)])[0]
        assert batch.size == 2
        admitted, shed = policy.admit(batch, start_s=0.009,
                                      service_estimate_s=0.005)
        assert [request.request_id for request in shed] == [0]
        assert [request.request_id for request in admitted] == [1]

    def test_hopeless_queue_shed_wholesale(self):
        policy = SloPolicy(SloConfig(latency_budget_s=10.0,
                                     max_queue_delay_s=0.001))
        batch = MicroBatcher(2, 0.0).form_batches([_request(0, 0.0)])[0]
        admitted, shed = policy.admit(batch, start_s=1.0,
                                      service_estimate_s=0.0)
        assert not admitted and len(shed) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SloConfig(latency_budget_s=0.0)
        with pytest.raises(ValueError):
            SloConfig(latency_budget_s=1.0, max_queue_delay_s=-1.0)


class TestMetrics:
    def test_percentiles_and_qps(self):
        metrics = ServingMetrics()
        for index in range(100):
            metrics.record_served(arrival_s=float(index),
                                  completion_s=float(index) + 0.010)
        report = metrics.report(cache_hit_ratio=0.5)
        assert report.p50_ms == pytest.approx(10.0)
        assert report.p99_ms == pytest.approx(10.0)
        assert report.served == 100
        assert report.qps == pytest.approx(100 / 99.01)
        assert report.cache_hit_ratio == 0.5

    def test_shed_rate(self):
        metrics = ServingMetrics()
        metrics.record_served(0.0, 0.01)
        metrics.record_shed(0.0, 0.01)
        metrics.record_shed(0.0, 0.02)
        assert metrics.report().shed_rate == pytest.approx(2 / 3)

    def test_empty_report(self):
        report = ServingMetrics().report()
        assert report.served == 0 and report.qps == 0.0
        assert report.p99_ms == 0.0

    def test_qps_timeline(self):
        metrics = ServingMetrics()
        for index in range(10):
            metrics.record_served(0.0, 0.001 * (index + 1))
        times, qps = metrics.qps_timeline(bucket=0.010)
        assert times.shape == qps.shape
        assert qps[0] == pytest.approx(10 / 0.010)

    def test_as_dict_round_trip(self):
        metrics = ServingMetrics()
        metrics.record_served(0.0, 0.005)
        metrics.record_stage("lookup", 0.001)
        payload = metrics.report().as_dict()
        assert payload["served"] == 1
        assert payload["stage_seconds"]["lookup"] == pytest.approx(0.001)


class TestModelServer:
    def test_tier_latency_ordering_end_to_end(self):
        # Fast warmup/flush so placement is live within the short
        # trace; all three hierarchies replay the same requests.
        reports = {
            kind: simulate_serving(num_requests=800, seed=0, cache=kind,
                                   rate_qps=60_000, max_wait_s=0.001,
                                   warmup_iters=2, flush_iters=3)
            for kind in ("hbm", "hbm-dram", "dram")
        }
        assert reports["hbm"].p99_ms < reports["hbm-dram"].p99_ms \
            < reports["dram"].p99_ms

    def test_deterministic_given_seed(self):
        first = simulate_serving(num_requests=500, seed=7)
        second = simulate_serving(num_requests=500, seed=7)
        assert first.as_dict() == second.as_dict()

    def test_different_seeds_differ(self):
        first = simulate_serving(num_requests=500, seed=0)
        second = simulate_serving(num_requests=500, seed=1)
        assert first.as_dict() != second.as_dict()

    def test_overload_sheds_but_meets_slo(self):
        report = simulate_serving(num_requests=1_000, seed=0,
                                  cache="dram", rate_qps=300_000,
                                  slo_s=0.004, max_wait_s=0.0005)
        assert report.shed > 0
        assert 0.0 < report.shed_rate < 1.0
        # Served requests still meet the deadline they were admitted
        # under (estimates are exact in the deterministic model).
        assert report.p99_ms <= 4.0 + 1e-6

    def test_generous_slo_sheds_nothing(self):
        report = simulate_serving(num_requests=500, seed=0, slo_s=10.0)
        assert report.shed == 0
        assert report.served == 500

    def test_hybrid_hash_cache_supported(self):
        report = simulate_serving(num_requests=400, seed=0,
                                  cache="hybrid")
        assert report.served + report.shed == 400
        assert 0.0 <= report.cache_hit_ratio <= 1.0

    def test_micro_batching_amortizes_launches(self):
        # One slice per request (budget 1) pays launch overhead per
        # request; a whole-batch slice amortizes it.
        sliced = simulate_serving(num_requests=400, seed=0,
                                  micro_batch_rows=1)
        whole = simulate_serving(num_requests=400, seed=0,
                                 micro_batch_rows=10_000)
        assert whole.stage_seconds["dense"] \
            < sliced.stage_seconds["dense"]

    def test_scores_are_probabilities(self):
        dataset = default_serving_dataset(fields=2, vocab=1_000)
        from repro.embedding import EmbeddingTable, MultiLevelCache
        from repro.hardware import GN6E_NODE
        from repro.nn.network import WdlNetwork

        network = WdlNetwork(dataset, variant="wdl", seed=0)
        cache = MultiLevelCache(
            EmbeddingTable(dim=network.embedding_dim, seed=0),
            tiers=build_tiers("hbm-dram", GN6E_NODE,
                              network.embedding_dim * 4, 100, 1_000),
            warmup_iters=1, flush_iters=2)
        server = ModelServer(network, cache)
        requests = TrafficGenerator(dataset, 1_000.0,
                                    seed=0).generate(16)
        outcome = server.process(requests)
        assert outcome.scores.shape == (16,)
        assert np.all((outcome.scores >= 0) & (outcome.scores <= 1))
        assert outcome.service_s > 0

    def test_rejects_unknown_cache_kind(self):
        with pytest.raises(ValueError):
            simulate_serving(num_requests=10, cache="l2")

    def test_build_tiers_ordering(self):
        from repro.hardware import GN6E_NODE
        tiers = build_tiers("hbm-dram-ssd", GN6E_NODE, 64, 100, 1_000)
        names = [tier.name for tier in tiers]
        assert names == ["hbm", "dram", "ssd"]
        latencies = [tier.access_latency for tier in tiers]
        assert latencies == sorted(latencies)
        assert tiers[-1].capacity_bytes == float("inf")


class TestServeCli:
    def test_serve_command_prints_metrics(self, capsys):
        code = main(["serve", "--requests", "300", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        for token in ("p50_ms", "p95_ms", "p99_ms", "qps", "shed_rate",
                      "cache_hit", "stage breakdown"):
            assert token in out

    def test_serve_command_deterministic(self, capsys):
        main(["serve", "--requests", "300", "--seed", "4"])
        first = capsys.readouterr().out
        main(["serve", "--requests", "300", "--seed", "4"])
        assert capsys.readouterr().out == first

    def test_serve_cache_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["serve", "--cache", "tape"])


class TestExperimentRegistration:
    def test_registered_in_runner(self):
        from repro.experiments import runner
        titles = [title for title, _fn in runner.EXPERIMENTS]
        assert any("Serving" in title for title in titles)

    def test_experiment_cli_invokes_sweep(self, capsys):
        code = main(["experiment", "serving"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all-HBM" in out
        assert "p99_ms" in out
