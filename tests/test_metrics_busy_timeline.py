"""Tests for the union-busy timeline metric (Fig. 11 sampling)."""

import numpy as np
import pytest

from repro.sim.metrics import busy_timeline
from repro.sim.resource import ResourceKind
from repro.sim.trace import TraceRecorder


def _recorder():
    recorder = TraceRecorder({
        ResourceKind.GPU_SM: 100.0,
        ResourceKind.HBM: 100.0,
    })
    return recorder


class TestBusyTimeline:
    def test_single_interval(self):
        recorder = _recorder()
        recorder.add_interval(0.0, 1.0, {ResourceKind.GPU_SM: 10.0})
        _t, busy = busy_timeline(recorder, (ResourceKind.GPU_SM,),
                                 makespan=2.0, bucket=1.0)
        assert busy[0] == pytest.approx(1.0)
        assert busy[1] == pytest.approx(0.0)

    def test_union_of_kinds(self):
        recorder = _recorder()
        recorder.add_interval(0.0, 1.0, {ResourceKind.GPU_SM: 10.0})
        recorder.add_interval(1.0, 2.0, {ResourceKind.HBM: 10.0})
        _t, busy = busy_timeline(
            recorder, (ResourceKind.GPU_SM, ResourceKind.HBM),
            makespan=2.0, bucket=2.0)
        assert busy[0] == pytest.approx(1.0)

    def test_overlap_not_double_counted(self):
        recorder = _recorder()
        recorder.add_interval(0.0, 1.0, {ResourceKind.GPU_SM: 10.0,
                                         ResourceKind.HBM: 10.0})
        _t, busy = busy_timeline(
            recorder, (ResourceKind.GPU_SM, ResourceKind.HBM),
            makespan=2.0, bucket=2.0)
        assert busy[0] == pytest.approx(0.5)

    def test_partial_bucket(self):
        recorder = _recorder()
        recorder.add_interval(0.25, 0.75, {ResourceKind.GPU_SM: 1.0})
        _t, busy = busy_timeline(recorder, (ResourceKind.GPU_SM,),
                                 makespan=1.0, bucket=0.5)
        assert busy[0] == pytest.approx(0.5)
        assert busy[1] == pytest.approx(0.5)

    def test_empty_trace(self):
        _t, busy = busy_timeline(_recorder(), (ResourceKind.GPU_SM,),
                                 makespan=1.0, bucket=0.5)
        assert np.all(busy == 0.0)

    def test_zero_makespan(self):
        _t, busy = busy_timeline(_recorder(), (ResourceKind.GPU_SM,),
                                 makespan=0.0)
        assert busy.size == 0

    def test_values_bounded(self):
        recorder = _recorder()
        rng = np.random.default_rng(0)
        cursor = 0.0
        for _segment in range(50):
            start = cursor + rng.random() * 0.02
            end = start + rng.random() * 0.05
            recorder.add_interval(start, end,
                                  {ResourceKind.GPU_SM: 1.0})
            cursor = end
        _t, busy = busy_timeline(recorder, (ResourceKind.GPU_SM,),
                                 makespan=cursor, bucket=0.01)
        assert np.all((busy >= 0.0) & (busy <= 1.0))
