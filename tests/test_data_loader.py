"""Unit tests for batch construction and the labeled generator."""

import numpy as np
import pytest

from repro.data import BatchIterator, batch_wire_bytes, criteo
from repro.data.labeled import LabeledBatchIterator, latent_effect
from repro.data.spec import DatasetSpec, FieldSpec


def _small_dataset():
    return DatasetSpec(
        name="small", num_numeric=3,
        fields=(
            FieldSpec(name="a", vocab_size=100, embedding_dim=4),
            FieldSpec(name="b", vocab_size=200, embedding_dim=4,
                      seq_length=5),
        ))


class TestBatchIterator:
    def test_batch_shapes(self):
        iterator = BatchIterator(_small_dataset(), batch_size=16)
        batch = iterator.next_batch()
        assert batch.sparse["a"].shape == (16,)
        assert batch.sparse["b"].shape == (16 * 5,)
        assert batch.numeric.shape == (16, 3)
        assert batch.labels is None

    def test_total_ids(self):
        batch = BatchIterator(_small_dataset(), 16).next_batch()
        assert batch.total_ids == 16 + 16 * 5

    def test_iteration_protocol(self):
        iterator = BatchIterator(_small_dataset(), 4)
        batch = next(iter(iterator))
        assert batch.batch_size == 4

    def test_batches_generator(self):
        iterator = BatchIterator(_small_dataset(), 4)
        assert len(list(iterator.batches(3))) == 3

    def test_deterministic_given_seed(self):
        one = BatchIterator(_small_dataset(), 8, seed=3).next_batch()
        two = BatchIterator(_small_dataset(), 8, seed=3).next_batch()
        assert np.array_equal(one.sparse["a"], two.sparse["a"])

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchIterator(_small_dataset(), 0)


class TestWireBytes:
    def test_formula(self):
        dataset = _small_dataset()
        # ids: (1 + 5) * 8B, numeric 3*4B, labels 4B per instance.
        expected = 16 * (6 * 8 + 3 * 4 + 4)
        assert batch_wire_bytes(dataset, 16) == expected

    def test_scales_linearly(self):
        dataset = criteo(0.001)
        assert batch_wire_bytes(dataset, 200) \
            == pytest.approx(2 * batch_wire_bytes(dataset, 100))


class TestLatentEffect:
    def test_deterministic(self):
        ids = np.arange(100)
        assert np.array_equal(latent_effect(ids, 7), latent_effect(ids, 7))

    def test_salt_changes_effects(self):
        ids = np.arange(100)
        assert not np.array_equal(latent_effect(ids, 1),
                                  latent_effect(ids, 2))

    def test_roughly_centered(self):
        effects = latent_effect(np.arange(10_000), 3)
        assert abs(effects.mean()) < 0.1
        assert 0.5 < effects.std() < 1.5


class TestLabeledIterator:
    def test_labels_present_and_binary(self):
        iterator = LabeledBatchIterator(_small_dataset(), 64, seed=0)
        batch = iterator.next_batch()
        assert batch.labels is not None
        assert set(np.unique(batch.labels)) <= {0.0, 1.0}

    def test_labels_depend_on_features(self):
        """Labels must correlate with the hidden logistic model."""
        dataset = _small_dataset()
        iterator = LabeledBatchIterator(dataset, 4096, noise_scale=0.2,
                                        seed=0)
        batch = iterator.next_batch()
        effects = latent_effect(batch.sparse["a"], 1)
        positive_mean = effects[batch.labels > 0.5].mean()
        negative_mean = effects[batch.labels < 0.5].mean()
        assert positive_mean > negative_mean

    def test_noise_reduces_separability(self):
        dataset = _small_dataset()
        crisp = LabeledBatchIterator(dataset, 4096, noise_scale=0.1,
                                     seed=0).next_batch()
        noisy = LabeledBatchIterator(dataset, 4096, noise_scale=5.0,
                                     seed=0).next_batch()

        def separation(batch):
            effects = latent_effect(batch.sparse["a"], 1)
            return (effects[batch.labels > 0.5].mean()
                    - effects[batch.labels < 0.5].mean())

        assert separation(crisp) > separation(noisy)

    def test_label_rate_reasonable(self):
        iterator = LabeledBatchIterator(_small_dataset(), 4096, seed=0)
        batch = iterator.next_batch()
        assert 0.2 < batch.labels.mean() < 0.8

    def test_batches_generator(self):
        iterator = LabeledBatchIterator(_small_dataset(), 32, seed=0)
        batches = list(iterator.batches(2))
        assert len(batches) == 2
        assert all(batch.labels is not None for batch in batches)
