"""Tests for quantized gradient communication."""

import numpy as np
import pytest

from repro.distributed.compression import (
    ErrorFeedbackCompressor,
    compressed_allreduce_mean,
    compression_ratio,
    dequantize,
    quantize,
)


class TestQuantize:
    def test_roundtrip_error_bounded_by_one_level(self):
        rng = np.random.default_rng(0)
        tensor = rng.standard_normal((32, 16))
        quantized = quantize(tensor, bits=8, rng=rng)
        restored = dequantize(quantized)
        assert np.abs(restored - tensor).max() <= quantized.scale + 1e-12

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(1)
        tensor = rng.standard_normal(1000)
        coarse = dequantize(quantize(tensor, bits=4,
                                     rng=np.random.default_rng(2)))
        fine = dequantize(quantize(tensor, bits=12,
                                   rng=np.random.default_rng(2)))
        assert np.abs(fine - tensor).mean() \
            < np.abs(coarse - tensor).mean()

    def test_stochastic_rounding_unbiased(self):
        tensor = np.full(20_000, 0.3)
        quantize(tensor * 10, bits=2, rng=np.random.default_rng(3))
        # With min=max the span is zero... use a spanning tensor.
        tensor = np.concatenate([np.zeros(1), np.full(50_000, 0.37),
                                 np.ones(1)])
        restored = dequantize(quantize(tensor, bits=3,
                                       rng=np.random.default_rng(4)))
        assert restored[1:-1].mean() == pytest.approx(0.37, abs=0.01)

    def test_constant_tensor(self):
        quantized = quantize(np.full(10, 5.0), bits=8)
        assert np.allclose(dequantize(quantized), 5.0)

    def test_shape_preserved(self):
        quantized = quantize(np.zeros((3, 4, 5)), bits=8)
        assert dequantize(quantized).shape == (3, 4, 5)

    def test_dtype_by_bits(self):
        assert quantize(np.ones(4), bits=8).levels.dtype == np.uint8
        assert quantize(np.ones(4), bits=12).levels.dtype == np.uint16

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            quantize(np.ones(4), bits=0)
        with pytest.raises(ValueError):
            quantize(np.ones(4), bits=17)

    def test_compression_ratio(self):
        quantized = quantize(np.ones(1000) * np.arange(1000), bits=8)
        assert compression_ratio(quantized) > 3.0


class TestErrorFeedback:
    def test_residual_recorded(self):
        compressor = ErrorFeedbackCompressor(bits=2)
        gradient = np.random.default_rng(0).standard_normal(100)
        compressor.compress("w", gradient)
        assert compressor.residual_norm("w") > 0.0

    def test_error_feedback_preserves_sum(self):
        """Sum of transmitted values tracks the sum of true gradients."""
        compressor = ErrorFeedbackCompressor(bits=4, seed=1)
        rng = np.random.default_rng(2)
        true_total = np.zeros(50)
        sent_total = np.zeros(50)
        for _round in range(200):
            gradient = rng.standard_normal(50) * 0.1
            true_total += gradient
            sent_total += dequantize(compressor.compress("w", gradient))
        # EF guarantees bounded drift: the residual is the exact gap.
        gap = np.abs(true_total - sent_total).max()
        assert gap <= compressor.residual_norm("w") + 1e-9

    def test_reset(self):
        compressor = ErrorFeedbackCompressor(bits=2)
        compressor.compress("w", np.ones(10))
        compressor.reset()
        assert compressor.residual_norm("w") == 0.0

    def test_independent_tensors(self):
        compressor = ErrorFeedbackCompressor(bits=2)
        compressor.compress("a", np.ones(10))
        assert compressor.residual_norm("b") == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorFeedbackCompressor(bits=0)


class TestCompressedCollective:
    def test_approximates_exact_mean(self):
        rng = np.random.default_rng(5)
        arrays = [rng.standard_normal(200) for _worker in range(4)]
        exact = np.mean(np.stack(arrays), axis=0)
        lossy = compressed_allreduce_mean(arrays, bits=8)
        assert np.abs(lossy - exact).max() < 0.05

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compressed_allreduce_mean([])

    def test_lower_bits_more_distortion(self):
        rng = np.random.default_rng(6)
        arrays = [rng.standard_normal(500) for _worker in range(2)]
        exact = np.mean(np.stack(arrays), axis=0)
        coarse = compressed_allreduce_mean(arrays, bits=2)
        fine = compressed_allreduce_mean(arrays, bits=10)
        assert np.abs(fine - exact).mean() \
            < np.abs(coarse - exact).mean()
