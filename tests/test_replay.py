"""Tests for trace-driven what-if replay (repro.replay + FrozenTrace).

The load-bearing contract: an unperturbed replay of a recorded run
reproduces the engine's schedule *exactly* (float equality, record for
record), and a per-class perturbation moves only the perturbed class's
execution seconds.  Both are what lets the auto-tuner trust replay
predictions enough to spend real runs only on the top candidates.
"""

import json

import pytest

from repro.api import RunConfig, run
from repro.replay import WAIT_MODELS, CostHooks, TraceReplayer
from repro.sim import FrozenTrace, TaskRecord
from repro.telemetry import analyze_critical_path

BASE = RunConfig(model="W&D", dataset="Product-1", scale=0.05,
                 cluster="eflops:2", batch_size=4_000, iterations=2,
                 record_tasks=True)


@pytest.fixture(scope="module")
def base_run():
    report = run(BASE)
    return report.result.makespan, tuple(report.result.task_records)


class TestUnperturbedReplay:
    def test_makespan_is_exact(self, base_run):
        makespan, records = base_run
        result = TraceReplayer(records, makespan=makespan).replay()
        assert result.makespan == makespan  # float-exact, not approx
        assert result.makespan_ratio == 1.0

    def test_records_are_reused_verbatim(self, base_run):
        makespan, records = base_run
        result = TraceReplayer(records, makespan=makespan).replay()
        assert len(result.records) == len(records)
        assert all(replayed is original
                   for replayed, original
                   in zip(result.records, records))

    def test_class_seconds_are_exact(self, base_run):
        makespan, records = base_run
        result = TraceReplayer(records, makespan=makespan).replay()
        base_report = analyze_critical_path(list(records), makespan)
        assert result.critical_path().class_seconds \
            == base_report.class_seconds


class TestPerturbedReplay:
    def test_launch_scale_moves_only_launch_class(self, base_run):
        makespan, records = base_run
        replayer = TraceReplayer(records, makespan=makespan)
        base_exec = replayer.replay().class_exec_seconds()
        half = replayer.replay(CostHooks(launch=0.5))
        exec_seconds = half.class_exec_seconds()
        assert exec_seconds["launch"] == pytest.approx(
            0.5 * base_exec["launch"], rel=1e-9)
        for name in ("compute", "memory", "communication"):
            assert exec_seconds[name] == pytest.approx(
                base_exec[name], rel=1e-9)

    def test_halving_launch_shortens_the_run(self, base_run):
        makespan, records = base_run
        result = TraceReplayer(records, makespan=makespan).replay(
            CostHooks(launch=0.5))
        # Launch-bound enough to feel it, but never below half.
        assert 0.5 <= result.makespan_ratio < 1.0

    def test_growth_never_shortens(self, base_run):
        makespan, records = base_run
        result = TraceReplayer(records, makespan=makespan).replay(
            CostHooks(communication=2.0))
        assert result.makespan >= makespan


class TestSyntheticRetime:
    """Hand-built two-task DAG with arithmetic we can do on paper."""

    def _records(self):
        # a: 1s of compute from t=0.  b: waits for a, queues 0.5s,
        # then 1s of compute.  Makespan 2.5s.
        a = TaskRecord(name="a", start=0.0, end=1.0,
                       segments=(("gpu_sm", 0.0, 1.0),))
        b = TaskRecord(name="b", start=1.0, end=2.5, preds=("a",),
                       segments=(("gpu_sm", 1.5, 2.5),))
        return (a, b)

    def test_scaled_wait_model(self):
        replayer = TraceReplayer(self._records())
        result = replayer.replay(
            CostHooks(compute=2.0, wait_model="scaled"))
        # a: 2s.  b: ready 2.0, wait 0.5*2, exec 1*2 -> end 5.0.
        assert result.finish("a") == 2.0
        assert result.makespan == 5.0

    def test_frozen_wait_model(self):
        replayer = TraceReplayer(self._records())
        result = replayer.replay(
            CostHooks(compute=2.0, wait_model="frozen"))
        # b: ready 2.0, wait stays 0.5, exec 2 -> end 4.5.
        assert result.makespan == 4.5

    def test_congestion_does_not_credit_shrink(self):
        replayer = TraceReplayer(self._records())
        result = replayer.replay(CostHooks(compute=0.5))
        # a: 0.5s.  b: ready 0.5, wait stays 0.5 (max(1, 0.5) = 1),
        # exec 0.5 -> end 1.5.
        assert result.finish("a") == 0.5
        assert result.makespan == 1.5

    def test_kind_override_beats_class_scale(self):
        replayer = TraceReplayer(self._records())
        hooks = CostHooks(compute=3.0,
                          kind_overrides=(("gpu_sm", 1.0),))
        assert replayer.replay(hooks).makespan == 2.5


class TestReplayerValidation:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            TraceReplayer(())

    def test_topological_order_enforced(self):
        late = TaskRecord(name="b", start=1.0, end=2.0, preds=("a",))
        early = TaskRecord(name="a", start=0.0, end=1.0)
        with pytest.raises(ValueError,
                           match="not topologically ordered"):
            TraceReplayer((late, early))

    def test_external_preds_are_ignored(self):
        only = TaskRecord(name="b", start=0.0, end=1.0,
                          preds=("outside",))
        assert TraceReplayer((only,)).replay().makespan == 1.0


class TestCostHooks:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            CostHooks(compute=0.0)
        with pytest.raises(ValueError):
            CostHooks(launch=-1.0)
        with pytest.raises(ValueError):
            CostHooks(kind_overrides=(("gpu_sm", 0.0),))

    def test_unknown_kind_and_wait_model_rejected(self):
        with pytest.raises(ValueError, match="unknown resource kind"):
            CostHooks(kind_overrides=(("tpu", 2.0),))
        with pytest.raises(ValueError, match="unknown wait_model"):
            CostHooks(wait_model="psychic")
        assert "congestion" in WAIT_MODELS

    def test_from_class_scales(self):
        hooks = CostHooks.from_class_scales({"launch": 0.5})
        assert hooks.launch == 0.5 and hooks.compute == 1.0
        with pytest.raises(ValueError, match="unknown resource class"):
            CostHooks.from_class_scales({"quantum": 2.0})

    def test_from_kind_scales_and_precedence(self):
        hooks = CostHooks.from_kind_scales({"hbm": 2.0})
        assert hooks.scale_for("hbm") == 2.0
        assert hooks.scale_for("dram") == 1.0  # class default
        assert not hooks.identity
        assert CostHooks().identity
        assert set(hooks.table()) >= {"gpu_sm", "hbm", "launch", "net"}


class TestFrozenTrace:
    def test_save_load_round_trip(self, tmp_path):
        records = (TaskRecord(name="a", start=0.0, end=1.0,
                              tags={"kind": "op"},
                              segments=(("gpu_sm", 0.0, 1.0),)),)
        trace = FrozenTrace(records=records, makespan=1.0,
                            metadata={"workload": "unit"})
        path = trace.save(str(tmp_path / "trace.json"))
        loaded = FrozenTrace.load(path)
        assert loaded == trace
        assert len(loaded) == 1

    def test_dumps_is_byte_deterministic(self):
        records = (TaskRecord(name="a", start=0.0, end=1.0),)
        first = FrozenTrace(records=records, makespan=1.0,
                            metadata={"b": 2, "a": 1})
        second = FrozenTrace(
            records=(TaskRecord.from_dict(records[0].as_dict()),),
            makespan=1.0, metadata={"a": 1, "b": 2})
        assert first.dumps() == second.dumps()
        assert first.dumps().endswith("\n")
        assert json.loads(first.dumps())["schema_version"] == 1

    def test_schema_version_rejected(self):
        payload = FrozenTrace(
            records=(TaskRecord(name="a", start=0.0, end=1.0),),
            makespan=1.0).as_dict()
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema"):
            FrozenTrace.from_dict(payload)

    def test_replayer_from_trace(self, base_run):
        makespan, records = base_run
        trace = FrozenTrace(records=records, makespan=makespan)
        replayer = TraceReplayer.from_trace(trace)
        assert replayer.makespan == makespan
        assert replayer.replay().makespan == makespan
