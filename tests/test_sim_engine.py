"""Unit tests for the discrete-event engine."""

import pytest

from repro.hardware import EFLOPS_NODE, GN6E_NODE
from repro.sim import Engine, Phase, Resource, ResourceKind, SimTask
from repro.sim.engine import build_node_resources


def _engine(**capacities):
    resources = {
        kind: Resource(kind, capacity=capacity)
        for kind, capacity in capacities.items()
    }
    return Engine(resources)


class TestBasicExecution:
    def test_single_task_duration(self):
        engine = _engine(**{ResourceKind.NET: 10.0})
        task = SimTask("t", [Phase(ResourceKind.NET, 100.0)])
        result = engine.run([task])
        assert result.makespan == pytest.approx(10.0)

    def test_max_rate_limits_single_task(self):
        engine = _engine(**{ResourceKind.NET: 10.0})
        task = SimTask("t", [Phase(ResourceKind.NET, 100.0, max_rate=2.0)])
        result = engine.run([task])
        assert result.makespan == pytest.approx(50.0)

    def test_processor_sharing_two_tasks(self):
        engine = _engine(**{ResourceKind.NET: 10.0})
        tasks = [SimTask(f"t{i}", [Phase(ResourceKind.NET, 50.0)])
                 for i in range(2)]
        result = engine.run(tasks)
        # Two tasks share 10 units/s: both finish at t=10.
        assert result.makespan == pytest.approx(10.0)

    def test_sequential_phases(self):
        engine = _engine(**{ResourceKind.NET: 10.0,
                            ResourceKind.GPU_SM: 5.0})
        task = SimTask("t", [Phase(ResourceKind.NET, 100.0),
                             Phase(ResourceKind.GPU_SM, 50.0)])
        result = engine.run([task])
        assert result.makespan == pytest.approx(10.0 + 10.0)

    def test_zero_phase_tasks_complete(self):
        engine = _engine(**{ResourceKind.NET: 10.0})
        result = engine.run([SimTask("empty", [])])
        assert result.makespan == 0.0
        assert result.task_count == 1

    def test_zero_work_phase_skipped(self):
        engine = _engine(**{ResourceKind.NET: 10.0})
        task = SimTask("t", [Phase(ResourceKind.NET, 0.0),
                             Phase(ResourceKind.NET, 10.0)])
        result = engine.run([task])
        assert result.makespan == pytest.approx(1.0)


class TestDependencies:
    def test_chain_serializes(self):
        engine = _engine(**{ResourceKind.NET: 10.0})
        first = SimTask("a", [Phase(ResourceKind.NET, 50.0)])
        second = SimTask("b", [Phase(ResourceKind.NET, 50.0)])
        second.depends_on(first)
        result = engine.run([first, second])
        assert result.makespan == pytest.approx(10.0)

    def test_diamond(self):
        engine = _engine(**{ResourceKind.NET: 10.0})
        a = SimTask("a", [Phase(ResourceKind.NET, 10.0)])
        b = SimTask("b", [Phase(ResourceKind.NET, 10.0)])
        c = SimTask("c", [Phase(ResourceKind.NET, 10.0)])
        d = SimTask("d", [Phase(ResourceKind.NET, 10.0)])
        b.depends_on(a)
        c.depends_on(a)
        d.depends_on(b)
        d.depends_on(c)
        result = engine.run([a, b, c, d], keep_finish_times=True)
        # a: 1s; b,c share: 2s; d: 1s => 4s total.
        assert result.makespan == pytest.approx(4.0)
        assert result.finish_times["d"] == pytest.approx(4.0)

    def test_cycle_detection(self):
        engine = _engine(**{ResourceKind.NET: 10.0})
        a = SimTask("a", [Phase(ResourceKind.NET, 10.0)])
        b = SimTask("b", [Phase(ResourceKind.NET, 10.0)])
        a.depends_on(b)
        b.depends_on(a)
        with pytest.raises(RuntimeError):
            engine.run([a, b])

    def test_zero_work_dependency_chain(self):
        engine = _engine(**{ResourceKind.NET: 10.0})
        tasks = [SimTask(f"c{i}", []) for i in range(5)]
        for before, after in zip(tasks[:-1], tasks[1:]):
            after.depends_on(before)
        tail = SimTask("tail", [Phase(ResourceKind.NET, 10.0)])
        tail.depends_on(tasks[-1])
        result = engine.run([*tasks, tail])
        assert result.makespan == pytest.approx(1.0)


class TestSlots:
    def test_single_slot_serializes(self):
        resources = {ResourceKind.LAUNCH: Resource(
            ResourceKind.LAUNCH, capacity=1.0, slots=1)}
        tasks = [SimTask(f"t{i}", [Phase(ResourceKind.LAUNCH, 1.0,
                                         max_rate=1.0)])
                 for i in range(3)]
        result = Engine(resources).run(tasks)
        assert result.makespan == pytest.approx(3.0)

    def test_multi_slot_parallelizes(self):
        resources = {ResourceKind.LAUNCH: Resource(
            ResourceKind.LAUNCH, capacity=3.0, slots=3)}
        tasks = [SimTask(f"t{i}", [Phase(ResourceKind.LAUNCH, 1.0,
                                         max_rate=1.0)])
                 for i in range(3)]
        result = Engine(resources).run(tasks)
        assert result.makespan == pytest.approx(1.0)

    def test_queue_preserves_fifo(self):
        resources = {ResourceKind.LAUNCH: Resource(
            ResourceKind.LAUNCH, capacity=1.0, slots=1)}
        tasks = [SimTask(f"t{i}", [Phase(ResourceKind.LAUNCH, 1.0,
                                         max_rate=1.0)])
                 for i in range(4)]
        result = Engine(resources).run(tasks, keep_finish_times=True)
        finishes = [result.finish_times[f"t{i}"] for i in range(4)]
        assert finishes == sorted(finishes)


class TestResultMetrics:
    def test_busy_fraction(self):
        engine = _engine(**{ResourceKind.NET: 10.0,
                            ResourceKind.GPU_SM: 10.0})
        task = SimTask("t", [Phase(ResourceKind.NET, 50.0),
                             Phase(ResourceKind.GPU_SM, 50.0)])
        result = engine.run([task])
        assert result.busy_fraction(ResourceKind.NET) \
            == pytest.approx(0.5)

    def test_mean_rate(self):
        engine = _engine(**{ResourceKind.NET: 10.0})
        task = SimTask("t", [Phase(ResourceKind.NET, 100.0)])
        result = engine.run([task])
        assert result.mean_rate(ResourceKind.NET) == pytest.approx(10.0)

    def test_missing_task_error(self):
        engine = _engine(**{ResourceKind.NET: 10.0})
        orphan = SimTask("o", [Phase(ResourceKind.NET, 1.0)])
        orphan.indegree = 1  # dependency that never resolves
        with pytest.raises(RuntimeError):
            engine.run([orphan])


class TestNodeResources:
    def test_eflops_resources(self):
        resources = build_node_resources(EFLOPS_NODE)
        assert ResourceKind.NVLINK not in resources
        assert resources[ResourceKind.GPU_SM].capacity \
            == EFLOPS_NODE.gpu.fp32_flops

    def test_gn6e_shares_host_resources(self):
        resources = build_node_resources(GN6E_NODE)
        assert ResourceKind.NVLINK in resources
        assert resources[ResourceKind.DRAM].capacity \
            == pytest.approx(GN6E_NODE.dram.bandwidth / 8)

    def test_launch_capacity_scales_with_slots(self):
        resources = build_node_resources(EFLOPS_NODE, launch_slots=8)
        assert resources[ResourceKind.LAUNCH].capacity == 8.0
        assert resources[ResourceKind.LAUNCH].slots == 8

    def test_net_efficiency_applied(self):
        full = build_node_resources(EFLOPS_NODE, net_efficiency=1.0)
        derated = build_node_resources(EFLOPS_NODE, net_efficiency=0.5)
        assert derated[ResourceKind.NET].capacity \
            == pytest.approx(full[ResourceKind.NET].capacity / 2)

    def test_engine_reusable_across_runs(self):
        resources = build_node_resources(EFLOPS_NODE)
        engine = Engine(resources)
        for _round in range(2):
            task = SimTask("t", [Phase(ResourceKind.GPU_SM, 1e9)])
            result = engine.run([task])
            assert result.makespan > 0
