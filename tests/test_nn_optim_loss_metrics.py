"""Unit tests for optimizers, loss and metrics."""

import numpy as np
import pytest

from repro.nn.layers import DenseEmbedding
from repro.nn.loss import bce_loss, bce_loss_grad
from repro.nn.metrics import auc_score, log_loss
from repro.nn.optim import SGD, Adagrad, Adam, Lamb


def _quadratic_params(start=5.0):
    value = np.array([start])
    grad = np.zeros(1)
    return {"x": (value, grad)}


def _descend(optimizer, steps=200):
    """Minimize f(x) = x^2 and return the final |x|."""
    params = _quadratic_params()
    value, grad = params["x"]
    for _step in range(steps):
        grad[:] = 2 * value
        optimizer.step(params, [])
        grad[:] = 0.0
    return abs(float(value[0]))


class TestOptimizersConverge:
    @pytest.mark.parametrize("optimizer", [
        SGD(lr=0.1), SGD(lr=0.05, momentum=0.9), Adagrad(lr=0.5),
        Adam(lr=0.1), Lamb(lr=0.05),
    ])
    def test_minimizes_quadratic(self, optimizer):
        assert _descend(optimizer) < 0.5

    def test_lr_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)


class TestSparseUpdates:
    def test_adagrad_sparse_rows_move(self):
        table = DenseEmbedding(10, 2, "e", np.random.default_rng(0))
        before = table.table[3].copy()
        table.forward(np.array([3]))
        table.backward(np.ones((1, 2)))
        SGD(lr=0.1).step({}, [table])
        assert not np.allclose(table.table[3], before)

    def test_untouched_rows_stay(self):
        table = DenseEmbedding(10, 2, "e", np.random.default_rng(0))
        before = table.table[7].copy()
        table.forward(np.array([3]))
        table.backward(np.ones((1, 2)))
        SGD(lr=0.1).step({}, [table])
        assert np.allclose(table.table[7], before)

    def test_duplicate_rows_accumulate(self):
        table = DenseEmbedding(10, 1, "e", np.random.default_rng(0))
        table.table[:] = 0.0
        table.forward(np.array([3, 3]))
        table.backward(np.ones((2, 1)))
        SGD(lr=1.0, sparse_lr=1.0).step({}, [table])
        # Adagrad-normalized but both contributions must land.
        assert table.table[3, 0] < -0.5


class TestBceLoss:
    def test_perfect_predictions_low_loss(self):
        logits = np.array([10.0, -10.0])
        labels = np.array([1.0, 0.0])
        assert bce_loss(logits, labels) < 1e-3

    def test_chance_loss(self):
        logits = np.zeros(4)
        labels = np.array([0.0, 1.0, 0.0, 1.0])
        assert bce_loss(logits, labels) == pytest.approx(np.log(2.0))

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal(6)
        labels = (rng.random(6) > 0.5).astype(float)
        grad = bce_loss_grad(logits, labels)
        eps = 1e-6
        for index in range(6):
            bumped = logits.copy()
            bumped[index] += eps
            expected = (bce_loss(bumped, labels)
                        - bce_loss(logits, labels)) / eps
            assert grad[index] == pytest.approx(expected, abs=1e-4)

    def test_no_overflow_on_extreme_logits(self):
        assert np.isfinite(bce_loss(np.array([1e4, -1e4]),
                                    np.array([0.0, 1.0])))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bce_loss(np.zeros(3), np.zeros(4))


class TestAuc:
    def test_perfect_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(labels, scores) == 1.0

    def test_inverted_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(labels, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = (rng.random(10_000) > 0.5).astype(float)
        scores = rng.random(10_000)
        assert auc_score(labels, scores) == pytest.approx(0.5, abs=0.02)

    def test_ties_average(self):
        labels = np.array([0, 1])
        scores = np.array([0.5, 0.5])
        assert auc_score(labels, scores) == pytest.approx(0.5)

    def test_single_class_returns_half(self):
        assert auc_score(np.ones(5), np.random.rand(5)) == 0.5

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(1)
        labels = (rng.random(200) > 0.6).astype(float)
        scores = rng.standard_normal(200)
        positives = scores[labels > 0.5]
        negatives = scores[labels < 0.5]
        wins = sum((positives > n).sum() + 0.5 * (positives == n).sum()
                   for n in negatives)
        expected = wins / (len(positives) * len(negatives))
        assert auc_score(labels, scores) == pytest.approx(expected)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            auc_score(np.zeros(3), np.zeros(4))


class TestLogLoss:
    def test_perfect(self):
        assert log_loss(np.array([1.0, 0.0]),
                        np.array([1.0, 0.0])) < 1e-6

    def test_clipping_prevents_inf(self):
        assert np.isfinite(log_loss(np.array([1.0]), np.array([0.0])))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            log_loss(np.zeros(2), np.zeros(3))
