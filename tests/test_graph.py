"""Unit tests for the operator DAG container and op vocabulary."""

import pytest

from repro.graph import Graph, Op, OpKind, efficiency_capped_rate
from repro.graph.op import kernel_group
from repro.sim.resource import Phase, ResourceKind


def _op(name, kind=OpKind.MLP, work=100.0, micro=3):
    return Op(name=name, kind=kind,
              phases=[Phase(ResourceKind.GPU_SM, work)], micro_ops=micro)


class TestOp:
    def test_micro_ops_validation(self):
        with pytest.raises(ValueError):
            Op(name="x", kind=OpKind.MLP, phases=[], micro_ops=-1)

    def test_total_work(self):
        op = Op(name="x", kind=OpKind.MLP, phases=[
            Phase(ResourceKind.GPU_SM, 10.0),
            Phase(ResourceKind.HBM, 5.0),
            Phase(ResourceKind.GPU_SM, 2.0),
        ])
        assert op.total_work(ResourceKind.GPU_SM) == 12.0
        assert op.total_work(ResourceKind.NET) == 0.0

    def test_kernel_groups(self):
        assert kernel_group(OpKind.GATHER) == "memory"
        assert kernel_group(OpKind.SHUFFLE) == "communication"
        assert kernel_group(OpKind.MLP) == "compute"
        assert kernel_group(OpKind.CONTROL) == "control"

    def test_fused_ops_stay_in_their_group(self):
        # K-Packing only fuses within a group: the fusions must live in
        # the same group as their constituents.
        assert kernel_group(OpKind.UNIQUE_PARTITION) \
            == kernel_group(OpKind.UNIQUE)
        assert kernel_group(OpKind.SHUFFLE_STITCH) \
            == kernel_group(OpKind.SHUFFLE)

    def test_group_property(self):
        assert _op("x", kind=OpKind.GATHER).group == "memory"


class TestEfficiencyCap:
    def test_large_kernel_reaches_capacity(self):
        assert efficiency_capped_rate(100.0, 1e9, 1e6) == 100.0

    def test_small_kernel_proportional(self):
        assert efficiency_capped_rate(100.0, 5e5, 1e6) \
            == pytest.approx(50.0)

    def test_floor(self):
        assert efficiency_capped_rate(100.0, 1.0, 1e9) \
            == pytest.approx(8.0)

    def test_zero_work(self):
        assert efficiency_capped_rate(100.0, 0.0, 1e6) == 100.0


class TestGraph:
    def test_duplicate_names_rejected(self):
        graph = Graph()
        graph.add(_op("a"))
        with pytest.raises(ValueError):
            graph.add(_op("a"))

    def test_self_edge_rejected(self):
        graph = Graph()
        op = graph.add(_op("a"))
        with pytest.raises(ValueError):
            graph.add_edge(op, op)

    def test_edge_requires_membership(self):
        graph = Graph()
        inside = graph.add(_op("a"))
        outside = _op("b")
        with pytest.raises(KeyError):
            graph.add_edge(inside, outside)

    def test_topological_order(self):
        graph = Graph()
        a = graph.add(_op("a"))
        b = graph.add(_op("b"))
        c = graph.add(_op("c"))
        graph.add_edge(a, b)
        graph.add_edge(b, c)
        order = [op.name for op in graph.topological_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_detection(self):
        graph = Graph()
        a = graph.add(_op("a"))
        b = graph.add(_op("b"))
        graph.add_edge(a, b)
        graph.add_edge(b, a)
        with pytest.raises(ValueError):
            graph.validate()

    def test_total_micro_ops(self):
        graph = Graph()
        graph.add(_op("a", micro=5))
        graph.add(_op("b", micro=7))
        assert graph.total_micro_ops == 12

    def test_ops_with_tag(self):
        graph = Graph()
        op = _op("a")
        op.tags["layer"] = "embedding"
        graph.add(op)
        graph.add(_op("b"))
        assert graph.ops_with_tag("layer", "embedding") == [op]
        assert len(graph.ops_with_tag("layer")) == 1

    def test_successors_predecessors(self):
        graph = Graph()
        a = graph.add(_op("a"))
        b = graph.add(_op("b"))
        graph.add_edge(a, b)
        assert graph.successors(a) == [b]
        assert graph.predecessors(b) == [a]


class TestCompilation:
    def test_launch_phase_prepended(self):
        graph = Graph()
        graph.add(_op("a", micro=10))
        tasks = graph.to_sim_tasks(1e-6, launch_floor=0.0)
        phases = tasks[0].phases
        assert phases[0].kind is ResourceKind.LAUNCH
        assert phases[0].work == pytest.approx(10e-6)
        assert phases[0].max_rate == 1.0

    def test_zero_launch_omitted(self):
        graph = Graph()
        graph.add(Op(name="a", kind=OpKind.CONTROL, phases=[],
                     micro_ops=0))
        tasks = graph.to_sim_tasks(1e-6)
        assert tasks[0].phases == []

    def test_edges_translated(self):
        graph = Graph()
        a = graph.add(_op("a"))
        b = graph.add(_op("b"))
        graph.add_edge(a, b)
        tasks = {task.name: task for task in graph.to_sim_tasks(1e-6)}
        assert tasks["b"].indegree == 1
        assert tasks["b"] in tasks["a"].succs

    def test_negative_launch_rejected(self):
        graph = Graph()
        graph.add(_op("a"))
        with pytest.raises(ValueError):
            graph.to_sim_tasks(-1.0)
