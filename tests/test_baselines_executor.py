"""Unit tests for the baseline frameworks and PicassoExecutor."""

import pytest

from repro.baselines import (
    HOROVOD,
    PYTORCH,
    TF_PS,
    XDL,
    framework_by_name,
)
from repro.core import PicassoConfig, PicassoExecutor, simulate_plan
from repro.data import criteo
from repro.hardware import eflops_cluster, gn6e_cluster
from repro.models import dlrm


@pytest.fixture(scope="module")
def model():
    return dlrm(criteo(0.001))


@pytest.fixture(scope="module")
def cluster():
    return eflops_cluster(4)


class TestProfiles:
    def test_registry(self):
        for name in ("TF-PS", "PyTorch", "Horovod", "XDL"):
            assert framework_by_name(name).name == name

    def test_unknown_framework(self):
        with pytest.raises(KeyError):
            framework_by_name("MXNet")

    def test_tf_ps_profile(self):
        assert TF_PS.strategy == "ps-async"
        assert not TF_PS.uses_nvlink
        assert not TF_PS.io_overlap

    def test_collective_profiles(self):
        assert PYTORCH.strategy == "mp"
        assert HOROVOD.strategy == "dp"
        assert XDL.strategy == "ps-sync"


class TestFrameworkPlans:
    def test_plan_is_unoptimized(self, model, cluster):
        plan = framework_by_name("PyTorch").plan(model, cluster, 1024)
        assert not plan.fuse_kernels
        assert plan.micro_batches == 1
        assert plan.cache_hit_ratio is None
        assert len(plan.groups) == model.dataset.num_fields

    def test_tf_ps_disables_nvlink(self, model):
        plan = framework_by_name("TF-PS").plan(model, gn6e_cluster(1),
                                               1024)
        assert plan.cluster.node.nvlink is None

    def test_pytorch_keeps_nvlink(self, model):
        plan = framework_by_name("PyTorch").plan(model, gn6e_cluster(1),
                                                 1024)
        assert plan.cluster.node.nvlink is not None


class TestRunReports:
    def test_report_fields(self, model, cluster):
        report = framework_by_name("PyTorch").run(model, cluster, 1024,
                                                  iterations=2)
        assert report.ips > 0
        assert 0 <= report.sm_utilization <= 1
        assert report.op_count > 0
        assert report.micro_ops > 0
        assert "compute" in report.breakdown

    def test_gpu_core_hours(self, model, cluster):
        report = framework_by_name("PyTorch").run(model, cluster, 1024,
                                                  iterations=2)
        hours = report.gpu_core_hours(instances=3600 * report.ips)
        assert hours == pytest.approx(1.0, rel=0.01)

    def test_iterations_validation(self, model, cluster):
        plan = framework_by_name("PyTorch").plan(model, cluster, 1024)
        with pytest.raises(ValueError):
            simulate_plan(plan, iterations=0)


class TestPicassoExecutor:
    def test_run_produces_report(self, model, cluster):
        executor = PicassoExecutor(model, cluster)
        report = executor.run(batch_size=2048, iterations=2)
        assert report.ips > 0
        assert report.packed_embeddings < model.dataset.num_fields

    def test_executor_beats_its_base(self, model, cluster):
        full = PicassoExecutor(model, cluster).run(2048, iterations=2)
        base = PicassoExecutor(model, cluster,
                               PicassoConfig.base()).run(2048,
                                                         iterations=2)
        assert full.ips > base.ips

    def test_plan_exposed(self, model, cluster):
        executor = PicassoExecutor(model, cluster)
        plan = executor.plan(batch_size=2048)
        assert plan.strategy == "hybrid"
        assert plan.io_compression < 1.0

    def test_ablation_configs_change_plans(self, model, cluster):
        packed = PicassoExecutor(model, cluster).plan(2048)
        unpacked = PicassoExecutor(
            model, cluster,
            PicassoConfig().without("packing")).plan(2048)
        assert len(packed.groups) < len(unpacked.groups)
