"""Unit tests for the generic K-Packing fusion rewrite."""

import pytest

from repro.graph import Graph, Op, OpKind
from repro.graph.fusion import fuse_chains, fusible_chains, fusion_report
from repro.sim import Engine, Resource, ResourceKind
from repro.sim.resource import Phase


def _op(name, kind, work=10.0, micro=10):
    return Op(name=name, kind=kind,
              phases=[Phase(ResourceKind.HBM if kind in
                            (OpKind.UNIQUE, OpKind.PARTITION,
                             OpKind.GATHER) else ResourceKind.GPU_SM,
                            work)],
              micro_ops=micro)


def _chain_graph():
    """unique -> partition -> gather (memory) -> mlp (compute)."""
    graph = Graph()
    unique = graph.add(_op("unique", OpKind.UNIQUE))
    partition = graph.add(_op("partition", OpKind.PARTITION))
    gather = graph.add(_op("gather", OpKind.GATHER))
    mlp = graph.add(_op("mlp", OpKind.MLP))
    graph.add_edge(unique, partition)
    graph.add_edge(partition, gather)
    graph.add_edge(gather, mlp)
    return graph


class TestChainDetection:
    def test_finds_memory_chain(self):
        chains = fusible_chains(_chain_graph())
        assert len(chains) == 1
        assert [op.name for op in chains[0]] \
            == ["unique", "partition", "gather"]

    def test_never_crosses_groups(self):
        for chain in fusible_chains(_chain_graph()):
            groups = {op.group for op in chain}
            assert len(groups) == 1

    def test_branching_breaks_chains(self):
        graph = Graph()
        a = graph.add(_op("a", OpKind.UNIQUE))
        b = graph.add(_op("b", OpKind.PARTITION))
        c = graph.add(_op("c", OpKind.GATHER))
        graph.add_edge(a, b)
        graph.add_edge(a, c)  # a has two successors: no chain from a
        assert fusible_chains(graph) == []

    def test_no_chain_in_singleton(self):
        graph = Graph()
        graph.add(_op("solo", OpKind.UNIQUE))
        assert fusible_chains(graph) == []


class TestFusion:
    def test_reduces_op_count(self):
        graph = _chain_graph()
        fused = fuse_chains(graph)
        assert len(fused) == 2  # fused memory chain + mlp

    def test_micro_ops_discounted(self):
        graph = _chain_graph()
        fused = fuse_chains(graph)
        fused_op = next(op for op in fused.ops
                        if op.name.startswith("fused:"))
        assert fused_op.micro_ops == int(30 * 0.6)

    def test_phases_preserved_in_order(self):
        graph = _chain_graph()
        fused = fuse_chains(graph)
        fused_op = next(op for op in fused.ops
                        if op.name.startswith("fused:"))
        assert len(fused_op.phases) == 3

    def test_edges_rewired(self):
        fused = fuse_chains(_chain_graph())
        fused.validate()
        mlp = fused.op("mlp")
        preds = fused.predecessors(mlp)
        assert len(preds) == 1
        assert preds[0].name.startswith("fused:")

    def test_total_hardware_work_conserved(self):
        graph = _chain_graph()
        fused = fuse_chains(graph)
        for kind in (ResourceKind.HBM, ResourceKind.GPU_SM):
            before = sum(op.total_work(kind) for op in graph.ops)
            after = sum(op.total_work(kind) for op in fused.ops)
            assert before == pytest.approx(after)

    def test_fused_graph_simulates_faster(self):
        """Fusion saves launch time but not hardware work."""
        graph = _chain_graph()
        fused = fuse_chains(graph)

        def run(target):
            resources = {
                ResourceKind.LAUNCH: Resource(ResourceKind.LAUNCH,
                                              capacity=1.0, slots=1),
                ResourceKind.HBM: Resource(ResourceKind.HBM, 1e3),
                ResourceKind.GPU_SM: Resource(ResourceKind.GPU_SM, 1e3),
            }
            tasks = target.to_sim_tasks(1e-3)
            return Engine(resources).run(tasks).makespan

        assert run(fused) < run(graph)

    def test_report(self):
        report = fusion_report(_chain_graph())
        assert report["ops_before"] == 4
        assert report["ops_after"] == 2
        assert report["chains"] == 1
        assert report["micro_ops_after"] < report["micro_ops_before"]

    def test_idempotent_on_fused_graph(self):
        fused = fuse_chains(_chain_graph())
        again = fuse_chains(fused)
        assert len(again) == len(fused)

    def test_builder_graph_fuses_and_stays_valid(self):
        from repro.data import criteo
        from repro.graph import ExecutionPlan, IterationGraphBuilder, \
            groups_per_field
        from repro.hardware import eflops_cluster
        from repro.models import dlrm
        model = dlrm(criteo(0.001))
        plan = ExecutionPlan(model=model, cluster=eflops_cluster(2),
                             batch_size=512, strategy="mp",
                             groups=groups_per_field(model.dataset))
        graph = IterationGraphBuilder(plan).build(1)
        fused = fuse_chains(graph)
        fused.validate()
        assert len(fused) < len(graph)
