"""Tests for functional collectives and multi-worker training."""

import numpy as np
import pytest

from repro.data.labeled import LabeledBatchIterator
from repro.data.spec import DatasetSpec, FieldSpec
from repro.distributed import (
    DataParallelTrainer,
    ParameterServer,
    PsWorkerTrainer,
    allreduce_mean,
    alltoallv,
    alltoallv_time,
    ring_allreduce_time,
)
from repro.distributed.collectives import ps_pull_time
from repro.hardware import NET_RDMA_100G
from repro.nn.network import WdlNetwork
from repro.nn.optim import Adagrad


def _dataset():
    return DatasetSpec(name="d", num_numeric=2, fields=(
        FieldSpec(name="a", vocab_size=1000, embedding_dim=8),
        FieldSpec(name="s", vocab_size=1000, embedding_dim=8,
                  seq_length=4),
    ))


def _batch(size=64, seed=0):
    return LabeledBatchIterator(_dataset(), size, noise_scale=0.5,
                                seed=seed).next_batch()


class TestFunctionalCollectives:
    def test_allreduce_mean(self):
        arrays = [np.full(3, value) for value in (1.0, 2.0, 3.0)]
        assert np.allclose(allreduce_mean(arrays), 2.0)

    def test_allreduce_shape_check(self):
        with pytest.raises(ValueError):
            allreduce_mean([np.zeros(2), np.zeros(3)])

    def test_allreduce_empty(self):
        with pytest.raises(ValueError):
            allreduce_mean([])

    def test_alltoallv_routing(self):
        chunks = [[np.array([10 * i + j]) for j in range(3)]
                  for i in range(3)]
        received = alltoallv(chunks)
        # Worker j receives chunk [i][j] from each sender i.
        assert received[1][0][0] == 1
        assert received[1][2][0] == 21

    def test_alltoallv_square_check(self):
        with pytest.raises(ValueError):
            alltoallv([[np.zeros(1)], [np.zeros(1), np.zeros(1)]])


class TestTimeModels:
    def test_single_worker_free(self):
        assert ring_allreduce_time(1e9, 1, NET_RDMA_100G) == 0.0
        assert alltoallv_time(1e9, 1, NET_RDMA_100G) == 0.0

    def test_allreduce_volume_factor(self):
        few = ring_allreduce_time(1e9, 2, NET_RDMA_100G)
        many = ring_allreduce_time(1e9, 64, NET_RDMA_100G)
        # Volume grows towards 2x payload; latency grows with workers.
        assert many > few

    def test_alltoall_skew_inflates(self):
        plain = alltoallv_time(1e9, 16, NET_RDMA_100G)
        skewed = alltoallv_time(1e9, 16, NET_RDMA_100G, skew=1.5)
        assert skewed > plain

    def test_ps_pull_serving_bound(self):
        fast = ps_pull_time(1e9, NET_RDMA_100G)
        slow = ps_pull_time(1e9, NET_RDMA_100G, serving_rate=1e8)
        assert slow > fast

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(1.0, 0, NET_RDMA_100G)
        with pytest.raises(ValueError):
            alltoallv_time(1.0, 2, NET_RDMA_100G, skew=0.5)
        with pytest.raises(ValueError):
            ps_pull_time(-1.0, NET_RDMA_100G)


class TestDataParallel:
    def test_matches_single_worker_dense_exactly(self):
        """DP over W shards == one step on the undivided batch."""
        batch = _batch(size=64)
        single = WdlNetwork(_dataset(), variant="wdl", seed=0)
        single.train_step(batch, Adagrad(lr=0.05))

        replica = WdlNetwork(_dataset(), variant="wdl", seed=0)
        trainer = DataParallelTrainer(replica, workers=4,
                                      optimizer=Adagrad(lr=0.05))
        trainer.train_step(batch)

        for name, (value, _grad) in single.parameters().items():
            other = dict(replica.parameters().items())[name][0]
            assert np.allclose(value, other, atol=1e-10), name

    def test_sparse_rows_match_closely(self):
        batch = _batch(size=64)
        single = WdlNetwork(_dataset(), variant="wdl", seed=0)
        single.train_step(batch, Adagrad(lr=0.05))
        replica = WdlNetwork(_dataset(), variant="wdl", seed=0)
        DataParallelTrainer(replica, workers=4,
                            optimizer=Adagrad(lr=0.05)).train_step(batch)
        # Rows shared across shards see Adagrad's accumulator in a
        # different order, and Adagrad's first step is sign-scaled at
        # the learning rate, so multi-shard rows may differ by O(lr);
        # the bulk of the table must still agree tightly.
        diff = np.abs(single.embeddings["a"].table
                      - replica.embeddings["a"].table)
        assert diff.max() < 3 * 0.05
        assert np.median(diff) < 1e-6

    def test_learning_progresses(self):
        trainer = DataParallelTrainer(
            WdlNetwork(_dataset(), variant="wdl", seed=0), workers=2)
        iterator = LabeledBatchIterator(_dataset(), 128,
                                        noise_scale=0.3, seed=0)
        losses = [trainer.train_step(batch)
                  for batch in iterator.batches(25)]
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_batch_must_divide(self):
        trainer = DataParallelTrainer(
            WdlNetwork(_dataset(), variant="wdl"), workers=3)
        with pytest.raises(ValueError):
            trainer.train_step(_batch(size=64))

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            DataParallelTrainer(WdlNetwork(_dataset(), variant="wdl"),
                                workers=0)


class TestParameterServer:
    def test_inflight_zero_is_synchronous(self):
        server_net = WdlNetwork(_dataset(), variant="wdl", seed=0)
        server = ParameterServer(server_net, Adagrad(lr=0.05))
        worker = PsWorkerTrainer(server, inflight=0)
        sync_net = WdlNetwork(_dataset(), variant="wdl", seed=0)
        iterator_a = LabeledBatchIterator(_dataset(), 64, seed=0)
        iterator_b = LabeledBatchIterator(_dataset(), 64, seed=0)
        sync_losses = []
        ps_losses = []
        optimizer = Adagrad(lr=0.05)
        for batch_a, batch_b in zip(iterator_a.batches(6),
                                    iterator_b.batches(6)):
            sync_losses.append(sync_net.train_step(batch_a, optimizer))
            ps_losses.append(worker.train_step(batch_b))
        assert np.allclose(sync_losses, ps_losses)
        assert all(s == 0 for s in worker.observed_staleness)

    def test_inflight_window_creates_staleness(self):
        server = ParameterServer(
            WdlNetwork(_dataset(), variant="wdl", seed=0))
        worker = PsWorkerTrainer(server, inflight=3)
        iterator = LabeledBatchIterator(_dataset(), 64, seed=0)
        for batch in iterator.batches(10):
            worker.train_step(batch)
        worker.drain()
        assert max(worker.observed_staleness) >= 1
        assert server.version == 10

    def test_drain_flushes_queue(self):
        server = ParameterServer(
            WdlNetwork(_dataset(), variant="wdl", seed=0))
        worker = PsWorkerTrainer(server, inflight=5)
        for batch in LabeledBatchIterator(_dataset(), 64,
                                          seed=0).batches(3):
            worker.train_step(batch)
        assert server.version == 0  # all still in flight
        worker.drain()
        assert server.version == 3

    def test_stale_training_still_learns(self):
        server = ParameterServer(
            WdlNetwork(_dataset(), variant="wdl", seed=0),
            Adagrad(lr=0.05))
        worker = PsWorkerTrainer(server, inflight=2)
        iterator = LabeledBatchIterator(_dataset(), 256,
                                        noise_scale=0.3, seed=0)
        losses = [worker.train_step(batch)
                  for batch in iterator.batches(30)]
        worker.drain()
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_inflight_validation(self):
        server = ParameterServer(WdlNetwork(_dataset(), variant="wdl"))
        with pytest.raises(ValueError):
            PsWorkerTrainer(server, inflight=-1)
