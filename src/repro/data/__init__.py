"""Datasets: specifications, skewed synthetic generators, statistics.

The paper's five datasets (Tab. II) are reproduced as parametric
specifications; categorical-ID streams are sampled from bounded Zipf
distributions whose skew reproduces Fig. 3 (top 20% of IDs cover
~70-99% of the training data).  For accuracy experiments (Tab. III) a
labeled generator embeds a learnable logistic ground truth.
"""

from repro.data.spec import (
    DatasetSpec,
    FieldSpec,
    alibaba,
    criteo,
    product1,
    product2,
    product3,
    ALL_DATASETS,
)
from repro.data.synthetic import BoundedZipf, FieldSampler, sample_field_batch
from repro.data.loader import Batch, BatchIterator, batch_wire_bytes
from repro.data.labeled import LabeledBatchIterator
from repro.data.statistics import (
    coverage_curve,
    coverage_of_top_fraction,
    expected_unique_fraction,
)

__all__ = [
    "DatasetSpec",
    "FieldSpec",
    "alibaba",
    "criteo",
    "product1",
    "product2",
    "product3",
    "ALL_DATASETS",
    "BoundedZipf",
    "FieldSampler",
    "sample_field_batch",
    "Batch",
    "BatchIterator",
    "batch_wire_bytes",
    "LabeledBatchIterator",
    "coverage_curve",
    "coverage_of_top_fraction",
    "expected_unique_fraction",
]
