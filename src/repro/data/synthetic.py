"""Skewed categorical-ID sampling.

IDs follow a bounded Zipf distribution: ``P(rank k) ~ k**(-s)`` for
``k in [1, V]``.  We sample through the continuous inverse-CDF
approximation, which is O(1) in the vocabulary size and therefore works
for the paper's 10M-100M-entry production vocabularies.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.data.spec import FieldSpec


def stable_field_hash(name: str) -> int:
    """Process-stable 32-bit hash of a field name.

    Python's builtin ``hash`` on strings is randomized per process
    (``PYTHONHASHSEED``), which silently breaks cross-run
    reproducibility of anything seeded from it — two CLI invocations
    with the same ``--seed`` would sample different ID streams.  All
    seeding in this module derives from this CRC32 instead.
    """
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class BoundedZipf:
    """Bounded Zipf sampler over ranks ``1..vocab_size``.

    Uses the continuous approximation of the Zipf CDF
    ``F(k) = (k^(1-s) - 1) / (V^(1-s) - 1)`` (``s != 1``) inverted in
    closed form, so sampling never materializes the vocabulary.
    """

    def __init__(self, vocab_size: int, exponent: float = 1.05):
        if vocab_size < 1:
            raise ValueError(f"vocab_size must be >= 1, got {vocab_size}")
        if exponent <= 0:
            raise ValueError(f"exponent must be > 0, got {exponent}")
        self.vocab_size = int(vocab_size)
        self.exponent = float(exponent)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` IDs (int64 ranks in ``[0, vocab_size)``).

        Rank 0 is the most frequent ID.
        """
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        if self.vocab_size == 1:
            return np.zeros(size, dtype=np.int64)
        uniforms = rng.random(size)
        s = self.exponent
        v = float(self.vocab_size)
        if abs(s - 1.0) < 1e-9:
            ranks = np.exp(uniforms * np.log(v))
        else:
            span = v ** (1.0 - s) - 1.0
            ranks = (1.0 + uniforms * span) ** (1.0 / (1.0 - s))
        ids = np.minimum(self.vocab_size - 1,
                         np.maximum(0, ranks.astype(np.int64) - 1))
        return ids

    def probability(self, ranks: np.ndarray) -> np.ndarray:
        """Approximate probability mass of the given 0-based ranks."""
        s = self.exponent
        v = float(self.vocab_size)
        k = np.asarray(ranks, dtype=np.float64) + 1.0
        if abs(s - 1.0) < 1e-9:
            norm = np.log(v)
        else:
            norm = (v ** (1.0 - s) - 1.0) / (1.0 - s)
        return k ** (-s) / norm


class FieldSampler:
    """Stateful per-field sampler producing ID batches for a field.

    :param seed: seeds the sampler's own generator; two samplers built
        with the same field and seed agree across processes (the
        field-name mixing uses :func:`stable_field_hash`, never the
        process-randomized builtin ``hash``).
    :param rng: optional explicit generator; when given it replaces the
        seed-derived one, so callers (e.g. the serving traffic
        generator) can thread one stream through many samplers.
    """

    def __init__(self, field: FieldSpec, seed: int = 0,
                 rng: np.random.Generator | None = None):
        self.field = field
        self._zipf = BoundedZipf(field.vocab_size, field.zipf_exponent)
        # Each field permutes ranks into ID space deterministically so
        # hot IDs differ across fields, as in real logs.  A cheap
        # multiplicative hash keeps memory O(1).
        field_hash = stable_field_hash(field.name)
        self._mix = (0x9E3779B97F4A7C15 ^ field_hash) or 1
        self._rng = rng if rng is not None else np.random.default_rng(
            seed ^ (field_hash & 0x7FFFFFFF))

    def sample_batch(self, batch_size: int,
                     rng: np.random.Generator | None = None) -> np.ndarray:
        """IDs for one batch, shape ``(batch_size * seq_length,)``.

        The returned values are *ranks mixed into ID space*: frequency
        order is preserved (lower ranks are more frequent), but the
        mapping rank -> ID is field-specific.  ``rng`` overrides the
        sampler's own stream for this batch.
        """
        count = batch_size * self.field.seq_length
        ranks = self._zipf.sample(count, rng if rng is not None
                                  else self._rng)
        return self._mix_ranks(ranks)

    def _mix_ranks(self, ranks: np.ndarray) -> np.ndarray:
        """Map ranks to field-specific IDs, preserving frequency order.

        Hot-set membership tests only need a *consistent* mapping, so we
        use an order-preserving affine offset in ID space.
        """
        offset = self._mix % max(1, self.field.vocab_size)
        return (ranks + offset) % self.field.vocab_size


def sample_field_batch(field: FieldSpec, batch_size: int,
                       rng: np.random.Generator) -> np.ndarray:
    """One-off batch sample for ``field`` (stateless convenience)."""
    zipf = BoundedZipf(field.vocab_size, field.zipf_exponent)
    return zipf.sample(batch_size * field.seq_length, rng)
