"""Labeled synthetic CTR data with a learnable logistic ground truth.

Tab. III trains DLRM/DeepFM on Criteo and DIN/DIEN on Alibaba and
reports AUC parity between PICASSO and synchronous baselines (with
async TF-PS slightly behind).  We cannot ship the original logs, so we
generate clicks from a hidden logistic model over latent per-ID
effects: a model that learns good embeddings recovers the latent
structure, and its attainable AUC is controlled by ``noise_scale``.

Latent effects are produced by hashing the (field, ID) pair into a
deterministic pseudo-random Gaussian, so the generator needs O(1)
memory regardless of vocabulary size and labels are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Batch, BatchIterator
from repro.data.spec import DatasetSpec

_HASH_MIX = np.uint64(0x9E3779B97F4A7C15)


def _hash_to_unit(values: np.ndarray, salt: int) -> np.ndarray:
    """Map int64 IDs to deterministic pseudo-uniform floats in [0, 1)."""
    mixed = values.astype(np.uint64)
    mixed = (mixed + np.uint64(salt)) * _HASH_MIX
    mixed ^= mixed >> np.uint64(29)
    mixed *= np.uint64(0xBF58476D1CE4E5B9)
    mixed ^= mixed >> np.uint64(32)
    return (mixed >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def latent_effect(ids: np.ndarray, salt: int) -> np.ndarray:
    """Deterministic standard-normal-ish latent effect per ID.

    Uses the inverse of a logistic approximation to the normal CDF,
    which is smooth enough for a ground-truth signal.
    """
    uniforms = np.clip(_hash_to_unit(ids, salt), 1e-9, 1 - 1e-9)
    return np.log(uniforms / (1.0 - uniforms)) * 0.55


class LabeledBatchIterator:
    """Batches with clicks sampled from a hidden logistic model.

    :param signal_fields: number of leading sparse fields that carry
        signal (the rest are noise fields, as in real logs where many
        features are weak).
    :param noise_scale: standard deviation of label noise; larger noise
        lowers the attainable AUC (Alibaba-style datasets are noisier
        than Criteo, hence their lower paper AUCs ~0.63).
    :param signal_scale: multiplier on the latent logits; controls the
        oracle AUC ceiling (2.2 yields a Criteo-like ~0.82 oracle).
    """

    def __init__(self, dataset: DatasetSpec, batch_size: int,
                 signal_fields: int | None = None, noise_scale: float = 1.0,
                 signal_scale: float = 1.0, seed: int = 0):
        self._inner = BatchIterator(dataset, batch_size, seed=seed)
        self.dataset = dataset
        self.batch_size = batch_size
        self.noise_scale = float(noise_scale)
        self.signal_scale = float(signal_scale)
        count = signal_fields if signal_fields is not None else len(
            dataset.fields)
        self._signal_fields = [spec.name for spec in
                               dataset.fields[:count]]
        self._field_salt = {
            spec.name: index + 1 for index, spec in enumerate(dataset.fields)
        }
        self._rng = np.random.default_rng(seed + 12345)

    def __iter__(self):
        return self

    def __next__(self) -> Batch:
        return self.next_batch()

    def next_batch(self) -> Batch:
        """Next batch with labels attached."""
        batch = self._inner.next_batch()
        logits = np.zeros(batch.batch_size)
        for name in self._signal_fields:
            ids = batch.sparse[name]
            spec = self.dataset.field(name)
            effects = latent_effect(ids, self._field_salt[name])
            if spec.seq_length > 1:
                effects = effects.reshape(
                    batch.batch_size, spec.seq_length).mean(axis=1)
            logits += effects / max(1.0, np.sqrt(len(self._signal_fields)))
        if self.dataset.num_numeric:
            weights = latent_effect(
                np.arange(self.dataset.num_numeric), salt=999)
            logits += batch.numeric.astype(np.float64) @ weights * 0.2
        logits *= self.signal_scale
        logits += self._rng.standard_normal(batch.batch_size) \
            * self.noise_scale
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        batch.labels = (self._rng.random(batch.batch_size)
                        < probabilities).astype(np.float32)
        return batch

    def batches(self, count: int):
        """Yield ``count`` labeled batches."""
        for _index in range(count):
            yield self.next_batch()
