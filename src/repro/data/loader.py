"""Batch construction and wire-size accounting.

The data transmission layer streams batches of categorical IDs and
dense vectors from remote storage (paper SS II-A); the simulator charges
the batch's wire size against the network resource, and the real
(numpy) trainer consumes the same :class:`Batch` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.spec import DatasetSpec
from repro.data.synthetic import FieldSampler

_ID_BYTES = 8  # int64 categorical IDs
_NUMERIC_BYTES = 4  # fp32 dense features


@dataclass
class Batch:
    """One training batch.

    :param sparse: mapping of field name -> int64 ID array of shape
        ``(batch_size * seq_length,)``; sequence fields are flattened
        row-major with fixed length, matching the padded layout the
        paper's data layer ships.
    :param numeric: fp32 dense features, ``(batch_size, num_numeric)``.
    :param labels: optional binary click labels, ``(batch_size,)``.
    """

    batch_size: int
    sparse: dict
    numeric: np.ndarray
    labels: np.ndarray | None = None

    @property
    def total_ids(self) -> int:
        """Total categorical IDs across fields in this batch."""
        return sum(ids.size for ids in self.sparse.values())


def batch_wire_bytes(dataset: DatasetSpec, batch_size: int) -> float:
    """Bytes to ship one batch across the wire (IDs + dense + labels)."""
    id_bytes = dataset.ids_per_instance * batch_size * _ID_BYTES
    numeric_bytes = dataset.num_numeric * batch_size * _NUMERIC_BYTES
    label_bytes = batch_size * _NUMERIC_BYTES
    return float(id_bytes + numeric_bytes + label_bytes)


class BatchIterator:
    """Generates an endless stream of batches for a dataset spec.

    The iterator is deterministic given ``seed``; every field keeps its
    own Zipf sampler so hot IDs differ across fields.
    """

    def __init__(self, dataset: DatasetSpec, batch_size: int, seed: int = 0):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self._samplers = {
            spec.name: FieldSampler(spec, seed=seed)
            for spec in dataset.fields
        }
        self._rng = np.random.default_rng(seed)

    def __iter__(self):
        return self

    def __next__(self) -> Batch:
        return self.next_batch()

    def next_batch(self) -> Batch:
        """Produce the next batch (never raises ``StopIteration``)."""
        sparse = {
            name: sampler.sample_batch(self.batch_size)
            for name, sampler in self._samplers.items()
        }
        numeric = self._rng.standard_normal(
            (self.batch_size, self.dataset.num_numeric)).astype(np.float32)
        return Batch(batch_size=self.batch_size, sparse=sparse,
                     numeric=numeric)

    def batches(self, count: int):
        """Yield ``count`` batches (generator, constant memory)."""
        for _index in range(count):
            yield self.next_batch()
