"""Criteo click-log TSV format: reader, writer, and batch adapter.

The public Criteo datasets (Kaggle DAC and the 1TB click logs the
paper benchmarks on) ship as tab-separated lines::

    <label> \t I1 ... I13 \t C1 ... C26

with integer features possibly empty and categorical features as
8-hex-digit hashes (also possibly empty).  This module parses that
format into :class:`~repro.data.loader.Batch` objects so the real
public data can drive the same training code as the synthetic streams,
and writes synthetic data *in* the format for round-trip testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.loader import Batch
from repro.data.spec import DatasetSpec, FieldSpec

NUM_INTEGER_FEATURES = 13
NUM_CATEGORICAL_FEATURES = 26


def criteo_dataset_spec(vocab_size: int = 1_000_000,
                        embedding_dim: int = 128) -> DatasetSpec:
    """A `DatasetSpec` matching the Criteo TSV column layout."""
    fields = tuple(
        FieldSpec(name=f"C{index + 1}", vocab_size=vocab_size,
                  embedding_dim=embedding_dim, zipf_exponent=1.1)
        for index in range(NUM_CATEGORICAL_FEATURES))
    return DatasetSpec(name="CriteoTSV", fields=fields,
                       num_numeric=NUM_INTEGER_FEATURES)


@dataclass
class CriteoRecord:
    """One parsed click-log line."""

    label: int
    integers: list  # 13 entries, None when missing
    categoricals: list  # 26 entries, None when missing


def parse_line(line: str) -> CriteoRecord:
    """Parse one Criteo TSV line; raises :class:`ValueError` on bad rows."""
    parts = line.rstrip("\n").split("\t")
    expected = 1 + NUM_INTEGER_FEATURES + NUM_CATEGORICAL_FEATURES
    if len(parts) != expected:
        raise ValueError(
            f"expected {expected} tab-separated columns, got {len(parts)}")
    label = int(parts[0])
    if label not in (0, 1):
        raise ValueError(f"label must be 0/1, got {label}")
    integers = [int(token) if token else None
                for token in parts[1:1 + NUM_INTEGER_FEATURES]]
    categoricals = [token if token else None
                    for token in parts[1 + NUM_INTEGER_FEATURES:]]
    return CriteoRecord(label=label, integers=integers,
                        categoricals=categoricals)


def format_line(record: CriteoRecord) -> str:
    """Serialize a record back into the TSV format."""
    if len(record.integers) != NUM_INTEGER_FEATURES:
        raise ValueError("record must carry 13 integer features")
    if len(record.categoricals) != NUM_CATEGORICAL_FEATURES:
        raise ValueError("record must carry 26 categorical features")
    columns = [str(record.label)]
    columns += ["" if value is None else str(value)
                for value in record.integers]
    columns += ["" if value is None else value
                for value in record.categoricals]
    return "\t".join(columns)


def _hash_token(token: str) -> int:
    """Stable int64 ID for a categorical token (hex hash or raw)."""
    try:
        return int(token, 16)
    except ValueError:
        # FNV-1a over the bytes, in plain Python ints (no overflow).
        value = 1469598103934665603
        for char in token.encode():
            value = ((value ^ char) * 1099511628211) % (1 << 64)
        return value & 0x7FFFFFFFFFFFFFFF


def records_to_batch(records: list, dataset: DatasetSpec | None = None,
                     log_transform: bool = True) -> Batch:
    """Convert parsed records into one training batch.

    Missing integers become 0 (after the standard log(1+x) transform);
    missing categoricals map to ID 0.  IDs are folded into the spec's
    vocabulary.
    """
    if not records:
        raise ValueError("records must be non-empty")
    dataset = dataset or criteo_dataset_spec()
    batch_size = len(records)
    numeric = np.zeros((batch_size, NUM_INTEGER_FEATURES),
                       dtype=np.float32)
    for row, record in enumerate(records):
        for column, value in enumerate(record.integers):
            if value is None:
                continue
            clipped = max(-1, value)
            numeric[row, column] = np.log1p(clipped + 1) \
                if log_transform else float(value)
    sparse = {}
    for column, spec in enumerate(dataset.fields):
        ids = np.zeros(batch_size, dtype=np.int64)
        for row, record in enumerate(records):
            token = record.categoricals[column]
            if token is not None:
                ids[row] = _hash_token(token) % spec.vocab_size
        sparse[spec.name] = ids
    labels = np.array([record.label for record in records],
                      dtype=np.float32)
    return Batch(batch_size=batch_size, sparse=sparse, numeric=numeric,
                 labels=labels)


def read_batches(stream, batch_size: int,
                 dataset: DatasetSpec | None = None):
    """Yield :class:`Batch` objects from a TSV stream (file or StringIO).

    Malformed lines raise immediately — silent data corruption is worse
    than a failed job in production pipelines.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    records = []
    for line in stream:
        if not line.strip():
            continue
        records.append(parse_line(line))
        if len(records) == batch_size:
            yield records_to_batch(records, dataset)
            records = []
    if records:
        yield records_to_batch(records, dataset)


def write_synthetic_tsv(stream, rows: int, seed: int = 0,
                        positive_rate: float = 0.25,
                        missing_rate: float = 0.1) -> None:
    """Write ``rows`` synthetic lines in the Criteo TSV format.

    Useful for round-trip tests and for exercising the reader without
    the (unredistributable) original logs.
    """
    if rows < 0:
        raise ValueError("rows must be >= 0")
    if not 0 <= missing_rate < 1:
        raise ValueError("missing_rate must be in [0, 1)")
    rng = np.random.default_rng(seed)
    for _row in range(rows):
        label = int(rng.random() < positive_rate)
        integers = [None if rng.random() < missing_rate
                    else int(rng.integers(0, 1000))
                    for _ in range(NUM_INTEGER_FEATURES)]
        categoricals = [None if rng.random() < missing_rate
                        else f"{rng.integers(0, 1 << 32):08x}"
                        for _ in range(NUM_CATEGORICAL_FEATURES)]
        record = CriteoRecord(label=label, integers=integers,
                              categoricals=categoricals)
        stream.write(format_line(record) + "\n")
