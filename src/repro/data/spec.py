"""Dataset specifications mirroring Tab. II of the paper.

A :class:`FieldSpec` describes one sparse feature field: its vocabulary,
how many IDs one instance contributes (1 for one-hot, ``seq_length`` for
behaviour sequences), its embedding dimension, and its skew.  A
:class:`DatasetSpec` aggregates fields plus dense features.

The production datasets (Product-1/2/3) are proprietary; we reconstruct
them from the published statistics: field counts including sequential
groups (e.g. Product-2's "1,834 (334 + 30x50)" means 334 scalar fields
plus 30 behaviour-sequence groups of length 50), embedding-dimension
ranges, and total parameter counts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FieldSpec:
    """One sparse categorical feature field.

    :param vocab_size: number of distinct categorical IDs.
    :param embedding_dim: width of the feature embedding vector.
    :param seq_length: IDs per instance (1 = one-hot; >1 = multi-hot
        behaviour sequence, pooled by ``SegmentReduction``).
    :param zipf_exponent: skew of the bounded-Zipf ID distribution;
        calibrated so that the top 20% of IDs cover 70-99% of the data
        (Fig. 3).
    """

    name: str
    vocab_size: int
    embedding_dim: int
    seq_length: int = 1
    zipf_exponent: float = 1.05

    def __post_init__(self) -> None:
        if self.vocab_size < 1:
            raise ValueError(f"vocab_size must be >= 1, got {self.vocab_size}")
        if self.embedding_dim < 1:
            raise ValueError(
                f"embedding_dim must be >= 1, got {self.embedding_dim}")
        if self.seq_length < 1:
            raise ValueError(f"seq_length must be >= 1, got {self.seq_length}")

    @property
    def ids_per_instance(self) -> int:
        """How many categorical IDs one training instance contributes."""
        return self.seq_length

    @property
    def parameter_count(self) -> int:
        """Embedding parameters (floats) held by this field's table."""
        return self.vocab_size * self.embedding_dim


@dataclass(frozen=True)
class DatasetSpec:
    """A training dataset: dense features plus sparse fields.

    ``num_instances`` of ``None`` models the paper's "infinite"
    streaming production datasets.
    """

    name: str
    fields: tuple
    num_numeric: int = 0
    num_instances: int | None = None

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names in dataset spec")
        # Name -> spec index for O(1) ``field()`` lookups; graph builds
        # resolve fields hundreds of times per module, so a linear scan
        # over wide datasets dominates plan/compile time.  Stored via
        # ``object.__setattr__`` (frozen dataclass); not a dataclass
        # field, so equality/hash semantics are unchanged.
        object.__setattr__(
            self, "_field_index", {spec.name: spec for spec in self.fields})

    @property
    def num_fields(self) -> int:
        """Number of sparse feature fields."""
        return len(self.fields)

    @property
    def total_parameters(self) -> int:
        """Total embedding parameters across all fields."""
        return sum(spec.parameter_count for spec in self.fields)

    @property
    def ids_per_instance(self) -> int:
        """Total categorical IDs contributed by one instance."""
        return sum(spec.ids_per_instance for spec in self.fields)

    def field(self, name: str) -> FieldSpec:
        """Look up a field by name; raises :class:`KeyError` if absent."""
        return self._field_index[name]

    def replicated(self, multiple: int) -> "DatasetSpec":
        """Duplicate every feature field ``multiple`` times (Tab. VIII).

        The paper synthesizes wider workloads by duplicating Product-2's
        feature fields; duplicated fields get fresh names.
        """
        if multiple < 1:
            raise ValueError(f"multiple must be >= 1, got {multiple}")
        fields = []
        for copy in range(multiple):
            for spec in self.fields:
                name = spec.name if copy == 0 else f"{spec.name}__x{copy}"
                fields.append(
                    FieldSpec(name=name, vocab_size=spec.vocab_size,
                              embedding_dim=spec.embedding_dim,
                              seq_length=spec.seq_length,
                              zipf_exponent=spec.zipf_exponent))
        return DatasetSpec(name=f"{self.name}x{multiple}",
                           fields=tuple(fields),
                           num_numeric=self.num_numeric,
                           num_instances=self.num_instances)


def _spread_dims(count: int, low: int, high: int) -> list:
    """Deterministically spread embedding dims across a range.

    Production tables quote dimension *ranges* (e.g. "8~200"); we cycle
    a geometric-ish ladder between the bounds so packing has multiple
    distinct dimensions to group by, as in production.
    """
    if count <= 0:
        return []
    ladder = sorted({low, max(low, high // 8), max(low, high // 4),
                     max(low, high // 2), high})
    return [ladder[index % len(ladder)] for index in range(count)]


def criteo(scale: float = 1.0) -> DatasetSpec:
    """Criteo click logs: 13 numeric + 26 sparse fields, dim 128.

    ``scale`` shrinks vocabularies for laptop-scale runs while keeping
    relative field sizes; ``scale=1.0`` matches the paper's ~6B
    parameters with DLRM/DeepFM at dim 128.
    """
    # Criteo vocabularies are heavy-tailed: a few huge fields dominate.
    base_vocabs = [9, 531, 175, 128, 20, 7, 11, 61, 4, 934, 547, 393,
                   10, 26, 1460, 583, 245, 133, 305, 12, 633, 3, 93,
                   5652, 2173, 3194]
    fields = tuple(
        FieldSpec(name=f"cat_{index}",
                  vocab_size=max(2, int(vocab * 2700 * scale)),
                  embedding_dim=128,
                  zipf_exponent=1.1)
        for index, vocab in enumerate(base_vocabs))
    return DatasetSpec(name="Criteo", fields=fields, num_numeric=13,
                       num_instances=4_000_000_000)


def alibaba(scale: float = 1.0) -> DatasetSpec:
    """Alibaba CTR dataset: 1,207 fields (7 scalar + 12 sequences x100).

    Embedding dim 4 as in Tab. II; higher sparsity than Criteo.
    """
    fields = [
        FieldSpec(name=f"profile_{index}",
                  vocab_size=max(2, int(2_000_000 * scale)),
                  embedding_dim=4, zipf_exponent=1.2)
        for index in range(7)
    ]
    fields += [
        FieldSpec(name=f"behavior_{index}",
                  vocab_size=max(2, int(124_000_000 * scale)),
                  embedding_dim=4, seq_length=100, zipf_exponent=1.25)
        for index in range(12)
    ]
    return DatasetSpec(name="Alibaba", fields=tuple(fields),
                       num_numeric=0, num_instances=13_000_000)


def product1(scale: float = 1.0) -> DatasetSpec:
    """Product-1 (W&D workload): 10 numeric + 204 fields, dims 8-32."""
    dims = _spread_dims(204, 8, 32)
    fields = tuple(
        FieldSpec(name=f"f{index}",
                  vocab_size=max(2, int(40_000_000 * scale)),
                  embedding_dim=dims[index], zipf_exponent=1.02)
        for index in range(204))
    return DatasetSpec(name="Product-1", fields=fields, num_numeric=10,
                       num_instances=None)


def product2(scale: float = 1.0) -> DatasetSpec:
    """Product-2 (CAN workload): 1,834 fields (334 + 30x50), dims 8-200."""
    scalar_dims = _spread_dims(334, 8, 128)
    fields = [
        FieldSpec(name=f"s{index}",
                  vocab_size=max(2, int(55_000_000 * scale)),
                  embedding_dim=scalar_dims[index], zipf_exponent=1.05)
        for index in range(334)
    ]
    seq_dims = _spread_dims(30, 8, 64)
    fields += [
        FieldSpec(name=f"seq{index}",
                  vocab_size=max(2, int(20_000_000 * scale)),
                  embedding_dim=seq_dims[index], seq_length=50,
                  zipf_exponent=1.2)
        for index in range(30)
    ]
    return DatasetSpec(name="Product-2", fields=tuple(fields),
                       num_numeric=0, num_instances=None)


def product3(scale: float = 1.0) -> DatasetSpec:
    """Product-3 (MMoE workload): 584 fields (84 + 10x50), dims 12-128."""
    scalar_dims = _spread_dims(84, 12, 128)
    fields = [
        FieldSpec(name=f"s{index}",
                  vocab_size=max(2, int(200_000_000 * scale)),
                  embedding_dim=scalar_dims[index], zipf_exponent=1.02)
        for index in range(84)
    ]
    seq_dims = _spread_dims(10, 12, 64)
    fields += [
        FieldSpec(name=f"seq{index}",
                  vocab_size=max(2, int(30_000_000 * scale)),
                  embedding_dim=seq_dims[index], seq_length=50,
                  zipf_exponent=1.15)
        for index in range(10)
    ]
    return DatasetSpec(name="Product-3", fields=tuple(fields),
                       num_numeric=0, num_instances=None)


#: All five paper datasets at full scale, keyed by Tab. II name.
ALL_DATASETS = {
    "Criteo": criteo,
    "Alibaba": alibaba,
    "Product-1": product1,
    "Product-2": product2,
    "Product-3": product3,
}
