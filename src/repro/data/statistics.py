"""Distribution statistics over categorical-ID streams (Fig. 3).

The paper observes that, sorted by descending frequency, the top 20% of
IDs cover on average ~70% (and up to 99%) of the training data across
its five datasets, which motivates ``HybridHash``.  These helpers
compute the same coverage curves, both empirically from sampled IDs and
analytically from the bounded-Zipf model.
"""

from __future__ import annotations

import numpy as np

from repro.data.spec import DatasetSpec, FieldSpec
from repro.data.synthetic import BoundedZipf


def coverage_curve(ids: np.ndarray, points: int = 100) -> tuple:
    """Empirical coverage curve of an ID sample.

    Returns ``(fraction_of_ids, fraction_of_data)``: sorting distinct
    IDs by descending frequency, what share of all occurrences do the
    top ``fraction_of_ids`` cover?
    """
    if ids.size == 0:
        return np.zeros(0), np.zeros(0)
    _unique, counts = np.unique(ids, return_counts=True)
    counts = np.sort(counts)[::-1]
    cumulative = np.cumsum(counts) / counts.sum()
    id_fracs = np.arange(1, len(counts) + 1) / len(counts)
    if len(counts) > points:
        pick = np.linspace(0, len(counts) - 1, points).astype(int)
        return id_fracs[pick], cumulative[pick]
    return id_fracs, cumulative


def coverage_of_top_fraction(ids: np.ndarray, fraction: float = 0.2) -> float:
    """Share of occurrences covered by the top ``fraction`` of IDs."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if ids.size == 0:
        return 0.0
    _unique, counts = np.unique(ids, return_counts=True)
    counts = np.sort(counts)[::-1]
    top = max(1, int(np.ceil(fraction * len(counts))))
    return float(counts[:top].sum() / counts.sum())


def analytic_coverage(field: FieldSpec, fraction: float = 0.2) -> float:
    """Model-implied coverage of the top ``fraction`` of the vocabulary.

    Uses the continuous Zipf CDF, so it reflects the *stationary*
    distribution rather than a finite sample.
    """
    zipf = BoundedZipf(field.vocab_size, field.zipf_exponent)
    top = max(1, int(fraction * field.vocab_size))
    s = zipf.exponent
    v = float(field.vocab_size)
    if abs(s - 1.0) < 1e-9:
        return float(np.log(top) / np.log(v)) if v > 1 else 1.0
    num = top ** (1.0 - s) - 1.0
    den = v ** (1.0 - s) - 1.0
    if den == 0:
        return 1.0
    return float(num / den)


def expected_unique_fraction(field: FieldSpec, batch_ids: int,
                             samples: int = 3, seed: int = 7) -> float:
    """Expected ``len(unique(ids)) / len(ids)`` for a batch of this field.

    Measured empirically by sampling; the ``Unique`` operator's output
    size (and hence memory/communication volume downstream of
    deduplication) is proportional to this.
    """
    if batch_ids <= 0:
        return 1.0
    rng = np.random.default_rng(seed)
    zipf = BoundedZipf(field.vocab_size, field.zipf_exponent)
    draw = min(batch_ids, 200_000)  # sampling cap; ratio is stable
    fractions = []
    for _round in range(samples):
        ids = zipf.sample(draw, rng)
        fractions.append(len(np.unique(ids)) / draw)
    return float(np.mean(fractions))


def dataset_coverage_summary(dataset: DatasetSpec,
                             fraction: float = 0.2) -> dict:
    """Per-field analytic coverage of the top ``fraction`` of IDs.

    Reproduces the Fig. 3 observation across a dataset's fields.
    """
    return {spec.name: analytic_coverage(spec, fraction)
            for spec in dataset.fields}
