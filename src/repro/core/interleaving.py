"""Interleaving: D-Interleaving (Eq. 2) and K-Interleaving (Eq. 3).

D-Interleaving slices a large batch into micro-batches from a chosen
layer so peak activation memory amortizes (Fig. 8a/b); Eq. 2 sizes the
micro-batch as ``min_op(RBound_op / RInstance_op)`` — the tightest
resource bound divided by per-instance cost, which for the MLP tail is
device memory over activation bytes per instance.

K-Interleaving spreads packed embedding groups over ordered sets with
control dependencies so that, at any time, one set communicates while
others compute; Eq. 3 caps each set's parameter volume at
``min_op(RBound_op / RParam_op)``.
"""

from __future__ import annotations

import math

from repro.graph.builder import (
    EmbeddingGroup,
    ExecutionPlan,
    IterationGraphBuilder,
    WorkloadStats,
)
from repro.core.packing import calc_vparam


def estimate_micro_batches(plan: ExecutionPlan,
                           device_memory_budget: float) -> int:
    """Eq. 2: micro-batch count that fits the activation footprint.

    ``BS_micro = min_op(RBound_op / RInstance_op)``; with the dominant
    bound being device memory, ``RInstance`` is the per-instance
    activation footprint measured from warm-up (here: computed by the
    builder's footprint model).  Returns how many slices the plan's
    batch needs, clamped to [1, 8] — beyond that the extra launch
    overhead outweighs the pipeline benefit (Fig. 14).
    """
    if device_memory_budget <= 0:
        raise ValueError("device_memory_budget must be > 0")
    probe = IterationGraphBuilder(
        ExecutionPlan(model=plan.model, cluster=plan.cluster,
                      batch_size=plan.batch_size, strategy=plan.strategy,
                      groups=plan.groups, micro_batches=1,
                      cost=plan.cost))
    per_instance = probe.activation_bytes() / plan.batch_size
    if per_instance <= 0:
        return 1
    bs_micro = device_memory_budget / per_instance
    if bs_micro >= plan.batch_size:
        slices = 1
    else:
        slices = math.ceil(plan.batch_size / max(1.0, bs_micro))
    return max(1, min(8, slices))


def interleave_capacity(groups: list, batch_size: int,
                        stats: WorkloadStats,
                        network_bytes_per_step: float) -> float:
    """Eq. 3: per-set capacity in processed parameter volume.

    ``Capacity_g = min_op(RBound_op / RParam_op)``; treating parameter
    volume as the cost of embedding lookup and exchange, the binding
    resource is the network: a set should carry no more parameter
    volume than the NIC moves in one overlappable window.
    """
    total = sum(calc_vparam(list(group.fields), batch_size, stats)
                * group.shard_fraction for group in groups)
    if total <= 0:
        return 1.0
    # One overlappable window is what the network transfers while an
    # average set computes; empirically the paper lands at 3-7 sets for
    # its production models, i.e. capacity ~ total / 5.
    window_volume = network_bytes_per_step / 4.0
    return max(total / len(groups), min(total, window_volume))


def estimate_interleave_sets(groups: list, batch_size: int,
                             stats: WorkloadStats | None = None,
                             capacity: float | None = None) -> int:
    """Number of K-Interleaving sets Eq. 3 implies for these groups."""
    stats = stats or WorkloadStats()
    eligible = [group for group in groups if not group.excluded]
    if len(eligible) <= 1:
        return 1
    total = sum(calc_vparam(list(group.fields), batch_size, stats)
                * group.shard_fraction for group in eligible)
    if capacity is None:
        # Default production heuristic: pipeline depth grows with the
        # number of packed embeddings, saturating near the paper's
        # sweet spot of 3-7 (Fig. 14).
        return max(1, min(7, round(math.sqrt(len(eligible)))))
    if capacity <= 0:
        raise ValueError("capacity must be > 0")
    return max(1, min(len(eligible), math.ceil(total / capacity)))


def assign_interleave_sets(groups: list, num_sets: int, batch_size: int,
                           stats: WorkloadStats | None = None) -> list:
    """Balance groups across ``num_sets`` sets by parameter volume.

    Greedy heaviest-first assignment onto the lightest set; preset-
    excluded groups keep set 0 but are skipped by the builder's
    ordering edges.  Returns new :class:`EmbeddingGroup` instances.
    """
    if num_sets < 1:
        raise ValueError("num_sets must be >= 1")
    stats = stats or WorkloadStats()
    eligible = [group for group in groups if not group.excluded]
    excluded = [group for group in groups if group.excluded]
    weights = {
        group.name: calc_vparam(list(group.fields), batch_size, stats)
        * group.shard_fraction
        for group in eligible
    }
    loads = [0.0] * num_sets
    assigned = []
    for group in sorted(eligible, key=lambda item: -weights[item.name]):
        index = loads.index(min(loads))
        loads[index] += weights[group.name]
        assigned.append(EmbeddingGroup(
            name=group.name, fields=group.fields,
            shard_fraction=group.shard_fraction,
            interleave_set=index, excluded=False))
    assigned.extend(excluded)
    return assigned
