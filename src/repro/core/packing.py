"""D-Packing: merge per-field embedding operations by dimension.

Categorical feature IDs whose embedding tables share a feature
dimension are combined into one packed ID tensor, so one packed
operation replaces hundreds of per-field fragmentary operations
(paper SS III-B, Fig. 7).  Packs whose estimated parameter volume —
``CalcVParam``, Eq. 1 — exceeds the average are split evenly into
shards to avoid hashmap contention.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.data.spec import DatasetSpec
from repro.graph.builder import EmbeddingGroup, WorkloadStats


def calc_vparam(fields: list, batch_size: int,
                stats: WorkloadStats | None = None) -> float:
    """Eq. 1: expected parameter volume a packed operation processes.

    ``CalcVParam(T) = N * sum_t (t_dim * sum_ID ID_freq)``: with
    ``ID_freq`` the empirical per-ID frequency collected in warm-up,
    the inner sum is each table's share of the batch's IDs, so the
    estimate reduces to the expected floats touched per batch:
    ``sum_t dim_t * ids_t`` (deduplicated when stats are available).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    volume = 0.0
    for spec in fields:
        ids = batch_size * spec.seq_length
        if stats is not None:
            ids *= stats.unique_fraction(spec, ids)
        volume += spec.embedding_dim * ids
    return volume


def pack_by_dimension(dataset: DatasetSpec, batch_size: int,
                      stats: WorkloadStats | None = None,
                      excluded_fields: tuple = ()) -> list:
    """Build packed :class:`EmbeddingGroup` units for a dataset.

    1. Fields sharing an embedding dimension pack together (hashmaps
       with one dimension can be merged).
    2. Packs with ``CalcVParam`` above the cross-pack average split
       evenly into ``ceil(vparam / average)`` shards (Eq. 1 rule).
    3. ``excluded_fields`` become their own preset-excluded groups that
       K-Interleaving will not order against the others.
    """
    stats = stats or WorkloadStats()
    excluded = set(excluded_fields)
    by_dim: dict = defaultdict(list)
    excluded_specs = []
    for spec in dataset.fields:
        if spec.name in excluded:
            excluded_specs.append(spec)
        else:
            by_dim[spec.embedding_dim].append(spec)

    packs = {dim: tuple(specs) for dim, specs in by_dim.items()}
    volumes = {dim: calc_vparam(list(specs), batch_size, stats)
               for dim, specs in packs.items()}
    average = (sum(volumes.values()) / len(volumes)) if volumes else 0.0
    # Shard target: packs above half the mean volume split so each
    # shard's concurrent-query pressure stays below the hashmap's
    # comfortable envelope (Eq. 1 rule; the paper's production models
    # land at 11-19 packed embeddings).
    target = average / 2.0

    groups = []
    for dim in sorted(packs):
        specs = packs[dim]
        volume = volumes[dim]
        shards = 1
        if target > 0 and volume > target:
            shards = max(1, math.ceil(volume / target))
        groups.extend(_split_pack(dim, specs, shards))
    for spec in excluded_specs:
        groups.append(EmbeddingGroup(name=f"excluded:{spec.name}",
                                     fields=(spec,), excluded=True))
    return groups


def _split_pack(dim: int, specs: tuple, shards: int) -> list:
    """Evenly split one dimension-pack into ``shards`` groups.

    Fields are dealt greedily (heaviest first) onto the lightest shard;
    a pack with fewer fields than shards splits single fields by
    ``shard_fraction`` instead.
    """
    if shards <= 1:
        return [EmbeddingGroup(name=f"dim{dim}", fields=specs)]
    if len(specs) >= shards:
        buckets = [[] for _shard in range(shards)]
        weights = [0.0] * shards
        ordered = sorted(specs,
                         key=lambda spec: spec.seq_length * spec.embedding_dim,
                         reverse=True)
        for spec in ordered:
            index = weights.index(min(weights))
            buckets[index].append(spec)
            weights[index] += spec.seq_length * spec.embedding_dim
        return [
            EmbeddingGroup(name=f"dim{dim}.{index}", fields=tuple(bucket))
            for index, bucket in enumerate(buckets) if bucket
        ]
    # Fewer fields than shards: split the pack's work fractionally.
    fraction = 1.0 / shards
    return [
        EmbeddingGroup(name=f"dim{dim}.{index}", fields=specs,
                       shard_fraction=fraction)
        for index in range(shards)
    ]


def packed_embedding_count(dataset: DatasetSpec, batch_size: int,
                           stats: WorkloadStats | None = None) -> int:
    """Number of packed embeddings D-Packing produces (Tab. V metric)."""
    return len(pack_by_dimension(dataset, batch_size, stats))
