"""Executing plans on the simulator and reporting the paper's metrics.

:func:`simulate_plan` is the shared measurement harness: it compiles an
:class:`~repro.graph.builder.ExecutionPlan` to an operator graph, runs
it, and reports the metrics the paper's tables use (IPS, SM
utilization, PCIe GB/s, network Gbps, breakdowns).
:class:`PicassoExecutor` wraps it behind the user-facing API.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.config import PicassoConfig
from repro.core.planner import PicassoPlanner
from repro.graph.builder import ExecutionPlan, IterationGraphBuilder
from repro.hardware.topology import ClusterSpec
from repro.models.base import ModelSpec
from repro.sim.engine import Engine, SimResult, build_node_resources
from repro.sim.resource import ResourceKind


@dataclass
class RunReport:
    """Simulation outcome in the paper's units.

    :param ips: training throughput in instances/second per worker.
    :param sm_utilization: mean fraction of GPU FLOP capacity used —
        the DCGM-style "GPU SM utilization" percentage when x100.
    :param pcie_gbps: sustained PCIe traffic in gigaBYTES/s (Tab. IV).
    :param net_gbps: sustained network traffic in gigaBITS/s (Tab. IV).
    """

    name: str
    batch_size: int
    iterations: int
    seconds_per_iteration: float
    ips: float
    sm_utilization: float
    sm_flops_utilization: float
    sm_busy_fraction: float
    launch_busy_fraction: float
    pcie_gbps: float
    net_gbps: float
    nvlink_gbps: float
    op_count: int
    micro_ops: int
    packed_embeddings: int
    result: SimResult
    _breakdown: dict | None = field(default=None, repr=False)

    @property
    def breakdown(self) -> dict:
        """Time-weighted busy-category breakdown (computed lazily).

        Derived from the run's utilization traces on first access; the
        event sweep is a measurable slice of a run's wall-clock cost
        and most callers (benchmarks, tuning) never read it.
        """
        if self._breakdown is None:
            self._breakdown = self.result.recorder.category_breakdown(
                self.result.makespan)
        return self._breakdown

    @property
    def node_ips(self) -> float:
        """Per-node throughput (workers-per-node x per-worker IPS)."""
        return self.ips

    def gpu_core_hours(self, instances: float, workers: int = 1) -> float:
        """GPU hours to train ``instances`` rows on ``workers`` GPUs.

        Synchronous data-parallel workers consume distinct instances,
        so the fleet processes ``workers * ips`` instances per second
        while burning ``workers`` GPU-seconds per second.
        """
        if self.ips <= 0:
            return float("inf")
        return instances / self.ips / 3600.0


#: Compiled-plan cache: ``(plan fingerprint, iterations)`` ->
#: ``(graph, tasks, initial indegrees)``.  Graph building is fully
#: deterministic (workload statistics are seeded), so two plans with
#: equal signatures compile to identical graphs; repeated
#: bench/tune/replay invocations of the same workload skip the rebuild
#: entirely.  Bounded FIFO so sweeps over many configs stay flat.
_COMPILE_CACHE: OrderedDict = OrderedDict()
_COMPILE_CACHE_MAX = 64


def clear_compile_cache() -> None:
    """Drop all cached compiled plans (mainly for tests)."""
    _COMPILE_CACHE.clear()


def _reset_tasks(tasks: list, indegrees: list) -> None:
    """Rewind cached ``SimTask`` objects to their just-built state.

    The engine consumes tasks destructively (indegrees count down,
    phases advance, remaining work drains); a cache hit hands out the
    same objects, so they are rewound first.  This mirrors exactly what
    ``Graph.to_sim_tasks`` initialises.
    """
    for task, indegree in zip(tasks, indegrees):
        task.indegree = indegree
        task._phase_index = 0
        task.remaining = task.phases[0].work if task.phases else 0.0
        task.finish_time = None
        task.start_time = None


def compile_plan(plan: ExecutionPlan, iterations: int) -> tuple:
    """Compile a plan to ``(graph, tasks, resources)``, costs applied.

    This is the deterministic front half of :func:`simulate_plan`: the
    operator graph, the launch-cost projection (including the
    superlinear large-graph scheduling overhead) and the node's
    resource set — everything the engine needs, and everything the
    what-if predictor (:mod:`repro.tuning`) needs to total per-kind
    work without running the engine.

    Results are cached keyed by the sha256 fingerprint of
    ``plan.signature()`` plus ``iterations``; a hit returns the cached
    graph with its task set rewound to the just-built state (the task
    objects are shared, so do not interleave two concurrent engine
    runs of the same compiled plan).  Resources are always rebuilt —
    they carry engine occupancy state.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    # Imported lazily: repro.bench's package init pulls in the api
    # facade, which imports this module.
    from repro.bench.snapshot import config_fingerprint

    # The fingerprint is cached on the plan object: plans are immutable
    # once planning returns (the planner's plan cache shares them), and
    # hashing a wide plan's signature is a measurable slice of a warm
    # run.
    fingerprint = getattr(plan, "_fingerprint", None)
    if fingerprint is None:
        fingerprint = config_fingerprint(plan.signature())
        plan._fingerprint = fingerprint
    key = (fingerprint, iterations)
    cached = _COMPILE_CACHE.get(key)
    if cached is not None:
        graph, tasks, indegrees = cached
        _COMPILE_CACHE.move_to_end(key)
        _reset_tasks(tasks, indegrees)
        return graph, tasks, build_node_resources(plan.cluster.node)
    builder = IterationGraphBuilder(plan)
    graph = builder.build(iterations)
    # Very large graphs pay superlinear executor scheduling cost (the
    # reason Tab. VIII's PS baseline falls below arithmetic progression
    # as feature fields multiply).
    micro_per_iteration = graph.total_micro_ops / iterations
    overhead = 1.0 + max(0.0, micro_per_iteration
                         / plan.cost.graph_overhead_knee - 1.0)
    launch = plan.cost.launch_per_micro_op * plan.launch_scale * overhead
    floor = plan.cost.launch_floor * plan.launch_scale * overhead
    tasks = graph.to_sim_tasks(launch, floor)
    resources = build_node_resources(plan.cluster.node)
    _COMPILE_CACHE[key] = (graph, tasks, [task.indegree for task in tasks])
    while len(_COMPILE_CACHE) > _COMPILE_CACHE_MAX:
        _COMPILE_CACHE.popitem(last=False)
    return graph, tasks, resources


def per_iteration_seconds(makespan: float, first_step_end: float,
                          iterations: int) -> float:
    """Steady-state seconds per iteration from run markers.

    The first iteration is treated as pipeline warm-up: with more than
    one step, per-iteration time is measured from the end of step 0
    (the ``it0/step_end`` marker).  Asynchronous strategies queue
    trailing pushes long past the first step marker, so the
    marker-based estimate can collapse; the mean over all steps
    lower-bounds steady-state cost.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if iterations == 1:
        return makespan
    per_iteration = (makespan - first_step_end) / (iterations - 1)
    return max(per_iteration, makespan / iterations)


def simulate_plan(plan: ExecutionPlan, iterations: int = 3,
                  name: str | None = None,
                  record_tasks: bool = False,
                  fault_plan=None) -> RunReport:
    """Build, execute and measure a plan over ``iterations`` steps.

    The first iteration is treated as pipeline warm-up: per-iteration
    time is measured from the end of step 0 when more than one step is
    simulated.

    ``record_tasks=True`` makes the returned report's ``result`` carry
    per-task :class:`~repro.sim.trace.TaskRecord` telemetry (for
    Chrome-trace export and critical-path analysis).

    ``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan`) injects
    crashes/stragglers/link degradations into the engine run: crashes
    kill in-flight work back to the queue, stragglers and link faults
    scale resource capacity over their windows, so the reported
    throughput is the *faulted* throughput.
    """
    graph, tasks, resources = compile_plan(plan, iterations)
    engine = Engine(resources)
    injector = None
    if fault_plan is not None and len(fault_plan):
        from repro.faults.inject import FaultInjector
        injector = FaultInjector(fault_plan)
    result = engine.run(tasks, keep_finish_times=True,
                        record_tasks=record_tasks, injector=injector)

    first_end = result.finish_times.get("it0/step_end", 0.0) or 0.0
    per_iteration = per_iteration_seconds(result.makespan, first_end,
                                          iterations)

    sm_capacity = resources[ResourceKind.GPU_SM].capacity
    nvlink_rate = 0.0
    if ResourceKind.NVLINK in resources:
        nvlink_rate = result.mean_rate(ResourceKind.NVLINK)
    gpu_busy = result.recorder.union_busy_seconds(
        (ResourceKind.GPU_SM, ResourceKind.HBM))
    return RunReport(
        name=name or graph.name,
        batch_size=plan.batch_size,
        iterations=iterations,
        seconds_per_iteration=per_iteration,
        ips=plan.batch_size / per_iteration,
        sm_utilization=min(1.0, gpu_busy / result.makespan)
        if result.makespan > 0 else 0.0,
        sm_flops_utilization=(result.mean_rate(ResourceKind.GPU_SM)
                              / sm_capacity),
        sm_busy_fraction=result.busy_fraction(ResourceKind.GPU_SM),
        launch_busy_fraction=result.busy_fraction(ResourceKind.LAUNCH),
        pcie_gbps=result.mean_rate(ResourceKind.PCIE) / 1e9,
        net_gbps=result.mean_rate(ResourceKind.NET) * 8.0 / 1e9,
        nvlink_gbps=nvlink_rate * 8.0 / 1e9,
        op_count=len(graph),
        micro_ops=graph.total_micro_ops // iterations,
        packed_embeddings=len(plan.groups),
        result=result,
    )


class PicassoExecutor:
    """The user-facing PICASSO training executor.

    Mirrors the deployment model of the paper: one executor per
    machine, hybrid MP/DP strategy, software-system optimization on by
    default.

    Example::

        executor = PicassoExecutor(model, cluster)
        report = executor.run(batch_size=20_000)
        print(report.ips, report.sm_utilization)
    """

    def __init__(self, model: ModelSpec, cluster: ClusterSpec,
                 config: PicassoConfig | None = None):
        self.model = model
        self.cluster = cluster
        self.config = config or PicassoConfig()
        self._planner = PicassoPlanner(self.config)

    def plan(self, batch_size: int) -> ExecutionPlan:
        """The optimized execution plan for one batch size."""
        return self._planner.plan(self.model, self.cluster, batch_size)

    def run(self, batch_size: int, iterations: int = 3,
            record_tasks: bool = False, fault_plan=None) -> RunReport:
        """Plan and simulate a training run; returns the full report."""
        plan = self.plan(batch_size)
        return simulate_plan(plan, iterations=iterations,
                             name=f"PICASSO/{self.model.name}",
                             record_tasks=record_tasks,
                             fault_plan=fault_plan)
