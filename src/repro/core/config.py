"""PICASSO configuration: the knobs of the three optimizations.

Disabling individual optimizations reproduces the ablation study
(Tab. IV); ``PicassoConfig.base()`` reproduces "PICASSO(Base)" — the
pure hybrid-parallel strategy without software-system optimization
(Fig. 13).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.config_base import ConfigBase, codec
from repro.graph.builder import CostModel

_GIB = float(1 << 30)
_MIB = float(1 << 20)


@dataclass(frozen=True)
class PicassoConfig(ConfigBase):
    """Feature toggles and tunables for a PICASSO training session.

    :param enable_packing: D-Packing (merge per-field embedding ops by
        dimension, Eq. 1 sharding) + K-Packing (same-group kernel
        fusion).
    :param enable_interleaving: K-Interleaving (Eq. 3 group pipelines)
        + D-Interleaving (Eq. 2 micro-batching).
    :param enable_caching: ``HybridHash`` hot/cold embedding cache.
    :param interleave_sets: explicit K-Interleaving set count, or
        ``None`` to size by Eq. 3.
    :param micro_batches: explicit D-Interleaving slice count, or
        ``None`` to size by Eq. 2.
    :param micro_batch_scope: ``"all"`` (slice from the embedding
        layer) or ``"mlp"`` (slice only the dense tail).
    :param hot_storage_bytes: Hot-storage (GPU) budget for HybridHash;
        the paper's default production setting is 1 GB.
    :param warmup_iters: statistics-collection iterations before the
        cache (and Eq. 1/2 estimates) activate.
    :param flush_iters: hot-set refresh period.
    :param excluded_fields: preset-excluded embeddings whose packed ops
        skip K-Interleaving ordering (SS III-C).
    :param device_memory_budget: GPU bytes available for activations
        when Eq. 2 sizes micro-batches (device memory minus parameters,
        workspace and the hot cache).
    :param shard_policy: embedding shard placement — ``"hash"`` (naive
        modulo sharding; exchange priced with the cost model's generic
        straggler factor) or ``"planned"`` (skew-aware
        :class:`~repro.embedding.placement.ShardPlanner` placement;
        the execution plan prices exchanges with the planner's
        predicted max/mean shard-bytes ratio).
    :param prefetch_lookahead: hot/cold lookahead window depth
        (Hotline, arXiv 2204.05436).  Depths above 1 stage the
        predicted-cold share of the next iteration's embedding rows on
        a background prefetch stream that overlaps the current
        iteration's compute; 1 disables the stream.
    :param prefetch_hot_threshold: residency score in ``[0, 1]`` above
        which a row counts as hot (already resident, not worth
        staging); higher thresholds classify more rows as
        cold-and-prefetchable.
    :param prefetch_inflight_bytes: cap on bytes the stream may stage
        per window before consumers drain them.
    :param prefetch_policy: batch-classifier name (``"hotness"`` or
        the ``"fifo"`` null classifier, which never reorders and emits
        no stream — byte-identical to the pre-prefetch builder).
    """

    enable_packing: bool = True
    enable_interleaving: bool = True
    enable_caching: bool = True
    interleave_sets: int | None = None
    micro_batches: int | None = None
    micro_batch_scope: str = "all"
    hot_storage_bytes: float = 1.0 * _GIB
    warmup_iters: int = 100
    flush_iters: int = 100
    excluded_fields: tuple = ()
    device_memory_budget: float = 16.0 * _GIB
    cost: CostModel = field(default_factory=CostModel)
    shard_policy: str = "hash"
    prefetch_lookahead: int = 1
    prefetch_hot_threshold: float = 0.6
    prefetch_inflight_bytes: float = 256.0 * _MIB
    prefetch_policy: str = "hotness"

    _FIELD_CODECS = {
        "cost": codec(asdict,
                      lambda value: CostModel(**value)
                      if isinstance(value, dict) else value),
        "excluded_fields": codec(list, tuple),
    }

    def __post_init__(self) -> None:
        if self.shard_policy not in ("hash", "planned"):
            raise ValueError(
                f"unknown shard_policy {self.shard_policy!r}; "
                "expected 'hash' or 'planned'")
        if self.micro_batch_scope not in ("all", "mlp"):
            raise ValueError(
                f"unknown micro_batch_scope "
                f"{self.micro_batch_scope!r}; expected 'all' or 'mlp'")
        if self.interleave_sets is not None and self.interleave_sets < 1:
            raise ValueError(
                f"interleave_sets must be >= 1 or None, "
                f"got {self.interleave_sets}")
        if self.micro_batches is not None and self.micro_batches < 1:
            raise ValueError(
                f"micro_batches must be >= 1 or None, "
                f"got {self.micro_batches}")
        if self.hot_storage_bytes < 0:
            raise ValueError("hot_storage_bytes must be >= 0")
        if self.flush_iters < 1:
            raise ValueError("flush_iters must be >= 1")
        if self.device_memory_budget <= 0:
            raise ValueError("device_memory_budget must be > 0")
        if self.prefetch_lookahead < 1:
            raise ValueError(
                f"prefetch_lookahead must be >= 1, "
                f"got {self.prefetch_lookahead}")
        if not 0.0 <= self.prefetch_hot_threshold <= 1.0:
            raise ValueError(
                f"prefetch_hot_threshold must be in [0, 1], "
                f"got {self.prefetch_hot_threshold}")
        if self.prefetch_inflight_bytes <= 0:
            raise ValueError("prefetch_inflight_bytes must be > 0")
        if not self.prefetch_policy:
            raise ValueError("prefetch_policy must be non-empty")

    @classmethod
    def base(cls) -> "PicassoConfig":
        """PICASSO(Base): hybrid strategy, no software optimizations."""
        return cls(enable_packing=False, enable_interleaving=False,
                   enable_caching=False)

    def without(self, optimization: str) -> "PicassoConfig":
        """Ablation helper: a copy with one optimization disabled.

        ``optimization`` is ``"packing"``, ``"interleaving"`` or
        ``"caching"``.
        """
        toggles = {
            "packing": "enable_packing",
            "interleaving": "enable_interleaving",
            "caching": "enable_caching",
        }
        if optimization not in toggles:
            raise ValueError(
                f"unknown optimization {optimization!r}; expected one of "
                f"{sorted(toggles)}")
        return replace(self, **{toggles[optimization]: False})
