"""Cache planning: sizing Hot-storage and predicting hit ratios.

``HybridHash`` itself lives in :mod:`repro.embedding.hybrid_hash`; this
module is the *planner* side: given a Hot-storage budget, how should
rows be apportioned across tables, and what per-batch unique-ID hit
ratio should training expect (the metric Tab. VI reports)?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.spec import DatasetSpec, FieldSpec
from repro.data.synthetic import BoundedZipf

_FLOAT_BYTES = 4


@dataclass(frozen=True)
class CachePlan:
    """A Hot-storage layout: rows reserved per field.

    :param hit_ratio: predicted fraction of per-batch *unique* IDs
        served from Hot-storage.
    :param hot_bytes_used: bytes the plan actually pins hot.
    """

    rows_per_field: dict
    hit_ratio: float
    hot_bytes_used: float


def _batch_unique_hit_fraction(field: FieldSpec, hot_rows: int,
                               batch_size: int, rng,
                               rounds: int = 2) -> tuple:
    """(unique IDs per batch, unique hits per batch) for one field.

    With ideal frequency statistics the hot set is exactly the top
    ``hot_rows`` Zipf ranks, so a unique ID hits iff its rank is below
    ``hot_rows``.  Measured by sampling, matching how the paper reports
    per-batch unique-ID hit ratios.
    """
    ids_per_batch = min(batch_size * field.seq_length, 100_000)
    if ids_per_batch == 0:
        return 0.0, 0.0
    zipf = BoundedZipf(field.vocab_size, field.zipf_exponent)
    uniques = 0.0
    hits = 0.0
    for _round in range(rounds):
        ranks = np.unique(zipf.sample(ids_per_batch, rng))
        uniques += ranks.size
        hits += float(np.count_nonzero(ranks < hot_rows))
    scale = (batch_size * field.seq_length) / ids_per_batch
    return uniques / rounds * scale, hits / rounds * scale


def expected_hit_ratio(dataset: DatasetSpec, hot_bytes: float,
                       batch_size: int, seed: int = 11) -> CachePlan:
    """Plan Hot-storage across a dataset's tables and predict hits.

    Rows are allocated to fields proportionally to their share of the
    batch's ID traffic (weighted by bytes per row), which approximates
    the global top-k that ``HybridHash``'s frequency counter converges
    to.  Returns the plan with its predicted per-batch unique-ID hit
    ratio.
    """
    if hot_bytes < 0:
        raise ValueError("hot_bytes must be >= 0")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    rng = np.random.default_rng(seed)
    traffic = {
        spec.name: batch_size * spec.seq_length * spec.embedding_dim
        for spec in dataset.fields
    }
    total_traffic = sum(traffic.values()) or 1.0

    rows_per_field = {}
    used = 0.0
    for spec in dataset.fields:
        budget = hot_bytes * traffic[spec.name] / total_traffic
        rows = int(budget // (spec.embedding_dim * _FLOAT_BYTES))
        rows = min(rows, spec.vocab_size)
        rows_per_field[spec.name] = rows
        used += rows * spec.embedding_dim * _FLOAT_BYTES

    total_unique = 0.0
    total_hits = 0.0
    measured: dict = {}
    for spec in dataset.fields:
        # Cache by distribution so duplicated fields sample once.
        key = (spec.vocab_size, spec.zipf_exponent, spec.seq_length,
               rows_per_field[spec.name])
        if key not in measured:
            measured[key] = _batch_unique_hit_fraction(
                spec, rows_per_field[spec.name], batch_size, rng)
        uniques, hits = measured[key]
        total_unique += uniques
        total_hits += hits
    ratio = (total_hits / total_unique) if total_unique else 0.0
    return CachePlan(rows_per_field=rows_per_field, hit_ratio=ratio,
                     hot_bytes_used=used)


def batch_size_penalty(hot_bytes: float, device_memory_budget: float) -> float:
    """Fraction of the batch the hot cache displaces (Tab. VI effect).

    An oversized Hot-storage steals activation memory, forcing a
    smaller batch; the paper observes throughput *dropping* beyond 2 GB
    for this reason.  Returns the usable batch fraction in (0, 1].
    """
    if device_memory_budget <= 0:
        raise ValueError("device_memory_budget must be > 0")
    displaced = min(hot_bytes, device_memory_budget * 0.9)
    return max(0.1, 1.0 - displaced / device_memory_budget)
