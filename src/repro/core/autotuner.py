"""Deprecated import path — the auto-tuner moved to ``repro.tuning``.

``AutoTuner`` and ``TuningResult`` now live in
:mod:`repro.tuning.warmup`, where the legacy grid search is also
registered as the ``"warmup-grid"`` strategy for the trace-driven
search loop.  This shim keeps old imports working.
"""

from __future__ import annotations

import warnings

from repro.tuning.warmup import AutoTuner, TuningResult

__all__ = ["AutoTuner", "TuningResult"]

warnings.warn(
    "repro.core.autotuner is deprecated; import AutoTuner and "
    "TuningResult from repro.tuning instead",
    DeprecationWarning,
    stacklevel=2,
)
