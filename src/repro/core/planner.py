"""The PICASSO optimization planner.

Turns (model, cluster, batch size, :class:`PicassoConfig`) into an
:class:`~repro.graph.builder.ExecutionPlan`: hybrid MP/DP strategy,
packed embedding groups (Eq. 1), interleave sets (Eq. 3), micro-batches
(Eq. 2), and the planned cache hit ratio.  The ablation variants of
Tab. IV fall out of the config toggles.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.caching import expected_hit_ratio
from repro.core.config import PicassoConfig
from repro.core.interleaving import (
    assign_interleave_sets,
    estimate_interleave_sets,
    estimate_micro_batches,
)
from repro.core.packing import pack_by_dimension
from repro.embedding.placement import predict_imbalance
from repro.graph.builder import (
    ExecutionPlan,
    WorkloadStats,
    groups_per_field,
)
from repro.hardware.topology import ClusterSpec
from repro.models.base import ModelSpec


#: Process-wide memos for the planner's two sampling-backed leaves.
#: Both are pure, seeded functions of frozen (hashable) specs, and both
#: are expensive enough to dominate repeated plan builds — planners are
#: constructed per run, so per-instance caching would never hit.
_IMBALANCE_CACHE: dict = {}
_HIT_RATIO_CACHE: dict = {}

#: Whole-plan memo: ``(config, model, cluster, batch, seed)`` ->
#: :class:`ExecutionPlan`.  Planning is deterministic, and a plan is
#: never mutated once :meth:`PicassoPlanner.plan` returns (the
#: compiled-plan cache in :mod:`repro.core.executor` relies on the same
#: contract), so benchmark/tuning loops re-requesting the same workload
#: share one plan object.  Bounded FIFO so sweeps stay flat.
_PLAN_CACHE: OrderedDict = OrderedDict()
_PLAN_CACHE_MAX = 64


def _predicted_imbalance(fields: tuple, workers: int,
                         batch_size: int) -> float:
    key = (fields, workers, batch_size)
    value = _IMBALANCE_CACHE.get(key)
    if value is None:
        value = predict_imbalance(fields, workers, batch_size)
        _IMBALANCE_CACHE[key] = value
    return value


def _planned_hit_ratio(dataset, hot_bytes: float, batch_size: int) -> float:
    key = (dataset, hot_bytes, batch_size)
    value = _HIT_RATIO_CACHE.get(key)
    if value is None:
        value = expected_hit_ratio(dataset, hot_bytes,
                                   batch_size).hit_ratio
        _HIT_RATIO_CACHE[key] = value
    return value


class PicassoPlanner:
    """Plans PICASSO executions; one planner may serve many models."""

    def __init__(self, config: PicassoConfig | None = None,
                 stats: WorkloadStats | None = None):
        self.config = config or PicassoConfig()
        self.stats = stats or WorkloadStats()

    def plan(self, model: ModelSpec, cluster: ClusterSpec,
             batch_size: int) -> ExecutionPlan:
        """Produce the optimized execution plan for one workload.

        Planning is deterministic, so results are memoized process-wide
        (configs are frozen dataclasses, so the config itself is the
        key).  The returned plan is shared: treat it as immutable, as
        the executor's compiled-plan cache does.
        """
        key = (self.config, model, cluster, batch_size,
               self.stats._seed)
        cached = _PLAN_CACHE.get(key)
        if cached is not None:
            _PLAN_CACHE.move_to_end(key)
            return cached
        plan = self._plan_uncached(model, cluster, batch_size)
        _PLAN_CACHE[key] = plan
        while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
            _PLAN_CACHE.popitem(last=False)
        return plan

    def _plan_uncached(self, model: ModelSpec, cluster: ClusterSpec,
                       batch_size: int) -> ExecutionPlan:
        config = self.config
        dataset = model.dataset

        if config.enable_packing:
            groups = pack_by_dimension(dataset, batch_size, self.stats,
                                       config.excluded_fields)
        else:
            groups = groups_per_field(dataset)

        plan = ExecutionPlan(
            model=model,
            cluster=cluster,
            batch_size=batch_size,
            strategy="hybrid",
            groups=groups,
            fuse_kernels=config.enable_packing,
            fine_grained_deps=config.enable_interleaving,
            io_overlap=True,
            # HybridBackend's columnar input pipeline ships roughly
            # half the bytes of the baselines' padded records.
            io_compression=0.5,
            cost=config.cost,
            prefetch_lookahead=config.prefetch_lookahead,
            prefetch_hot_threshold=config.prefetch_hot_threshold,
            prefetch_inflight_bytes=config.prefetch_inflight_bytes,
            prefetch_policy=config.prefetch_policy,
        )

        if config.enable_interleaving:
            sets = config.interleave_sets or estimate_interleave_sets(
                groups, batch_size, self.stats)
            plan.groups = assign_interleave_sets(
                groups, sets, batch_size, self.stats)
            plan.interleave_sets = sets
            # Eq. 2 sizes micro-batches against device memory; even when
            # everything fits, a few slices keep the pipeline full by
            # overlapping each slice's collectives with the next slice's
            # compute (Fig. 14's "sufficient input data" condition).
            micro = config.micro_batches or max(4, estimate_micro_batches(
                plan, config.device_memory_budget))
            plan.micro_batches = micro
            plan.micro_batch_scope = config.micro_batch_scope

        if config.shard_policy == "planned" and plan.uses_alltoall \
                and cluster.num_workers > 1:
            # Skew-aware placement rebalances the exchange: price the
            # AllToAllv at the plan's predicted max/mean shard ratio
            # instead of the generic straggler factor.
            plan.shard_imbalance = _predicted_imbalance(
                dataset.fields, cluster.num_workers, batch_size)

        if config.enable_caching:
            hit_ratio = _planned_hit_ratio(
                dataset, config.hot_storage_bytes, batch_size)
            # The live hot set trails the ideal top-k between flushes
            # (Algorithm 1 refreshes every flush_iters), so the achieved
            # hit ratio is discounted against the oracle plan.
            plan.cache_hit_ratio = hit_ratio * 0.65

        return plan
