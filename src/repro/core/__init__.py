"""PICASSO core: packing, interleaving, and caching optimization.

The public entry point is :class:`~repro.core.executor.PicassoExecutor`,
which plans and executes a WDL training workload with the paper's three
optimizations (SS III-B/C/D), and
:class:`~repro.core.config.PicassoConfig`, whose toggles drive the
ablation study (Tab. IV).
"""

from repro.core.config import PicassoConfig
from repro.core.packing import (
    calc_vparam,
    pack_by_dimension,
    packed_embedding_count,
)
from repro.core.interleaving import (
    assign_interleave_sets,
    estimate_interleave_sets,
    estimate_micro_batches,
)
from repro.core.caching import CachePlan, expected_hit_ratio
from repro.core.planner import PicassoPlanner
from repro.core.executor import PicassoExecutor, RunReport, simulate_plan

__all__ = [
    "PicassoConfig",
    "calc_vparam",
    "pack_by_dimension",
    "packed_embedding_count",
    "assign_interleave_sets",
    "estimate_interleave_sets",
    "estimate_micro_batches",
    "CachePlan",
    "expected_hit_ratio",
    "PicassoPlanner",
    "PicassoExecutor",
    "RunReport",
    "simulate_plan",
    "AutoTuner",
    "TuningResult",
]


def __getattr__(name: str):
    # AutoTuner moved to repro.tuning; resolve lazily so importing
    # repro.core never pulls the tuning package (or its deprecation
    # shim) unless the legacy names are actually used.
    if name in ("AutoTuner", "TuningResult"):
        from repro.tuning import warmup
        return getattr(warmup, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
