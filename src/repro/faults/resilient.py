"""Checkpoint-restore-replay training under injected faults.

:class:`ResilientTrainer` wraps a
:class:`~repro.training.trainer.SyncTrainer` with the recovery loop
production PICASSO gets from its in-house failover service: checkpoint
every ``ckpt_interval`` steps (through
:mod:`repro.training.checkpoint`, optimizer slots included), detect
worker loss from the :class:`~repro.faults.plan.FaultPlan`, restore
the last durable checkpoint, and replay the lost steps.

Time is modeled, state is real: every optimizer step actually runs on
the numpy network, while the wall clock advances by per-step cost,
checkpoint-write cost, failure-detection and restore delays, and
straggler slowdowns.  Because checkpoints capture the full state and
the batch stream is seeded, a replayed step recomputes *bitwise* the
loss it produced before the crash — the trainer verifies this on every
replay and reports any divergence.

The resulting :class:`RecoveryReport` carries the classic
fault-tolerance accounting: MTTR, lost-work seconds, and goodput
(useful step-seconds over total wall time) — the quantities the
``fault_recovery`` experiment sweeps against crash rate and
checkpoint interval.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults.plan import FaultPlan
from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.trainer import SyncTrainer


@dataclass
class RecoveryReport:
    """Fault-tolerance accounting for one training run (``Stats``).

    Wall-time decomposes as ``useful + replayed + checkpoint + repair
    + stalled`` (stalled = straggler inflation of step time); goodput
    is the useful fraction.  ``mttr_s`` is the mean time from a crash
    striking to the trainer being back at its pre-crash step count
    (detection + restore + replay).
    """

    steps: int
    ckpt_interval: int
    crashes: int = 0
    recoveries: int = 0
    total_wall_s: float = 0.0
    useful_s: float = 0.0
    replayed_s: float = 0.0
    checkpoint_s: float = 0.0
    repair_s: float = 0.0
    stalled_s: float = 0.0
    lost_work_s: float = 0.0
    mttr_s: float = 0.0
    replay_divergence: int = 0
    losses: list = field(default_factory=list)

    @property
    def goodput(self) -> float:
        """Useful step-seconds per wall-second, in ``[0, 1]``."""
        if self.total_wall_s <= 0:
            return 1.0
        return self.useful_s / self.total_wall_s

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def as_dict(self) -> dict:
        """Plain-dict snapshot for telemetry export and benchmarks."""
        return {
            "steps": self.steps,
            "ckpt_interval": self.ckpt_interval,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "total_wall_s": self.total_wall_s,
            "useful_s": self.useful_s,
            "replayed_s": self.replayed_s,
            "checkpoint_s": self.checkpoint_s,
            "repair_s": self.repair_s,
            "stalled_s": self.stalled_s,
            "lost_work_s": self.lost_work_s,
            "mttr_s": self.mttr_s,
            "goodput": self.goodput,
            "replay_divergence": self.replay_divergence,
            "final_loss": self.final_loss,
        }


class ResilientTrainer:
    """Failure-surviving wrapper around :class:`SyncTrainer`.

    :param trainer: the inner trainer whose :meth:`SyncTrainer.step`
        does the real optimizer work (telemetry included).
    :param ckpt_dir: directory for checkpoint files; a checkpoint only
        becomes the restore target once its write *completes*, so a
        crash mid-write falls back to the previous durable one.
    :param ckpt_interval: checkpoint every N steps; ``0`` disables
        periodic checkpointing (recovery restarts from step 0 — the
        baseline the goodput curves are measured against).
    :param step_time_s: modeled wall seconds per training step.
    :param ckpt_write_s: modeled seconds per checkpoint write.
    :param detect_s: failure-detection delay after a crash strikes.
    :param restore_s: checkpoint-restore delay before replay begins.
    """

    def __init__(self, trainer: SyncTrainer, ckpt_dir,
                 ckpt_interval: int = 10, step_time_s: float = 1.0,
                 ckpt_write_s: float = 0.1, detect_s: float = 0.25,
                 restore_s: float = 0.25):
        if ckpt_interval < 0:
            raise ValueError("ckpt_interval must be >= 0")
        if step_time_s <= 0:
            raise ValueError("step_time_s must be > 0")
        if min(ckpt_write_s, detect_s, restore_s) < 0:
            raise ValueError("modeled delays must be >= 0")
        self.trainer = trainer
        self.ckpt_dir = Path(ckpt_dir)
        self.ckpt_interval = int(ckpt_interval)
        self.step_time_s = float(step_time_s)
        self.ckpt_write_s = float(ckpt_write_s)
        self.detect_s = float(detect_s)
        self.restore_s = float(restore_s)
        self._last_durable: tuple | None = None  # (step, path)

    # -- checkpoint plumbing -------------------------------------------------

    def _save(self, step: int) -> None:
        path = self.ckpt_dir / f"ckpt_step{step}.npz"
        save_checkpoint(self.trainer.network, path, step=step,
                        optimizer=self.trainer.optimizer)
        self._last_durable = (step, path)  # durable only once written

    def _restore(self) -> int:
        if self._last_durable is None:
            raise RuntimeError("no durable checkpoint to restore from")
        step, path = self._last_durable
        load_checkpoint(self.trainer.network, path,
                        optimizer=self.trainer.optimizer,
                        expected_step=step)
        return step

    # -- the recovery loop ---------------------------------------------------

    def train(self, iterator, steps: int,
              fault_plan: FaultPlan | None = None) -> RecoveryReport:
        """Run ``steps`` updates surviving the plan's crashes.

        The batch stream is materialized up front (it is a pure
        function of the iterator's seed), so replayed steps see the
        exact batches they saw before the crash.
        """
        if steps < 1:
            raise ValueError("steps must be >= 1")
        plan = fault_plan or FaultPlan()
        batches = list(iterator.batches(steps))
        report = RecoveryReport(steps=steps,
                                ckpt_interval=self.ckpt_interval,
                                losses=[None] * steps)
        self.ckpt_dir.mkdir(parents=True, exist_ok=True)
        self._save(0)  # the job's initial artifact; free at t=0
        crashes = deque(plan.crashes())
        mttrs: list = []
        wall = 0.0
        step = 0
        committed = 0  # highest step count ever reached

        def slowdown(t: float) -> float:
            factor = 1.0
            for event in plan.active(t, kind="straggler"):
                factor *= max(1.0, event.severity)
            return factor

        def fail(crash, activity_start: float, partial_s: float) -> None:
            nonlocal wall, step
            report.crashes += 1
            last_step = self._last_durable[0]
            lost = (step - last_step) * self.step_time_s + partial_s
            report.lost_work_s += lost
            repair = self.detect_s + self.restore_s
            report.repair_s += repair
            # Time already burnt between activity start and the strike.
            wall = max(wall + partial_s, crash.time_s) + repair
            restored = self._restore()
            mttrs.append(repair
                         + (step - restored) * self.step_time_s)
            step = restored
            report.recoveries += 1

        while step < steps:
            next_crash = crashes[0] if crashes else None
            due_ckpt = (self.ckpt_interval > 0 and step > 0
                        and step % self.ckpt_interval == 0
                        and self._last_durable[0] < step)
            if due_ckpt:
                duration = self.ckpt_write_s
            else:
                duration = self.step_time_s * slowdown(wall)
            if next_crash is not None and next_crash.time_s < wall + duration:
                crashes.popleft()
                fail(next_crash, wall,
                     partial_s=max(0.0, next_crash.time_s - wall))
                continue
            if due_ckpt:
                wall += duration
                report.checkpoint_s += duration
                self._save(step)
                continue
            loss = self.trainer.step(batches[step], index=step)
            wall += duration
            report.stalled_s += duration - self.step_time_s
            if step < committed:
                report.replayed_s += self.step_time_s
                if report.losses[step] != loss:
                    report.replay_divergence += 1
            report.losses[step] = loss
            step += 1
            committed = max(committed, step)

        report.total_wall_s = wall
        report.useful_s = steps * self.step_time_s
        report.mttr_s = sum(mttrs) / len(mttrs) if mttrs else 0.0
        return report
