"""Fault injection for the discrete-event engine.

A :class:`FaultInjector` translates a :class:`~repro.faults.plan.FaultPlan`
into the two perturbations :class:`~repro.sim.engine.Engine` understands:

* **capacity scaling** — during a straggler window the compute kinds
  (GPU SMs, CPU) run at ``1/severity`` of their capacity; during a
  link-degradation window the network keeps only ``severity`` of its
  bandwidth; during a crash's downtime every resource is dark (scale
  0) until the replacement worker is up;
* **kill/requeue** — at the instant a crash strikes, every in-flight
  task loses its current phase's progress and re-enters its resource
  queue (the engine calls back into :meth:`record` with the body
  count, building the injection log that telemetry and tests read).

The injector is stateless between queries — ``scale`` and
``next_boundary`` are pure functions of the plan and the clock — so
the engine's event stepping stays exactly reproducible.
"""

from __future__ import annotations

import math

from repro.faults.plan import FaultPlan
from repro.sim.resource import (
    COMPUTE_KINDS,
    ResourceKind,
)

#: Kinds a straggler window slows down.
STRAGGLER_KINDS = frozenset(COMPUTE_KINDS)

#: Kinds a link-degradation window throttles.
LINK_KINDS = frozenset({ResourceKind.NET})


class FaultInjector:
    """Applies a :class:`FaultPlan` to one engine run.

    :param plan: the fault schedule, in the engine's modeled clock.
    :param straggler_kinds: resource kinds slowed by stragglers.
    :param link_kinds: resource kinds throttled by link degradation.
    """

    def __init__(self, plan: FaultPlan,
                 straggler_kinds=STRAGGLER_KINDS,
                 link_kinds=LINK_KINDS):
        self.plan = plan
        self.straggler_kinds = frozenset(straggler_kinds)
        self.link_kinds = frozenset(link_kinds)
        self._boundaries = plan.boundaries()
        #: (event, strike time, tasks killed) per applied crash.
        self.log: list = []

    def scale(self, kind: ResourceKind, t: float) -> float:
        """Capacity multiplier for ``kind`` at modeled time ``t``."""
        factor = 1.0
        for event in self.plan.events:
            if not event.active_at(t):
                continue
            if event.kind == "crash":
                return 0.0  # downtime blacks out the whole worker
            if event.kind == "straggler" and kind in self.straggler_kinds:
                factor /= max(1.0, event.severity)
            elif event.kind == "link_degrade" and kind in self.link_kinds:
                factor *= event.severity
        return factor

    def next_boundary(self, t: float) -> float:
        """Earliest fault start/end strictly after ``t`` (inf if none)."""
        for boundary in self._boundaries:
            if boundary > t:
                return boundary
        return math.inf

    def crashes_between(self, t0: float, t1: float) -> tuple:
        """Crash events striking within ``(t0, t1]``."""
        return tuple(e for e in self.plan.between(t0, t1)
                     if e.kind == "crash")

    def record(self, event, time_s: float, killed: int) -> None:
        """Engine callback: a crash was applied, ``killed`` tasks lost."""
        self.log.append((event, time_s, killed))

    @property
    def crashes_applied(self) -> int:
        """How many crash events the engine has executed so far."""
        return len(self.log)

    def tasks_killed(self) -> int:
        """Total in-flight tasks killed across all applied crashes."""
        return sum(killed for _event, _time, killed in self.log)
