"""Fault-tolerance health: MTTR/goodput verdicts on the alert track.

The :mod:`repro.telemetry.monitor` layer judges whether a run was
*healthy*; this module extends that judgement to runs that were
*attacked*.  :class:`FaultToleranceMonitor` reduces a
:class:`~repro.faults.resilient.RecoveryReport` to a
:class:`~repro.telemetry.monitor.MonitorReport` — every crash and
recovery becomes an :class:`~repro.telemetry.monitor.Alert` anchored
at its modeled time, so :func:`~repro.telemetry.monitor.emit_alerts`
puts failures on the same Chrome-trace ``alerts`` track as idle-GPU
and SLO-burn warnings.  :func:`plan_report` gives the same treatment
to a bare :class:`~repro.faults.plan.FaultPlan` (used by
``repro.api.profile`` when a run carries a plan but no recovery
loop).
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan
from repro.telemetry.monitor import Alert, MonitorReport


class FaultToleranceMonitor:
    """Judges a recovery run: did resilience actually pay for itself?

    :param min_goodput: goodput floor below which the run is flagged —
        the recovery machinery (checkpoints + replay) must leave a
        usable fraction of wall time.
    :param max_mttr_s: optional ceiling on mean time to recovery.
    """

    name = "faults"

    def __init__(self, min_goodput: float = 0.5,
                 max_mttr_s: float | None = None):
        if not 0.0 <= min_goodput <= 1.0:
            raise ValueError("min_goodput must be in [0, 1]")
        self.min_goodput = float(min_goodput)
        self.max_mttr_s = max_mttr_s

    def analyze(self, report,
                plan: FaultPlan | None = None) -> MonitorReport:
        """Reduce a :class:`RecoveryReport` (+ optional plan) to health.

        Every crash in the plan becomes an ``info`` alert at its
        strike time; threshold crossings (low goodput, slow recovery,
        replay divergence) escalate to ``warning``/``critical``.
        """
        alerts = list(plan_alerts(plan)) if plan is not None else []
        if report.goodput < self.min_goodput:
            alerts.append(Alert(
                time_s=report.total_wall_s,
                monitor=self.name,
                severity="warning",
                message=(f"goodput {report.goodput:.1%} below "
                         f"{self.min_goodput:.1%} after "
                         f"{report.crashes} crash(es)"),
                value=report.goodput,
                threshold=self.min_goodput))
        if self.max_mttr_s is not None and report.mttr_s > self.max_mttr_s:
            alerts.append(Alert(
                time_s=report.total_wall_s,
                monitor=self.name,
                severity="warning",
                message=(f"MTTR {report.mttr_s:.2f}s exceeds "
                         f"{self.max_mttr_s:.2f}s"),
                value=report.mttr_s,
                threshold=self.max_mttr_s))
        if report.replay_divergence:
            alerts.append(Alert(
                time_s=report.total_wall_s,
                monitor=self.name,
                severity="critical",
                message=(f"{report.replay_divergence} replayed step(s) "
                         "diverged from the pre-crash trajectory"),
                value=float(report.replay_divergence),
                threshold=0.0))
        summary = {
            key: value for key, value in report.as_dict().items()
            if key != "losses"
        }
        unhealthy = any(alert.severity in ("warning", "critical")
                        for alert in alerts)
        return MonitorReport(
            monitor=self.name,
            healthy=not unhealthy,
            summary=summary,
            alerts=tuple(alerts))


def plan_alerts(plan: FaultPlan) -> list:
    """One ``info`` alert per planned fault, anchored at strike time."""
    alerts = []
    for event in plan.events:
        if event.kind == "crash":
            message = (f"worker {event.worker} crash, "
                       f"down {event.duration_s:g}s")
        elif event.kind == "straggler":
            message = (f"worker {event.worker} straggling "
                       f"{event.severity:g}x for {event.duration_s:g}s")
        else:
            message = (f"link to worker {event.worker} degraded to "
                       f"{event.severity:.0%} for {event.duration_s:g}s")
        alerts.append(Alert(
            time_s=event.time_s,
            monitor="faults",
            severity="info",
            message=message,
            value=event.severity,
            threshold=0.0))
    return alerts


def plan_report(plan: FaultPlan) -> MonitorReport:
    """Summarize a fault plan as a monitor report (``profile`` path).

    The plan itself is neither healthy nor unhealthy — injected faults
    are intentional — so the report stays ``healthy`` and carries the
    schedule as ``info`` alerts for the trace timeline.
    """
    counts = {kind: len(plan.of_kind(kind))
              for kind in ("crash", "straggler", "link_degrade")}
    summary = {
        "events": len(plan),
        "seed": plan.seed,
        **{f"{kind}_events": count for kind, count in counts.items()},
        "first_event_s": plan.events[0].time_s if plan.events else 0.0,
        "last_event_end_s": (max(event.end_s for event in plan.events)
                             if plan.events else 0.0),
    }
    return MonitorReport(
        monitor="faults",
        healthy=True,
        summary=summary,
        alerts=tuple(plan_alerts(plan)))
