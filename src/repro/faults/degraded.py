"""Degraded-mode serving: replica loss tightens admission, not uptime.

A production recommender front-end never answers a replica crash with
an outage: the surviving replicas absorb the load at reduced capacity
while admission control sheds proactively so the requests that *are*
served still meet the SLO.  :class:`DegradedModeController` models
exactly that contract on top of the existing
:class:`~repro.serving.slo.SloPolicy`:

* while a :class:`~repro.faults.plan.FaultPlan` crash window is active,
  ``live`` replicas (never below ``min_live``) carry the traffic, so
  modeled service time inflates by ``replicas / live``;
* the admission deadline is tightened by ``live / replicas``, shifting
  capacity loss into shed rate instead of SLO violations.

The controller is consumed by
:func:`~repro.serving.server.serve_trace` through duck-typed hooks
(``service_factor`` / ``admit`` / ``observe``), keeping
:mod:`repro.serving` free of any import on :mod:`repro.faults`.
"""

from __future__ import annotations

import dataclasses

from repro.faults.plan import FaultPlan
from repro.serving.slo import SloConfig, SloPolicy


class DegradedModeController:
    """Replica-loss-aware admission control for a serving run.

    :param plan: fault plan whose ``crash`` events mark replica loss
        windows (``worker`` = replica index, ``duration_s`` = outage).
    :param replicas: total replica count behind the front-end.
    :param min_live: floor on surviving replicas — the last replica
        never "crashes away" (that would be the outage this mode
        exists to avoid).
    """

    def __init__(self, plan: FaultPlan, replicas: int = 1,
                 min_live: int = 1):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if not 1 <= min_live <= replicas:
            raise ValueError("min_live must be in [1, replicas]")
        self.plan = plan
        self.replicas = int(replicas)
        self.min_live = int(min_live)
        self._degraded_batches = 0
        self._total_batches = 0
        self._tightened_shed = 0
        self._min_live_seen = self.replicas

    # -- capacity model ------------------------------------------------------

    def live_replicas(self, t: float) -> int:
        """Replicas still serving at modeled time ``t``."""
        down = {event.worker for event in self.plan.active(t, kind="crash")}
        return max(self.min_live,
                   self.replicas - min(len(down), self.replicas))

    def service_factor(self, t: float) -> float:
        """Service-time inflation: survivors carry the full load."""
        return self.replicas / self.live_replicas(t)

    def budget_factor(self, t: float) -> float:
        """Admission-deadline tightening while degraded, in ``(0, 1]``."""
        return self.live_replicas(t) / self.replicas

    def degraded_seconds(self) -> float:
        """Total modeled time with at least one replica down."""
        windows = sorted((event.time_s, event.end_s)
                         for event in self.plan.of_kind("crash"))
        total, cursor = 0.0, float("-inf")
        for start, end in windows:
            start = max(start, cursor)
            if end > start:
                total += end - start
                cursor = end
        return total

    # -- the serve_trace hooks -----------------------------------------------

    def admit(self, policy: SloPolicy, batch, start_s: float,
              service_estimate_s: float) -> tuple:
        """Admission with the deadline tightened for current capacity.

        At full capacity this is exactly ``policy.admit``; degraded, a
        temporary policy with the scaled-down budget decides, and the
        extra sheds are attributed to degraded mode in the summary.
        """
        self._total_batches += 1
        live = self.live_replicas(start_s)
        self._min_live_seen = min(self._min_live_seen, live)
        if live >= self.replicas:
            return policy.admit(batch, start_s, service_estimate_s)
        self._degraded_batches += 1
        config = policy.config
        tightened = SloPolicy(SloConfig(
            latency_budget_s=config.latency_budget_s
            * self.budget_factor(start_s),
            max_queue_delay_s=config.max_queue_delay_s))
        admitted, shed = tightened.admit(batch, start_s,
                                         service_estimate_s)
        would_admit, _ = policy.admit(batch, start_s, service_estimate_s)
        self._tightened_shed += max(0, len(would_admit) - len(admitted))
        return admitted, shed

    def summary(self) -> dict:
        """JSON-ready account of how degraded the run got."""
        return {
            "replicas": self.replicas,
            "replica_crashes": len(self.plan.of_kind("crash")),
            "degraded_seconds": self.degraded_seconds(),
            "min_live_replicas": self._min_live_seen,
            "degraded_batches": self._degraded_batches,
            "total_batches": self._total_batches,
            "tightened_shed": self._tightened_shed,
        }


class CompositeServeController:
    """Stacks several serve controllers behind the one ``faults`` slot.

    :func:`~repro.serving.server.serve_trace` accepts a single
    duck-typed controller, but real deployments run several capacity
    modifiers at once — replica-crash degradation, a hot-swap's load
    window, an autoscaler's replica count.  The composite presents the
    same three hooks:

    * ``service_factor`` multiplies across members (capacity effects
      stack);
    * ``admit`` threads the batch through each member's ``admit`` in
      order, each seeing only the survivors of the previous one (a
      member without the hook is skipped; with no admitting member the
      plain policy decides);
    * ``summary`` maps each member's name to its own summary.

    Members are consulted in construction order, so put the tightest
    admission controller first.
    """

    def __init__(self, controllers: list):
        self.controllers = list(controllers)

    def service_factor(self, t: float) -> float:
        factor = 1.0
        for controller in self.controllers:
            hook = getattr(controller, "service_factor", None)
            if hook is not None:
                factor *= hook(t)
        return factor

    def admit(self, policy: SloPolicy, batch, start_s: float,
              service_estimate_s: float) -> tuple:
        admitted = list(batch.requests)
        shed: list = []
        decided = False
        current = batch
        for controller in self.controllers:
            hook = getattr(controller, "admit", None)
            if hook is None:
                continue
            decided = True
            admitted, dropped = hook(policy, current, start_s,
                                     service_estimate_s)
            shed.extend(dropped)
            if not admitted:
                break
            current = dataclasses.replace(current,
                                          requests=tuple(admitted))
        if not decided:
            return policy.admit(batch, start_s, service_estimate_s)
        return admitted, shed

    def summary(self) -> dict:
        report = {}
        for controller in self.controllers:
            hook = getattr(controller, "summary", None)
            if hook is None:
                continue
            name = getattr(controller, "name",
                           type(controller).__name__)
            report[name] = hook()
        return report
