"""Seeded, declarative fault models: what goes wrong, and when.

Production PICASSO leans on in-house failover recovery that the paper
declares out of scope; a production-scale reproduction still has to
survive node crashes, stragglers and degraded links.  A
:class:`FaultPlan` is the declarative half of that story: an immutable,
fully seeded schedule of :class:`FaultEvent`\\ s that every consumer —
the simulation engine's :class:`~repro.faults.inject.FaultInjector`,
the :class:`~repro.faults.resilient.ResilientTrainer`, and serving's
:class:`~repro.faults.degraded.DegradedModeController` — interprets
against its own clock.  Because the plan is a pure function of its
constructor arguments (Poisson arrivals come from one
``numpy.random.default_rng(seed)``), the same seed always yields the
same event schedule, the same recovery timeline, and the same report:
faulty runs are exactly as reproducible as healthy ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Event kinds a plan may carry.
FAULT_KINDS = ("crash", "straggler", "link_degrade")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure.

    :param kind: ``"crash"`` (the worker process dies; in-flight work
        is lost and the target is dark for ``duration_s``),
        ``"straggler"`` (compute throughput divided by ``severity``
        over the window), or ``"link_degrade"`` (network capacity
        multiplied by ``severity`` over the window).
    :param time_s: when the fault strikes, in the consumer's clock.
    :param duration_s: how long the fault persists (crash: downtime
        before the replacement is up; straggler/link: window length).
    :param severity: straggler slowdown factor (``>= 1``) or link
        capacity fraction (``0 < severity <= 1``); ignored for crashes.
    :param worker: which worker/replica the fault hits.
    """

    kind: str
    time_s: float
    duration_s: float = 0.0
    severity: float = 1.0
    worker: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if self.time_s < 0:
            raise ValueError(f"time_s must be >= 0, got {self.time_s}")
        if self.duration_s < 0:
            raise ValueError(
                f"duration_s must be >= 0, got {self.duration_s}")
        if self.kind == "straggler" and self.severity < 1.0:
            raise ValueError(
                "straggler severity is a slowdown factor >= 1, "
                f"got {self.severity}")
        if self.kind == "link_degrade" and not 0.0 < self.severity <= 1.0:
            raise ValueError(
                "link_degrade severity is a capacity fraction in "
                f"(0, 1], got {self.severity}")

    @property
    def end_s(self) -> float:
        """When the fault clears."""
        return self.time_s + self.duration_s

    def active_at(self, t: float) -> bool:
        """Whether the fault window covers modeled time ``t``."""
        return self.time_s <= t < self.end_s

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "time_s": self.time_s,
            "duration_s": self.duration_s,
            "severity": self.severity,
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultEvent":
        return cls(kind=payload["kind"], time_s=payload["time_s"],
                   duration_s=payload.get("duration_s", 0.0),
                   severity=payload.get("severity", 1.0),
                   worker=payload.get("worker", 0))


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults, ordered by strike time.

    Build one directly from events, from seeded Poisson arrivals
    (:meth:`generate`), or from an evenly spaced grid
    (:meth:`periodic`, for sweeps that must vary monotonically with
    the rate).  ``as_dict`` / :meth:`from_dict` round-trip losslessly,
    so a :class:`~repro.api.RunConfig` or
    :class:`~repro.api.ServeConfig` embedding a plan reproduces the
    faulty run from config alone.
    """

    events: tuple = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events,
                               key=lambda e: (e.time_s, e.kind, e.worker)))
        object.__setattr__(self, "events", ordered)

    @classmethod
    def generate(cls, seed: int, duration_s: float,
                 crash_rate: float = 0.0,
                 straggler_rate: float = 0.0,
                 link_degrade_rate: float = 0.0,
                 workers: int = 1,
                 crash_downtime_s: float = 0.5,
                 straggler_window_s: float = 1.0,
                 straggler_slowdown: float = 4.0,
                 link_window_s: float = 1.0,
                 link_capacity_fraction: float = 0.25) -> "FaultPlan":
        """Seeded Poisson fault arrivals over ``[0, duration_s)``.

        Each kind arrives as an independent Poisson process at its
        rate (events/second); affected workers are drawn uniformly.
        Same seed, same arguments, same schedule — byte for byte.
        """
        if duration_s <= 0:
            raise ValueError(
                f"duration_s must be > 0, got {duration_s}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        rng = np.random.default_rng(seed)
        events = []
        specs = (
            ("crash", crash_rate, crash_downtime_s, 1.0),
            ("straggler", straggler_rate, straggler_window_s,
             straggler_slowdown),
            ("link_degrade", link_degrade_rate, link_window_s,
             link_capacity_fraction),
        )
        for kind, rate, window, severity in specs:
            if rate < 0:
                raise ValueError(f"{kind} rate must be >= 0, got {rate}")
            if rate == 0:
                continue
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / rate))
                if t >= duration_s:
                    break
                events.append(FaultEvent(
                    kind=kind, time_s=t, duration_s=window,
                    severity=severity,
                    worker=int(rng.integers(workers))))
        return cls(events=tuple(events), seed=seed)

    @classmethod
    def periodic(cls, crash_rate: float, duration_s: float,
                 crash_downtime_s: float = 0.5,
                 workers: int = 1) -> "FaultPlan":
        """Evenly spaced crashes at ``crash_rate`` per second.

        Crash count is exactly ``floor(duration_s * crash_rate)`` (the
        first crash lands mid-period), so sweeping the rate moves the
        count monotonically — the deterministic grid the
        ``fault_recovery`` experiment's goodput curves are drawn on.
        """
        if crash_rate < 0:
            raise ValueError(
                f"crash_rate must be >= 0, got {crash_rate}")
        if duration_s <= 0:
            raise ValueError(
                f"duration_s must be > 0, got {duration_s}")
        events = []
        if crash_rate > 0:
            period = 1.0 / crash_rate
            count = int(duration_s * crash_rate)
            for index in range(count):
                events.append(FaultEvent(
                    kind="crash", time_s=(index + 0.5) * period,
                    duration_s=crash_downtime_s,
                    worker=index % max(1, workers)))
        return cls(events=tuple(events), seed=None)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> tuple:
        """Events of one kind, in strike order."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        return tuple(e for e in self.events if e.kind == kind)

    def crashes(self) -> tuple:
        """The crash events, in strike order."""
        return self.of_kind("crash")

    def between(self, t0: float, t1: float) -> tuple:
        """Events striking within ``(t0, t1]``."""
        return tuple(e for e in self.events if t0 < e.time_s <= t1)

    def active(self, t: float, kind: str | None = None) -> tuple:
        """Events whose window covers ``t`` (optionally one kind)."""
        return tuple(e for e in self.events
                     if e.active_at(t) and (kind is None or e.kind == kind))

    def boundaries(self) -> tuple:
        """Sorted unique start/end times — where state may change."""
        times = set()
        for event in self.events:
            times.add(event.time_s)
            times.add(event.end_s)
        return tuple(sorted(times))

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict:
        """Plain-dict snapshot; :meth:`from_dict` inverts it exactly."""
        return {
            "seed": self.seed,
            "events": [event.as_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        return cls(
            events=tuple(FaultEvent.from_dict(entry)
                         for entry in payload.get("events", ())),
            seed=payload.get("seed"))
