"""Fault injection and elastic recovery (paper SS III: failover scope).

Production PICASSO relies on an in-house failover-recovery service the
paper leaves out of scope; this package supplies the open-source
equivalent as a seeded, deterministic layer over the existing stack:

* :mod:`~repro.faults.plan` — :class:`FaultPlan` /
  :class:`FaultEvent`: a reproducible schedule of node crashes,
  stragglers, and link degradations (Poisson-``generate`` or
  grid-``periodic``).
* :mod:`~repro.faults.inject` — :class:`FaultInjector`: threads a
  plan through the discrete-event :class:`~repro.sim.engine.Engine`
  (capacity scaling, task kill/requeue).
* :mod:`~repro.faults.resilient` — :class:`ResilientTrainer` /
  :class:`RecoveryReport`: checkpoint-restore-replay training with
  MTTR, lost-work and goodput accounting.
* :mod:`~repro.faults.degraded` — :class:`DegradedModeController`:
  replica loss becomes admission tightening, not an outage; and
  :class:`CompositeServeController`: several capacity modifiers
  (crash degradation, hot-swap load windows, autoscaling) stacked
  behind the one serve-trace ``faults`` slot.
* :mod:`~repro.faults.monitor` — :class:`FaultToleranceMonitor` and
  :func:`plan_report`: failures and recoveries on the telemetry
  ``alerts`` track.
"""

from repro.faults.degraded import (
    CompositeServeController,
    DegradedModeController,
)
from repro.faults.inject import FaultInjector
from repro.faults.monitor import (
    FaultToleranceMonitor,
    plan_alerts,
    plan_report,
)
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan
from repro.faults.resilient import RecoveryReport, ResilientTrainer

__all__ = [
    "FAULT_KINDS",
    "CompositeServeController",
    "DegradedModeController",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultToleranceMonitor",
    "RecoveryReport",
    "ResilientTrainer",
    "plan_alerts",
    "plan_report",
]
