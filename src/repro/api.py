"""The public run/serve facade: one config in, one report out.

Every entry point that simulates a workload — the CLI, the experiment
harnesses, the benchmark suite — used to carry its own model-building
/ cluster-parsing / framework-dispatch helpers.  This module is the
single replacement:

* :class:`RunConfig` names a training workload declaratively (model,
  dataset, cluster spec, framework, batch geometry, optional
  :class:`~repro.faults.plan.FaultPlan`);
* :func:`run` resolves it through the framework registry and returns
  the usual :class:`~repro.core.executor.RunReport`;
* :class:`ServeConfig` / :func:`serve` are the serving-side mirror,
  wrapping :func:`~repro.serving.server.simulate_serving`;
* :class:`StreamConfig` / :func:`stream` close the loop: continuous
  training with delta-snapshot publishes hot-swapped into serving,
  wrapping :func:`~repro.online.loop.simulate_stream`;
* :func:`profile` runs with telemetry on, returning the report plus a
  ready :class:`~repro.telemetry.CriticalPathReport` and Chrome-trace
  payload.

Framework dispatch is an open registry: :func:`register_framework`
binds a name to a runner callable, and ``api.FRAMEWORKS`` reflects
whatever is currently registered (the paper's six frameworks ship
built in).  Cluster specs are strings like ``eflops:16`` / ``gn6e:1``
(or an already-built :class:`~repro.hardware.topology.ClusterSpec`),
matching the paper's two testbeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields, \
    replace

from repro.baselines import framework_by_name
from repro.core import PicassoConfig, PicassoExecutor
from repro.core.executor import RunReport
from repro.data import ALL_DATASETS
from repro.faults.monitor import plan_report
from repro.faults.plan import FaultPlan
from repro.hardware import eflops_cluster, gn6e_cluster
from repro.hardware.topology import ClusterSpec
from repro.models import MODEL_BUILDERS
from repro.models.base import ModelSpec
from repro.online.loop import StreamReport, simulate_stream
from repro.serving.metrics import ServingReport
from repro.serving.server import CACHE_KINDS, simulate_serving
from repro.serving.traffic import RateShape, shape_from_dict
from repro.telemetry import (
    CriticalPathReport,
    OverlapMonitor,
    PulseDetector,
    Tracer,
    analyze_critical_path,
    chrome_trace,
    emit_alerts,
)
from repro.telemetry.span import ManualClock

#: name -> runner ``(config, model, cluster) -> RunReport``.
_FRAMEWORK_REGISTRY: dict = {}


def register_framework(name: str, runner, overwrite: bool = False) -> None:
    """Bind a framework name to a runner :func:`run` dispatches to.

    :param runner: callable ``(config, model, cluster) -> RunReport``
        receiving the full :class:`RunConfig`, the built
        :class:`~repro.models.base.ModelSpec` and the resolved
        :class:`ClusterSpec`.
    :param overwrite: allow rebinding an existing name (plug-in
        frameworks shadowing a built-in must opt in explicitly).
    """
    if not name:
        raise ValueError("framework name must be non-empty")
    if not callable(runner):
        raise TypeError(f"runner for {name!r} is not callable")
    if name in _FRAMEWORK_REGISTRY and not overwrite:
        raise ValueError(f"framework {name!r} already registered; "
                         "pass overwrite=True to replace it")
    _FRAMEWORK_REGISTRY[name] = runner


def frameworks() -> tuple:
    """Currently registered framework names, in registration order."""
    return tuple(_FRAMEWORK_REGISTRY)


def framework_runner(name: str):
    """The registered runner for ``name`` (ValueError with choices)."""
    try:
        return _FRAMEWORK_REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown framework {name!r}; "
                         f"expected one of {frameworks()}") from None


def __getattr__(name: str):
    # ``api.FRAMEWORKS`` predates the registry; keep it as a dynamic
    # view so plug-in registrations show up in old call sites too.
    if name == "FRAMEWORKS":
        return frameworks()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def parse_cluster(spec) -> ClusterSpec:
    """Resolve ``eflops:N`` / ``gn6e:N`` specs (pass-through for built).

    Raises :class:`ValueError` for unknown testbed names.
    """
    if isinstance(spec, ClusterSpec):
        return spec
    name, _, count = str(spec).partition(":")
    nodes = int(count) if count else 1
    if name == "eflops":
        return eflops_cluster(nodes)
    if name == "gn6e":
        return gn6e_cluster(nodes)
    raise ValueError(f"unknown cluster {name!r}; expected eflops|gn6e")


@dataclass(frozen=True)
class RunConfig:
    """A declarative simulation request (the CLI's flags, as data).

    :param cluster: ``eflops:N`` / ``gn6e:N`` string or a built
        :class:`ClusterSpec`.
    :param picasso: optimization toggles for the ``PICASSO`` framework;
        ignored by the baselines (``PICASSO(Base)`` always runs with
        everything off).
    :param record_tasks: collect per-task telemetry
        (:class:`~repro.sim.trace.TaskRecord`) during the run.
    :param fault_plan: optional :class:`~repro.faults.plan.FaultPlan`
        injected into the simulation (crashes kill in-flight work,
        stragglers/link faults scale capacity).
    """

    model: str = "W&D"
    dataset: str = "Product-1"
    scale: float = 1.0
    cluster: object = "eflops:16"
    framework: str = "PICASSO"
    batch_size: int = 20_000
    iterations: int = 3
    picasso: PicassoConfig | None = None
    record_tasks: bool = False
    fault_plan: FaultPlan | None = None

    def resolved_cluster(self) -> ClusterSpec:
        """The cluster this config runs on."""
        return parse_cluster(self.cluster)

    def build_model(self) -> ModelSpec:
        """Instantiate the model over the (scaled) dataset.

        Raises :class:`KeyError`-flavoured :class:`ValueError` for
        unknown model or dataset names, listing the valid choices.
        """
        if self.model not in MODEL_BUILDERS:
            raise ValueError(
                f"unknown model {self.model!r}; "
                f"expected one of {sorted(MODEL_BUILDERS)}")
        if self.dataset not in ALL_DATASETS:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; "
                f"expected one of {list(ALL_DATASETS)}")
        dataset = ALL_DATASETS[self.dataset](self.scale)
        return MODEL_BUILDERS[self.model](dataset)

    def with_overrides(self, **changes) -> "RunConfig":
        """A copy with some fields replaced (sweeps, ablations)."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """Plain-dict snapshot (trace metadata, logs); round-trips
        through :meth:`from_dict`."""
        cluster = self.resolved_cluster()
        return {
            "model": self.model,
            "dataset": self.dataset,
            "scale": self.scale,
            "cluster": f"{cluster.name}:{cluster.num_nodes}",
            "framework": self.framework,
            "batch_size": self.batch_size,
            "iterations": self.iterations,
            "record_tasks": self.record_tasks,
            "fault_plan": (self.fault_plan.as_dict()
                           if self.fault_plan is not None else None),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunConfig":
        """Rebuild a config from :meth:`as_dict` output."""
        known = {spec.name for spec in dataclass_fields(cls)}
        settings = {key: value for key, value in payload.items()
                    if key in known}
        plan = settings.get("fault_plan")
        if isinstance(plan, dict):
            settings["fault_plan"] = FaultPlan.from_dict(plan)
        return cls(**settings)


def _run_picasso(config: RunConfig, model: ModelSpec,
                 cluster: ClusterSpec) -> RunReport:
    executor = PicassoExecutor(model, cluster, config.picasso)
    return executor.run(config.batch_size,
                        iterations=config.iterations,
                        record_tasks=config.record_tasks,
                        fault_plan=config.fault_plan)


def _run_picasso_base(config: RunConfig, model: ModelSpec,
                      cluster: ClusterSpec) -> RunReport:
    executor = PicassoExecutor(model, cluster, PicassoConfig.base())
    return executor.run(config.batch_size,
                        iterations=config.iterations,
                        record_tasks=config.record_tasks,
                        fault_plan=config.fault_plan)


def _baseline_runner(name: str):
    def runner(config: RunConfig, model: ModelSpec,
               cluster: ClusterSpec) -> RunReport:
        return framework_by_name(name).run(
            model, cluster, config.batch_size,
            iterations=config.iterations,
            record_tasks=config.record_tasks,
            fault_plan=config.fault_plan)
    return runner


register_framework("PICASSO", _run_picasso)
register_framework("PICASSO(Base)", _run_picasso_base)
for _baseline in ("TF-PS", "PyTorch", "Horovod", "XDL"):
    register_framework(_baseline, _baseline_runner(_baseline))
del _baseline


def run(config: RunConfig, model: ModelSpec | None = None) -> RunReport:
    """Execute one :class:`RunConfig`; the repo-wide simulation facade.

    Dispatch goes only through the framework registry — built-ins and
    :func:`register_framework` plug-ins are indistinguishable here.

    :param model: an already-built model to reuse (sweeps that vary
        only the framework or batch size skip dataset rebuilding);
        defaults to ``config.build_model()``.
    """
    runner = framework_runner(config.framework)
    model = model if model is not None else config.build_model()
    return runner(config, model, config.resolved_cluster())


@dataclass(frozen=True)
class ServeConfig:
    """A declarative serving request — :class:`RunConfig`'s mirror.

    Field for field the knobs of
    :func:`~repro.serving.server.simulate_serving`, plus the
    fault-tolerance pair (``replicas`` + ``fault_plan``): crash events
    in the plan take replicas down over their windows, and
    :func:`serve` responds with degraded-mode admission tightening
    instead of an outage.
    """

    requests: int = 10_000
    seed: int = 0
    rate_qps: float = 20_000.0
    cache: str = "hbm-dram"
    hot_rows: int = 4_000
    warm_rows: int = 60_000
    max_batch_size: int = 64
    max_wait_s: float = 0.002
    slo_s: float = 0.02
    micro_batch_rows: int = 16
    variant: str = "wdl"
    replicas: int = 1
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.cache not in CACHE_KINDS:
            raise ValueError(f"unknown cache {self.cache!r}; "
                             f"expected one of {CACHE_KINDS}")

    def with_overrides(self, **changes) -> "ServeConfig":
        """A copy with some fields replaced (sweeps, ablations)."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """Plain-dict snapshot; round-trips through :meth:`from_dict`."""
        return {
            "requests": self.requests,
            "seed": self.seed,
            "rate_qps": self.rate_qps,
            "cache": self.cache,
            "hot_rows": self.hot_rows,
            "warm_rows": self.warm_rows,
            "max_batch_size": self.max_batch_size,
            "max_wait_s": self.max_wait_s,
            "slo_s": self.slo_s,
            "micro_batch_rows": self.micro_batch_rows,
            "variant": self.variant,
            "replicas": self.replicas,
            "fault_plan": (self.fault_plan.as_dict()
                           if self.fault_plan is not None else None),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ServeConfig":
        """Rebuild a config from :meth:`as_dict` output."""
        known = {spec.name for spec in dataclass_fields(cls)}
        settings = {key: value for key, value in payload.items()
                    if key in known}
        plan = settings.get("fault_plan")
        if isinstance(plan, dict):
            settings["fault_plan"] = FaultPlan.from_dict(plan)
        return cls(**settings)


def serve(config: ServeConfig, tracer=None,
          metrics=None) -> ServingReport:
    """Execute one :class:`ServeConfig`; the serving facade.

    Exactly :func:`run`'s shape on the inference side: every entry
    point (CLI ``serve``, experiments, benches) states *what* to serve
    as data and this function owns the wiring.  With a fault plan the
    returned report carries a ``degraded`` summary from the
    :class:`~repro.faults.degraded.DegradedModeController`.
    """
    return simulate_serving(
        num_requests=config.requests,
        seed=config.seed,
        rate_qps=config.rate_qps,
        cache=config.cache,
        hot_rows=config.hot_rows,
        warm_rows=config.warm_rows,
        max_batch_size=config.max_batch_size,
        max_wait_s=config.max_wait_s,
        slo_s=config.slo_s,
        micro_batch_rows=config.micro_batch_rows,
        variant=config.variant,
        replicas=config.replicas,
        fault_plan=config.fault_plan,
        tracer=tracer,
        metrics=metrics)


@dataclass(frozen=True)
class StreamConfig:
    """A declarative continuous-loop request — the third facade leg.

    Field for field the knobs of
    :func:`~repro.online.loop.simulate_stream`: the serving half reads
    like a :class:`ServeConfig`, the training half configures the
    streaming trainer (step cadence, publish interval, concept drift)
    and the loop half the hot-swap and autoscaling machinery.
    """

    requests: int = 4_000
    seed: int = 0
    rate_qps: float = 20_000.0
    shape: RateShape | None = None
    train_steps: int = 400
    train_step_s: float = 0.001
    train_batch_size: int = 256
    publish_interval: int = 25
    drift_ids_per_step: float = 8.0
    max_chain: int = 8
    load_share: float = 0.1
    snapshot_dir: str | None = None
    cache: str = "hbm-dram"
    hot_rows: int = 4_000
    warm_rows: int = 60_000
    max_batch_size: int = 64
    max_wait_s: float = 0.002
    slo_s: float = 0.02
    micro_batch_rows: int = 16
    autoscale: bool = True
    min_replicas: int = 1
    max_replicas: int = 4
    hot_swaps: bool = True
    variant: str = "wdl"

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.train_steps < 1:
            raise ValueError("train_steps must be >= 1")
        if self.publish_interval < 1:
            raise ValueError("publish_interval must be >= 1")
        if self.cache not in CACHE_KINDS:
            raise ValueError(f"unknown cache {self.cache!r}; "
                             f"expected one of {CACHE_KINDS}")

    def with_overrides(self, **changes) -> "StreamConfig":
        """A copy with some fields replaced (sweeps, ablations)."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """Plain-dict snapshot; round-trips through :meth:`from_dict`."""
        return {
            "requests": self.requests,
            "seed": self.seed,
            "rate_qps": self.rate_qps,
            "shape": (self.shape.as_dict()
                      if self.shape is not None else None),
            "train_steps": self.train_steps,
            "train_step_s": self.train_step_s,
            "train_batch_size": self.train_batch_size,
            "publish_interval": self.publish_interval,
            "drift_ids_per_step": self.drift_ids_per_step,
            "max_chain": self.max_chain,
            "load_share": self.load_share,
            "snapshot_dir": self.snapshot_dir,
            "cache": self.cache,
            "hot_rows": self.hot_rows,
            "warm_rows": self.warm_rows,
            "max_batch_size": self.max_batch_size,
            "max_wait_s": self.max_wait_s,
            "slo_s": self.slo_s,
            "micro_batch_rows": self.micro_batch_rows,
            "autoscale": self.autoscale,
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "hot_swaps": self.hot_swaps,
            "variant": self.variant,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StreamConfig":
        """Rebuild a config from :meth:`as_dict` output."""
        known = {spec.name for spec in dataclass_fields(cls)}
        settings = {key: value for key, value in payload.items()
                    if key in known}
        shape = settings.get("shape")
        if isinstance(shape, dict):
            settings["shape"] = shape_from_dict(shape)
        return cls(**settings)


def stream(config: StreamConfig, tracer=None,
           metrics=None) -> StreamReport:
    """Execute one :class:`StreamConfig`; the continuous-loop facade.

    The train->publish->swap->serve loop of
    :func:`~repro.online.loop.simulate_stream` behind the same
    config-in / report-out contract as :func:`run` and :func:`serve`.
    """
    return simulate_stream(
        num_requests=config.requests,
        seed=config.seed,
        rate_qps=config.rate_qps,
        shape=config.shape,
        train_steps=config.train_steps,
        train_step_s=config.train_step_s,
        train_batch_size=config.train_batch_size,
        publish_interval=config.publish_interval,
        drift_ids_per_step=config.drift_ids_per_step,
        max_chain=config.max_chain,
        load_share=config.load_share,
        snapshot_dir=config.snapshot_dir,
        cache=config.cache,
        hot_rows=config.hot_rows,
        warm_rows=config.warm_rows,
        max_batch_size=config.max_batch_size,
        max_wait_s=config.max_wait_s,
        slo_s=config.slo_s,
        micro_batch_rows=config.micro_batch_rows,
        autoscale=config.autoscale,
        min_replicas=config.min_replicas,
        max_replicas=config.max_replicas,
        hot_swaps=config.hot_swaps,
        variant=config.variant,
        tracer=tracer,
        metrics=metrics)


@dataclass(frozen=True)
class ProfileResult:
    """A profiled run: the report plus its telemetry products.

    ``monitors`` maps monitor name (``pulse``, ``overlap``) to its
    :class:`~repro.telemetry.MonitorReport`; any alerts the monitors
    raised are also embedded in ``trace`` as instant events on the
    ``alerts`` track.
    """

    report: RunReport
    critical_path: CriticalPathReport
    trace: dict  # Chrome-trace payload (chrome://tracing / Perfetto)
    monitors: dict = field(default_factory=dict)


def profile(config: RunConfig, model: ModelSpec | None = None,
            top_k: int = 10) -> ProfileResult:
    """Run with telemetry on and analyze the result in one call.

    The returned trace payload, critical-path report and health
    monitors are pure functions of the modeled run, so two profiles of
    the same config serialize byte-identically.
    """
    config = replace(config, record_tasks=True)
    report = run(config, model=model)
    result = report.result
    critical = analyze_critical_path(result.task_records,
                                     result.makespan, top_k=top_k)
    monitors = {}
    pulse = PulseDetector()
    monitors[pulse.name] = pulse.analyze(result.recorder, result.makespan)
    overlap = OverlapMonitor()
    monitors[overlap.name] = overlap.analyze(
        result.recorder, result.makespan, records=result.task_records)
    if config.fault_plan is not None and len(config.fault_plan):
        # The injected schedule lands on the alert track so the trace
        # shows *why* utilization dipped where it did.
        monitors["faults"] = plan_report(config.fault_plan)
    tracer = Tracer(clock=ManualClock())
    emit_alerts(tracer, monitors.values())
    trace = chrome_trace(records=result.task_records,
                         tracer=tracer,
                         recorder=result.recorder,
                         makespan=result.makespan,
                         metadata={"workload": config.as_dict(),
                                   "report_name": report.name})
    return ProfileResult(report=report, critical_path=critical,
                         trace=trace, monitors=monitors)
