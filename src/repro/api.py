"""The public run/serve facade: one config in, one report out.

Every entry point that simulates a workload — the CLI, the experiment
harnesses, the benchmark suite — used to carry its own model-building
/ cluster-parsing / framework-dispatch helpers.  This module is the
single replacement:

* :class:`RunConfig` names a training workload declaratively (model,
  dataset, cluster spec, framework, batch geometry, optional
  :class:`~repro.faults.plan.FaultPlan`);
* :func:`run` resolves it through the framework registry and returns
  the usual :class:`~repro.core.executor.RunReport`;
* :class:`ServeConfig` / :func:`serve` are the serving-side mirror,
  wrapping :func:`~repro.serving.server.simulate_serving`;
* :class:`StreamConfig` / :func:`stream` close the loop: continuous
  training with delta-snapshot publishes hot-swapped into serving,
  wrapping :func:`~repro.online.loop.simulate_stream`;
* :class:`TuneConfig` / :func:`tune` are the fourth leg: a
  trace-driven what-if search (:mod:`repro.tuning`) over PICASSO's
  knobs, validated with real runs and reported with its
  predicted-vs-actual fidelity;
* :func:`profile` runs with telemetry on, returning the report plus a
  ready :class:`~repro.telemetry.CriticalPathReport` and Chrome-trace
  payload.

All configs share the :class:`~repro.config_base.ConfigBase` contract:
``with_overrides`` re-validates through ``__post_init__``, and
``as_dict``/``from_dict`` round-trip losslessly with unknown keys
rejected.

Framework dispatch is an open registry: :func:`register_framework`
binds a name to a runner callable, and ``api.FRAMEWORKS`` reflects
whatever is currently registered (the paper's six frameworks ship
built in).  Cluster specs are strings like ``eflops:16`` / ``gn6e:1``
(or an already-built :class:`~repro.hardware.topology.ClusterSpec`),
matching the paper's two testbeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines import framework_by_name
from repro.config_base import ConfigBase, codec, dict_codec
from repro.core import PicassoConfig, PicassoExecutor
from repro.core.executor import RunReport, per_iteration_seconds
from repro.data import ALL_DATASETS
from repro.faults.monitor import plan_report
from repro.faults.plan import FaultPlan
from repro.hardware import eflops_cluster, gn6e_cluster
from repro.hardware.topology import ClusterSpec
from repro.models import MODEL_BUILDERS
from repro.models.base import ModelSpec
from repro.online.loop import StreamReport, simulate_stream
from repro.prefetch import PrefetchConfig
from repro.replay import WAIT_MODELS
from repro.serving.metrics import ServingReport
from repro.serving.server import CACHE_KINDS, simulate_serving
from repro.serving.traffic import RateShape, shape_from_dict
from repro.sim import FrozenTrace
from repro.telemetry import (
    CriticalPathReport,
    OverlapMonitor,
    PrefetchMonitor,
    PulseDetector,
    Tracer,
    analyze_critical_path,
    chrome_trace,
    emit_alerts,
)
from repro.telemetry.span import ManualClock
from repro.telemetry.provenance import build_manifest
from repro.tuning import (
    KnobSpace,
    ReplayPredictor,
    SearchContext,
    default_space,
    strategy as tuning_strategy,
)

#: name -> runner ``(config, model, cluster) -> RunReport``.
_FRAMEWORK_REGISTRY: dict = {}


def register_framework(name: str, runner, overwrite: bool = False) -> None:
    """Bind a framework name to a runner :func:`run` dispatches to.

    :param runner: callable ``(config, model, cluster) -> RunReport``
        receiving the full :class:`RunConfig`, the built
        :class:`~repro.models.base.ModelSpec` and the resolved
        :class:`ClusterSpec`.
    :param overwrite: allow rebinding an existing name (plug-in
        frameworks shadowing a built-in must opt in explicitly).
    """
    if not name:
        raise ValueError("framework name must be non-empty")
    if not callable(runner):
        raise TypeError(f"runner for {name!r} is not callable")
    if name in _FRAMEWORK_REGISTRY and not overwrite:
        raise ValueError(f"framework {name!r} already registered; "
                         "pass overwrite=True to replace it")
    _FRAMEWORK_REGISTRY[name] = runner


def frameworks() -> tuple:
    """Currently registered framework names, in registration order."""
    return tuple(_FRAMEWORK_REGISTRY)


def framework_runner(name: str):
    """The registered runner for ``name`` (ValueError with choices)."""
    try:
        return _FRAMEWORK_REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown framework {name!r}; "
                         f"expected one of {frameworks()}") from None


def __getattr__(name: str):
    # ``api.FRAMEWORKS`` predates the registry; keep it as a dynamic
    # view so plug-in registrations show up in old call sites too.
    if name == "FRAMEWORKS":
        return frameworks()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def parse_cluster(spec) -> ClusterSpec:
    """Resolve ``eflops:N`` / ``gn6e:N`` specs (pass-through for built).

    Names are case-insensitive — ``RunConfig.as_dict`` snapshots emit
    the cluster's display name (``EFLOPS:2``) and must parse back.
    Raises :class:`ValueError` for unknown testbed names.
    """
    if isinstance(spec, ClusterSpec):
        return spec
    name, _, count = str(spec).partition(":")
    name = name.lower()
    nodes = int(count) if count else 1
    if name == "eflops":
        return eflops_cluster(nodes)
    if name == "gn6e":
        return gn6e_cluster(nodes)
    raise ValueError(f"unknown cluster {name!r}; expected eflops|gn6e")


def _encode_cluster(spec) -> str:
    cluster = parse_cluster(spec)
    return f"{cluster.name}:{cluster.num_nodes}"


#: Process-wide memos for the facade's deterministic spec builders.
_MODEL_CACHE: dict = {}
_CLUSTER_CACHE: dict = {}


@dataclass(frozen=True)
class RunConfig(ConfigBase):
    """A declarative simulation request (the CLI's flags, as data).

    :param cluster: ``eflops:N`` / ``gn6e:N`` string or a built
        :class:`ClusterSpec`.
    :param picasso: optimization toggles for the ``PICASSO`` framework;
        ignored by the baselines (``PICASSO(Base)`` always runs with
        everything off).
    :param record_tasks: collect per-task telemetry
        (:class:`~repro.sim.trace.TaskRecord`) during the run.
    :param fault_plan: optional :class:`~repro.faults.plan.FaultPlan`
        injected into the simulation (crashes kill in-flight work,
        stragglers/link faults scale capacity).
    :param prefetch: optional
        :class:`~repro.prefetch.PrefetchConfig`; for the ``PICASSO``
        framework its knobs override the equivalent
        ``picasso.prefetch_*`` fields, turning on the hot/cold
        lookahead pipeline.  Ignored by the baselines.
    """

    model: str = "W&D"
    dataset: str = "Product-1"
    scale: float = 1.0
    cluster: object = "eflops:16"
    framework: str = "PICASSO"
    batch_size: int = 20_000
    iterations: int = 3
    picasso: PicassoConfig | None = None
    record_tasks: bool = False
    fault_plan: FaultPlan | None = None
    prefetch: PrefetchConfig | None = None

    _FIELD_CODECS = {
        "cluster": codec(_encode_cluster, lambda value: value),
        "picasso": dict_codec(PicassoConfig),
        "fault_plan": dict_codec(FaultPlan),
        "prefetch": dict_codec(PrefetchConfig),
    }

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be > 0, got {self.scale}")
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.iterations < 1:
            raise ValueError(
                f"iterations must be >= 1, got {self.iterations}")

    def resolved_cluster(self) -> ClusterSpec:
        """The cluster this config runs on."""
        if isinstance(self.cluster, str):
            cached = _CLUSTER_CACHE.get(self.cluster)
            if cached is None:
                cached = parse_cluster(self.cluster)
                _CLUSTER_CACHE[self.cluster] = cached
            return cached
        return parse_cluster(self.cluster)

    def build_model(self) -> ModelSpec:
        """Instantiate the model over the (scaled) dataset.

        Model and dataset specs are immutable and their construction is
        deterministic, so results are memoized process-wide — sweeps
        and benchmark loops re-requesting the same workload share one
        spec.

        Raises :class:`KeyError`-flavoured :class:`ValueError` for
        unknown model or dataset names, listing the valid choices.
        """
        key = (self.model, self.dataset, self.scale)
        cached = _MODEL_CACHE.get(key)
        if cached is not None:
            return cached
        if self.model not in MODEL_BUILDERS:
            raise ValueError(
                f"unknown model {self.model!r}; "
                f"expected one of {sorted(MODEL_BUILDERS)}")
        if self.dataset not in ALL_DATASETS:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; "
                f"expected one of {list(ALL_DATASETS)}")
        dataset = ALL_DATASETS[self.dataset](self.scale)
        model = MODEL_BUILDERS[self.model](dataset)
        if len(_MODEL_CACHE) >= 128:
            _MODEL_CACHE.clear()
        _MODEL_CACHE[key] = model
        return model


def _run_picasso(config: RunConfig, model: ModelSpec,
                 cluster: ClusterSpec) -> RunReport:
    picasso = config.picasso
    if config.prefetch is not None:
        # The facade-level PrefetchConfig wins over (and fills in) the
        # equivalent PicassoConfig knobs.
        picasso = (picasso or PicassoConfig()).with_overrides(
            prefetch_lookahead=config.prefetch.lookahead_depth,
            prefetch_hot_threshold=config.prefetch.hot_threshold,
            prefetch_inflight_bytes=config.prefetch.max_inflight_bytes,
            prefetch_policy=config.prefetch.policy)
    executor = PicassoExecutor(model, cluster, picasso)
    return executor.run(config.batch_size,
                        iterations=config.iterations,
                        record_tasks=config.record_tasks,
                        fault_plan=config.fault_plan)


def _run_picasso_base(config: RunConfig, model: ModelSpec,
                      cluster: ClusterSpec) -> RunReport:
    executor = PicassoExecutor(model, cluster, PicassoConfig.base())
    return executor.run(config.batch_size,
                        iterations=config.iterations,
                        record_tasks=config.record_tasks,
                        fault_plan=config.fault_plan)


def _baseline_runner(name: str):
    def runner(config: RunConfig, model: ModelSpec,
               cluster: ClusterSpec) -> RunReport:
        return framework_by_name(name).run(
            model, cluster, config.batch_size,
            iterations=config.iterations,
            record_tasks=config.record_tasks,
            fault_plan=config.fault_plan)
    return runner


register_framework("PICASSO", _run_picasso)
register_framework("PICASSO(Base)", _run_picasso_base)
for _baseline in ("TF-PS", "PyTorch", "Horovod", "XDL"):
    register_framework(_baseline, _baseline_runner(_baseline))
del _baseline


def run(config: RunConfig, model: ModelSpec | None = None) -> RunReport:
    """Execute one :class:`RunConfig`; the repo-wide simulation facade.

    Dispatch goes only through the framework registry — built-ins and
    :func:`register_framework` plug-ins are indistinguishable here.

    :param model: an already-built model to reuse (sweeps that vary
        only the framework or batch size skip dataset rebuilding);
        defaults to ``config.build_model()``.
    """
    runner = framework_runner(config.framework)
    model = model if model is not None else config.build_model()
    report = runner(config, model, config.resolved_cluster())
    result = getattr(report, "result", None)
    if result is not None and hasattr(result, "provenance"):
        result.provenance = run_manifest(config, report.name)
    return report


def run_manifest(config: RunConfig, report_name: str = "",
                 kind: str = "run") -> dict:
    """The provenance manifest dict for one :class:`RunConfig` run."""
    knobs = config.picasso.as_dict() if config.picasso else {}
    extra = {"report_name": report_name} if report_name else {}
    return build_manifest(kind=kind, config=config.as_dict(),
                          knobs=knobs, extra=extra).as_dict()


@dataclass(frozen=True)
class ServeConfig(ConfigBase):
    """A declarative serving request — :class:`RunConfig`'s mirror.

    Field for field the knobs of
    :func:`~repro.serving.server.simulate_serving`, plus the
    fault-tolerance pair (``replicas`` + ``fault_plan``): crash events
    in the plan take replicas down over their windows, and
    :func:`serve` responds with degraded-mode admission tightening
    instead of an outage.
    """

    requests: int = 10_000
    seed: int = 0
    rate_qps: float = 20_000.0
    cache: str = "hbm-dram"
    hot_rows: int = 4_000
    warm_rows: int = 60_000
    max_batch_size: int = 64
    max_wait_s: float = 0.002
    slo_s: float = 0.02
    micro_batch_rows: int = 16
    variant: str = "wdl"
    replicas: int = 1
    fault_plan: FaultPlan | None = None
    prefetch: PrefetchConfig | None = None

    _FIELD_CODECS = {
        "fault_plan": dict_codec(FaultPlan),
        "prefetch": dict_codec(PrefetchConfig),
    }

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.cache not in CACHE_KINDS:
            raise ValueError(f"unknown cache {self.cache!r}; "
                             f"expected one of {CACHE_KINDS}")


def serve(config: ServeConfig, tracer=None,
          metrics=None, flight=None) -> ServingReport:
    """Execute one :class:`ServeConfig`; the serving facade.

    Exactly :func:`run`'s shape on the inference side: every entry
    point (CLI ``serve``, experiments, benches) states *what* to serve
    as data and this function owns the wiring.  With a fault plan the
    returned report carries a ``degraded`` summary from the
    :class:`~repro.faults.degraded.DegradedModeController`.

    :param flight: optional :class:`~repro.telemetry.FlightRecorder`;
        batch spans and shed alerts land in its ring.
    """
    return simulate_serving(
        num_requests=config.requests,
        seed=config.seed,
        rate_qps=config.rate_qps,
        cache=config.cache,
        hot_rows=config.hot_rows,
        warm_rows=config.warm_rows,
        max_batch_size=config.max_batch_size,
        max_wait_s=config.max_wait_s,
        slo_s=config.slo_s,
        micro_batch_rows=config.micro_batch_rows,
        variant=config.variant,
        replicas=config.replicas,
        fault_plan=config.fault_plan,
        tracer=tracer,
        metrics=metrics,
        flight=flight,
        prefetch=config.prefetch)


@dataclass(frozen=True)
class StreamConfig(ConfigBase):
    """A declarative continuous-loop request — the third facade leg.

    Field for field the knobs of
    :func:`~repro.online.loop.simulate_stream`: the serving half reads
    like a :class:`ServeConfig`, the training half configures the
    streaming trainer (step cadence, publish interval, concept drift)
    and the loop half the hot-swap and autoscaling machinery.
    """

    requests: int = 4_000
    seed: int = 0
    rate_qps: float = 20_000.0
    shape: RateShape | None = None
    train_steps: int = 400
    train_step_s: float = 0.001
    train_batch_size: int = 256
    publish_interval: int = 25
    drift_ids_per_step: float = 8.0
    max_chain: int = 8
    load_share: float = 0.1
    snapshot_dir: str | None = None
    cache: str = "hbm-dram"
    hot_rows: int = 4_000
    warm_rows: int = 60_000
    max_batch_size: int = 64
    max_wait_s: float = 0.002
    slo_s: float = 0.02
    micro_batch_rows: int = 16
    autoscale: bool = True
    min_replicas: int = 1
    max_replicas: int = 4
    hot_swaps: bool = True
    variant: str = "wdl"
    prefetch: PrefetchConfig | None = None

    _FIELD_CODECS = {
        "shape": codec(lambda value: value.as_dict(),
                       lambda value: shape_from_dict(value)
                       if isinstance(value, dict) else value),
        "prefetch": dict_codec(PrefetchConfig),
    }

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.train_steps < 1:
            raise ValueError("train_steps must be >= 1")
        if self.publish_interval < 1:
            raise ValueError("publish_interval must be >= 1")
        if self.cache not in CACHE_KINDS:
            raise ValueError(f"unknown cache {self.cache!r}; "
                             f"expected one of {CACHE_KINDS}")


def stream(config: StreamConfig, tracer=None,
           metrics=None, flight=None) -> StreamReport:
    """Execute one :class:`StreamConfig`; the continuous-loop facade.

    The train->publish->swap->serve loop of
    :func:`~repro.online.loop.simulate_stream` behind the same
    config-in / report-out contract as :func:`run` and :func:`serve`.
    Every snapshot the loop publishes carries this config's provenance
    manifest, so hot-swapped serving versions trace back to the run.

    :param flight: optional :class:`~repro.telemetry.FlightRecorder`
        shared by the trainer and the swap/shed paths.
    """
    return simulate_stream(
        num_requests=config.requests,
        seed=config.seed,
        rate_qps=config.rate_qps,
        shape=config.shape,
        train_steps=config.train_steps,
        train_step_s=config.train_step_s,
        train_batch_size=config.train_batch_size,
        publish_interval=config.publish_interval,
        drift_ids_per_step=config.drift_ids_per_step,
        max_chain=config.max_chain,
        load_share=config.load_share,
        snapshot_dir=config.snapshot_dir,
        cache=config.cache,
        hot_rows=config.hot_rows,
        warm_rows=config.warm_rows,
        max_batch_size=config.max_batch_size,
        max_wait_s=config.max_wait_s,
        slo_s=config.slo_s,
        micro_batch_rows=config.micro_batch_rows,
        autoscale=config.autoscale,
        min_replicas=config.min_replicas,
        max_replicas=config.max_replicas,
        hot_swaps=config.hot_swaps,
        variant=config.variant,
        tracer=tracer,
        metrics=metrics,
        flight=flight,
        provenance=build_manifest(
            kind="stream", config=config.as_dict()).as_dict(),
        prefetch=config.prefetch)


@dataclass(frozen=True)
class TuneConfig(ConfigBase):
    """A declarative auto-tuning request — the fourth facade leg.

    :param run: the baseline workload to tune; must target the
        ``PICASSO`` framework (the knobs are PICASSO's).
    :param strategy: registered search strategy name
        (``coordinate-descent``, ``successive-halving``,
        ``warmup-grid``, or a :func:`repro.tuning.register_strategy`
        plug-in).
    :param top_k: how many distinct top-ranked candidates to validate
        with real runs before crowning a winner.
    :param knobs: the :class:`~repro.tuning.KnobSpace` to search, or
        ``None`` for :func:`~repro.tuning.default_space`.
    :param trace_path: replay an existing saved
        :class:`~repro.sim.FrozenTrace` instead of recording a fresh
        baseline run.
    :param wait_model: how replay re-derives queue waits (see
        :data:`repro.replay.WAIT_MODELS`).
    :param shrink_credit: the predictor's damping exponent for work
        reductions (see :class:`~repro.tuning.ReplayPredictor`).
    :param diversity_cap: at most this many validation slots may share
        the same non-default value of any one knob, so a knob the
        predictor is systematically wrong about cannot monopolize the
        validated set.
    :param options: strategy-specific tunables, passed through to the
        :class:`~repro.tuning.SearchContext`.
    """

    run: RunConfig = field(default_factory=RunConfig)
    strategy: str = "coordinate-descent"
    top_k: int = 3
    knobs: KnobSpace | None = None
    trace_path: str | None = None
    wait_model: str = "congestion"
    shrink_credit: float = 0.5
    diversity_cap: int = 2
    options: dict = field(default_factory=dict)

    _FIELD_CODECS = {
        "run": dict_codec(RunConfig),
        "knobs": dict_codec(KnobSpace),
    }

    def __post_init__(self) -> None:
        if not self.strategy:
            raise ValueError("strategy must be non-empty")
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        if self.wait_model not in WAIT_MODELS:
            raise ValueError(
                f"unknown wait_model {self.wait_model!r}; "
                f"expected one of {WAIT_MODELS}")
        if not 0.0 < self.shrink_credit <= 1.0:
            raise ValueError(
                f"shrink_credit must be in (0, 1], "
                f"got {self.shrink_credit}")
        if self.diversity_cap < 1:
            raise ValueError(
                f"diversity_cap must be >= 1, "
                f"got {self.diversity_cap}")


@dataclass(frozen=True)
class CandidateValidation:
    """One top-k candidate's predicted-vs-actual comparison."""

    assignment: dict
    predicted_ips: float
    measured_ips: float
    source: str = "replay"

    @property
    def error(self) -> float:
        """Signed relative prediction error vs the real run."""
        if self.measured_ips == 0:
            return float("inf")
        return (self.predicted_ips - self.measured_ips) \
            / self.measured_ips

    def as_dict(self) -> dict:
        return {"assignment": dict(self.assignment),
                "predicted_ips": self.predicted_ips,
                "measured_ips": self.measured_ips,
                "error": self.error,
                "source": self.source}


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one :func:`tune` session: winner plus fidelity.

    ``best_config`` embeds the winning knob assignment as its
    ``picasso`` field; when no validated candidate beats the baseline
    (``improved`` is False) it is the baseline config unchanged and
    the winner metrics collapse onto the baseline's.
    """

    best_config: RunConfig
    best_assignment: dict
    base_ips: float
    best_ips: float
    predicted_ips: float
    validations: tuple
    strategy: str
    candidates_evaluated: int
    improved: bool

    @property
    def gain(self) -> float:
        """Relative throughput gain of the winner over the baseline."""
        if self.base_ips == 0:
            return 0.0
        return self.best_ips / self.base_ips - 1.0

    @property
    def fidelity_error(self) -> float:
        """Signed relative replay-prediction error on the winner."""
        if self.best_ips == 0:
            return float("inf")
        return (self.predicted_ips - self.best_ips) / self.best_ips

    def as_dict(self) -> dict:
        return {
            "best_config": self.best_config.as_dict(),
            "best_assignment": dict(self.best_assignment),
            "base_ips": self.base_ips,
            "best_ips": self.best_ips,
            "predicted_ips": self.predicted_ips,
            "gain": self.gain,
            "fidelity_error": self.fidelity_error,
            "validations": [entry.as_dict()
                            for entry in self.validations],
            "strategy": self.strategy,
            "candidates_evaluated": self.candidates_evaluated,
            "improved": self.improved,
        }


def _trace_ips(records, makespan: float, batch_size: int,
               iterations: int) -> float:
    """The recorded run's ips, recomputed from its own markers."""
    first_end = 0.0
    for record in records:
        if record.name == "it0/step_end":
            first_end = record.end
            break
    per_iteration = per_iteration_seconds(makespan, first_end,
                                          iterations)
    return batch_size / per_iteration


def _select_diverse(ranked, space: KnobSpace,
                    base_picasso: PicassoConfig, top_k: int,
                    cap: int) -> list:
    """Pick ``top_k`` validation candidates, best-predicted first,
    letting at most ``cap`` of them share any one non-default knob
    value.

    Per-class work-ratio replay is blind to knobs that only
    restructure the DAG, and systematically optimistic about others;
    without this rule one mispredicted knob value (say
    ``micro_batches=1``) can fill every validation slot and the true
    winner never gets measured.  Values equal to the base config's
    default are exempt — "unchanged" is not a diversity axis.
    """
    counts: dict = {}
    selected: list = []
    for candidate in ranked:
        effective = {
            knob.name: candidate.assignment.get(
                knob.name, getattr(base_picasso, knob.name))
            for knob in space}
        blocked = any(
            counts.get((name, value), 0) >= cap
            for name, value in effective.items()
            if value != getattr(base_picasso, name))
        if blocked:
            continue
        selected.append(candidate)
        for name, value in effective.items():
            counts[(name, value)] = counts.get((name, value), 0) + 1
        if len(selected) == top_k:
            break
    return selected


def tune(config: TuneConfig,
         model: ModelSpec | None = None) -> TuneResult:
    """Search PICASSO's knob space by what-if replay, then validate.

    Records (or loads) a baseline trace, prices every candidate the
    strategy proposes by replaying that trace under per-class
    work-ratio cost hooks, validates the ``top_k`` best predictions
    (diversity-capped, see :class:`TuneConfig`) with real :func:`run`
    executions, and crowns the best *measured* one — so a replay
    misprediction costs a validation slot, never a wrong winner among
    the validated set.
    """
    base = config.run
    if base.framework != "PICASSO":
        raise ValueError(
            f"tune() searches PICASSO knobs; config.run.framework is "
            f"{base.framework!r}")
    model = model if model is not None else base.build_model()
    cluster = base.resolved_cluster()
    base_picasso = base.picasso or PicassoConfig()

    if config.trace_path is not None:
        trace = FrozenTrace.load(config.trace_path)
        records, makespan = trace.records, trace.makespan
        base_ips = _trace_ips(records, makespan, base.batch_size,
                              base.iterations)
    else:
        report = run(base.with_overrides(record_tasks=True),
                     model=model)
        records = report.result.task_records
        base_ips = report.ips

    predictor = ReplayPredictor(
        model, cluster, base.batch_size, base.iterations, records,
        base_picasso=base_picasso, wait_model=config.wait_model,
        shrink_credit=config.shrink_credit)
    space = config.knobs if config.knobs is not None else default_space()
    ctx = SearchContext(predictor=predictor, space=space,
                        base=base_picasso,
                        options=dict(config.options))
    ranked = tuning_strategy(config.strategy)(ctx)
    if not ranked:
        raise ValueError(
            f"strategy {config.strategy!r} produced no candidates")

    shortlist = _select_diverse(ranked, space, base_picasso,
                                config.top_k, config.diversity_cap)
    validations = []
    best_candidate = None
    best_validation = None
    for candidate in shortlist:
        measured = run(base.with_overrides(picasso=candidate.picasso),
                       model=model)
        validation = CandidateValidation(
            assignment=dict(candidate.assignment),
            predicted_ips=candidate.predicted_ips,
            measured_ips=measured.ips,
            source=candidate.source)
        validations.append(validation)
        if (best_validation is None
                or measured.ips > best_validation.measured_ips):
            best_candidate, best_validation = candidate, validation

    improved = best_validation.measured_ips > base_ips
    if improved:
        best_config = base.with_overrides(
            picasso=best_candidate.picasso)
        best_assignment = dict(best_candidate.assignment)
        best_ips = best_validation.measured_ips
        predicted_ips = best_validation.predicted_ips
    else:
        best_config = base
        best_assignment = {}
        best_ips = base_ips
        predicted_ips = base_ips
    return TuneResult(
        best_config=best_config,
        best_assignment=best_assignment,
        base_ips=base_ips,
        best_ips=best_ips,
        predicted_ips=predicted_ips,
        validations=tuple(validations),
        strategy=config.strategy,
        candidates_evaluated=len(ranked),
        improved=improved)


@dataclass(frozen=True)
class ProfileResult:
    """A profiled run: the report plus its telemetry products.

    ``monitors`` maps monitor name (``pulse``, ``overlap``) to its
    :class:`~repro.telemetry.MonitorReport`; any alerts the monitors
    raised are also embedded in ``trace`` as instant events on the
    ``alerts`` track.
    """

    report: RunReport
    critical_path: CriticalPathReport
    trace: dict  # Chrome-trace payload (chrome://tracing / Perfetto)
    monitors: dict = field(default_factory=dict)


def profile(config: RunConfig, model: ModelSpec | None = None,
            top_k: int = 10) -> ProfileResult:
    """Run with telemetry on and analyze the result in one call.

    The returned trace payload, critical-path report and health
    monitors are pure functions of the modeled run, so two profiles of
    the same config serialize byte-identically.
    """
    config = replace(config, record_tasks=True)
    report = run(config, model=model)
    result = report.result
    critical = analyze_critical_path(result.task_records,
                                     result.makespan, top_k=top_k)
    monitors = {}
    pulse = PulseDetector()
    monitors[pulse.name] = pulse.analyze(result.recorder, result.makespan)
    overlap = OverlapMonitor()
    monitors[overlap.name] = overlap.analyze(
        result.recorder, result.makespan, records=result.task_records)
    if any(r.tags.get("layer") == "prefetch" for r in result.task_records):
        # Only present when the run actually staged batches: a profile
        # of a prefetch-off config stays byte-identical to before.
        prefetch = PrefetchMonitor()
        monitors[prefetch.name] = prefetch.analyze(
            result.recorder, result.makespan, records=result.task_records)
    if config.fault_plan is not None and len(config.fault_plan):
        # The injected schedule lands on the alert track so the trace
        # shows *why* utilization dipped where it did.
        monitors["faults"] = plan_report(config.fault_plan)
    tracer = Tracer(clock=ManualClock())
    emit_alerts(tracer, monitors.values())
    trace = chrome_trace(records=result.task_records,
                         tracer=tracer,
                         recorder=result.recorder,
                         makespan=result.makespan,
                         metadata={"workload": config.as_dict(),
                                   "report_name": report.name,
                                   "provenance": run_manifest(
                                       config, report.name,
                                       kind="profile")})
    return ProfileResult(report=report, critical_path=critical,
                         trace=trace, monitors=monitors)
