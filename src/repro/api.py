"""The public run facade: one config in, one report out.

Every entry point that simulates a training workload — the CLI, the
experiment harnesses, the benchmark suite — used to carry its own
model-building / cluster-parsing / framework-dispatch helpers.  This
module is the single replacement:

* :class:`RunConfig` names a workload declaratively (model, dataset,
  cluster spec, framework, batch geometry);
* :func:`run` resolves it and returns the usual
  :class:`~repro.core.executor.RunReport`;
* :func:`profile` does the same with telemetry on, returning the
  report plus a ready :class:`~repro.telemetry.CriticalPathReport`
  and Chrome-trace payload.

Cluster specs are strings like ``eflops:16`` / ``gn6e:1`` (or an
already-built :class:`~repro.hardware.topology.ClusterSpec`), matching
the paper's two testbeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines import framework_by_name
from repro.core import PicassoConfig, PicassoExecutor
from repro.core.executor import RunReport
from repro.data import ALL_DATASETS
from repro.hardware import eflops_cluster, gn6e_cluster
from repro.hardware.topology import ClusterSpec
from repro.models import MODEL_BUILDERS
from repro.models.base import ModelSpec
from repro.telemetry import (
    CriticalPathReport,
    OverlapMonitor,
    PulseDetector,
    Tracer,
    analyze_critical_path,
    chrome_trace,
    emit_alerts,
)
from repro.telemetry.span import ManualClock

#: Framework names :func:`run` dispatches on.
FRAMEWORKS = ("PICASSO", "PICASSO(Base)", "TF-PS", "PyTorch", "Horovod",
              "XDL")


def parse_cluster(spec) -> ClusterSpec:
    """Resolve ``eflops:N`` / ``gn6e:N`` specs (pass-through for built).

    Raises :class:`ValueError` for unknown testbed names.
    """
    if isinstance(spec, ClusterSpec):
        return spec
    name, _, count = str(spec).partition(":")
    nodes = int(count) if count else 1
    if name == "eflops":
        return eflops_cluster(nodes)
    if name == "gn6e":
        return gn6e_cluster(nodes)
    raise ValueError(f"unknown cluster {name!r}; expected eflops|gn6e")


@dataclass(frozen=True)
class RunConfig:
    """A declarative simulation request (the CLI's flags, as data).

    :param cluster: ``eflops:N`` / ``gn6e:N`` string or a built
        :class:`ClusterSpec`.
    :param picasso: optimization toggles for the ``PICASSO`` framework;
        ignored by the baselines (``PICASSO(Base)`` always runs with
        everything off).
    :param record_tasks: collect per-task telemetry
        (:class:`~repro.sim.trace.TaskRecord`) during the run.
    """

    model: str = "W&D"
    dataset: str = "Product-1"
    scale: float = 1.0
    cluster: object = "eflops:16"
    framework: str = "PICASSO"
    batch_size: int = 20_000
    iterations: int = 3
    picasso: PicassoConfig | None = None
    record_tasks: bool = False

    def resolved_cluster(self) -> ClusterSpec:
        """The cluster this config runs on."""
        return parse_cluster(self.cluster)

    def build_model(self) -> ModelSpec:
        """Instantiate the model over the (scaled) dataset.

        Raises :class:`KeyError`-flavoured :class:`ValueError` for
        unknown model or dataset names, listing the valid choices.
        """
        if self.model not in MODEL_BUILDERS:
            raise ValueError(
                f"unknown model {self.model!r}; "
                f"expected one of {sorted(MODEL_BUILDERS)}")
        if self.dataset not in ALL_DATASETS:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; "
                f"expected one of {list(ALL_DATASETS)}")
        dataset = ALL_DATASETS[self.dataset](self.scale)
        return MODEL_BUILDERS[self.model](dataset)

    def with_overrides(self, **changes) -> "RunConfig":
        """A copy with some fields replaced (sweeps, ablations)."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """Plain-dict snapshot (trace metadata, logs)."""
        cluster = self.resolved_cluster()
        return {
            "model": self.model,
            "dataset": self.dataset,
            "scale": self.scale,
            "cluster": f"{cluster.name}:{cluster.num_nodes}",
            "framework": self.framework,
            "batch_size": self.batch_size,
            "iterations": self.iterations,
            "record_tasks": self.record_tasks,
        }


def run(config: RunConfig, model: ModelSpec | None = None) -> RunReport:
    """Execute one :class:`RunConfig`; the repo-wide simulation facade.

    :param model: an already-built model to reuse (sweeps that vary
        only the framework or batch size skip dataset rebuilding);
        defaults to ``config.build_model()``.
    """
    if config.framework not in FRAMEWORKS:
        raise ValueError(f"unknown framework {config.framework!r}; "
                         f"expected one of {FRAMEWORKS}")
    model = model if model is not None else config.build_model()
    cluster = config.resolved_cluster()
    if config.framework == "PICASSO":
        executor = PicassoExecutor(model, cluster, config.picasso)
        return executor.run(config.batch_size,
                            iterations=config.iterations,
                            record_tasks=config.record_tasks)
    if config.framework == "PICASSO(Base)":
        executor = PicassoExecutor(model, cluster, PicassoConfig.base())
        return executor.run(config.batch_size,
                            iterations=config.iterations,
                            record_tasks=config.record_tasks)
    return framework_by_name(config.framework).run(
        model, cluster, config.batch_size,
        iterations=config.iterations,
        record_tasks=config.record_tasks)


@dataclass(frozen=True)
class ProfileResult:
    """A profiled run: the report plus its telemetry products.

    ``monitors`` maps monitor name (``pulse``, ``overlap``) to its
    :class:`~repro.telemetry.MonitorReport`; any alerts the monitors
    raised are also embedded in ``trace`` as instant events on the
    ``alerts`` track.
    """

    report: RunReport
    critical_path: CriticalPathReport
    trace: dict  # Chrome-trace payload (chrome://tracing / Perfetto)
    monitors: dict = field(default_factory=dict)


def profile(config: RunConfig, model: ModelSpec | None = None,
            top_k: int = 10) -> ProfileResult:
    """Run with telemetry on and analyze the result in one call.

    The returned trace payload, critical-path report and health
    monitors are pure functions of the modeled run, so two profiles of
    the same config serialize byte-identically.
    """
    config = replace(config, record_tasks=True)
    report = run(config, model=model)
    result = report.result
    critical = analyze_critical_path(result.task_records,
                                     result.makespan, top_k=top_k)
    monitors = {}
    pulse = PulseDetector()
    monitors[pulse.name] = pulse.analyze(result.recorder, result.makespan)
    overlap = OverlapMonitor()
    monitors[overlap.name] = overlap.analyze(
        result.recorder, result.makespan, records=result.task_records)
    tracer = Tracer(clock=ManualClock())
    emit_alerts(tracer, monitors.values())
    trace = chrome_trace(records=result.task_records,
                         tracer=tracer,
                         recorder=result.recorder,
                         makespan=result.makespan,
                         metadata={"workload": config.as_dict(),
                                   "report_name": report.name})
    return ProfileResult(report=report, critical_path=critical,
                         trace=trace, monitors=monitors)
