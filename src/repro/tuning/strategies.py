"""Search strategies driving the what-if replayer.

A strategy is a callable ``(ctx: SearchContext) -> list[Candidate]``
returning candidates ranked best-first by its own belief; the
:func:`repro.api.tune` loop then validates the top few with real runs
and crowns the best *measured* one.  Strategies register themselves in
an open registry (:func:`register_strategy`) mirroring the framework
registry in :mod:`repro.api`, so downstream code can plug in new
search algorithms without touching this module.

Candidates whose predictions are byte-identical are collapsed before
ranking: per-class work-ratio replay cannot distinguish knobs that
only restructure the DAG (e.g. ``interleave_sets``), and without the
collapse the top-k validation slots would be spent on replicas of one
prediction instead of genuinely distinct hypotheses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import PicassoConfig
from repro.tuning.knobs import KnobSpace
from repro.tuning.predictor import ReplayPredictor


@dataclass(frozen=True)
class Candidate:
    """One evaluated point in the knob space."""

    assignment: dict
    picasso: PicassoConfig
    predicted_ips: float
    source: str = "replay"
    measured_ips: float | None = None

    @property
    def best_known_ips(self) -> float:
        """Measured ips when available, predicted otherwise."""
        if self.measured_ips is not None:
            return self.measured_ips
        return self.predicted_ips


@dataclass(frozen=True)
class SearchContext:
    """Everything a strategy needs to search.

    :param predictor: the trace-backed :class:`ReplayPredictor`.
    :param space: the declared :class:`KnobSpace`.
    :param base: the baseline config candidates derive from.
    :param options: strategy-specific tunables (e.g. ``max_passes``
        for coordinate descent, ``eta`` for successive halving).
    """

    predictor: ReplayPredictor
    space: KnobSpace
    base: PicassoConfig
    options: dict = field(default_factory=dict)


_STRATEGIES: dict = {}


def register_strategy(name: str, fn, overwrite: bool = False) -> None:
    """Register a search strategy under ``name``.

    Mirrors :func:`repro.api.register_framework`: re-registration
    raises unless ``overwrite=True``.
    """
    if not overwrite and name in _STRATEGIES:
        raise ValueError(
            f"strategy {name!r} already registered; pass "
            "overwrite=True to replace it")
    _STRATEGIES[name] = fn


def strategies() -> tuple:
    """Registered strategy names, sorted."""
    return tuple(sorted(_STRATEGIES))


def strategy(name: str):
    """Look up a registered strategy by name."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; registered: "
            f"{list(strategies())}") from None


def _evaluate(ctx: SearchContext, assignment: dict,
              cache: dict) -> Candidate | None:
    """Predict one assignment; ``None`` if the config rejects it."""
    key = tuple(sorted(assignment.items()))
    if key in cache:
        return cache[key]
    try:
        picasso = ctx.space.apply(ctx.base, assignment)
        prediction = ctx.predictor.predict(picasso)
    except ValueError:
        cache[key] = None
        return None
    candidate = Candidate(assignment=dict(assignment), picasso=picasso,
                          predicted_ips=prediction.ips)
    cache[key] = candidate
    return candidate


def rank_candidates(candidates) -> list:
    """Best-first ranking with identical predictions collapsed.

    Within a tied prediction the earliest-evaluated candidate wins
    (deterministic, and for coordinate descent that is the simplest
    assignment seen at that level).
    """
    ranked: list = []
    seen: set = set()
    ordered = sorted(enumerate(candidates),
                     key=lambda pair: (-pair[1].best_known_ips,
                                       pair[0]))
    for _index, candidate in ordered:
        fingerprint = (round(candidate.predicted_ips, 6),
                       candidate.measured_ips)
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        ranked.append(candidate)
    return ranked


def coordinate_descent(ctx: SearchContext) -> list:
    """Greedy one-knob-at-a-time descent over the knob space.

    Starting from the base config, each pass sweeps every knob in
    declaration order, adopting the value whose replay prediction is
    best given the other knobs' current settings.  Converges (or hits
    ``options["max_passes"]``, default 4) in
    ``O(passes x sum(len(values)))`` replays instead of the full grid.
    """
    max_passes = int(ctx.options.get("max_passes", 4))
    if max_passes < 1:
        raise ValueError("max_passes must be >= 1")
    cache: dict = {}
    evaluated: list = []

    def score(assignment: dict) -> float:
        candidate = _evaluate(ctx, assignment, cache)
        if candidate is None:
            return float("-inf")
        if candidate not in evaluated:
            evaluated.append(candidate)
        return candidate.predicted_ips

    current: dict = {}
    best = score(current)
    for _pass in range(max_passes):
        improved = False
        for knob in ctx.space:
            for value in knob.values:
                if current.get(knob.name) == value:
                    continue
                proposal = dict(current)
                proposal[knob.name] = value
                ips = score(proposal)
                if ips > best:
                    best = ips
                    current = proposal
                    improved = True
        if not improved:
            break
    return rank_candidates(evaluated)


def successive_halving(ctx: SearchContext) -> list:
    """Three-rung successive halving over the full grid.

    Rung 0 screens every assignment with the analytic
    busiest-resource lower bound (no replay), rung 1 replays the
    survivors, rung 2 measures the finalists with a short warm-up
    simulation (``options["warmup_iterations"]``, default 1 — the
    paper's "collect statistics during warm-up" discipline).  Each
    rung keeps roughly ``1/eta`` of its field
    (``options["eta"]``, default 3).
    """
    eta = float(ctx.options.get("eta", 3))
    if eta <= 1:
        raise ValueError("eta must be > 1")
    warmup_iterations = int(ctx.options.get("warmup_iterations", 1))
    if warmup_iterations < 1:
        raise ValueError("warmup_iterations must be >= 1")

    # Rung 0: analytic bound over the whole grid (cheap — plan
    # compilation only, no replay, no engine).
    bounded: list = []
    for assignment in ctx.space.assignments():
        try:
            picasso = ctx.space.apply(ctx.base, assignment)
            bound = ctx.predictor.bound_seconds(picasso)
        except ValueError:
            continue
        bounded.append((bound, len(bounded), assignment, picasso))
    if not bounded:
        return []
    bounded.sort(key=lambda entry: (entry[0], entry[1]))
    keep = max(1, round(len(bounded) / eta))
    survivors = bounded[:keep]

    # Rung 1: replay-predict the survivors.
    cache: dict = {}
    predicted: list = []
    for _bound, _order, assignment, _picasso in survivors:
        candidate = _evaluate(ctx, assignment, cache)
        if candidate is not None:
            predicted.append(candidate)
    predicted = rank_candidates(predicted)
    keep = max(1, round(len(predicted) / eta))
    finalists, rest = predicted[:keep], predicted[keep:]

    # Rung 2: short measured warm-up on the finalists, then one
    # combined ranking — a finalist whose warm-up measurement falls
    # below a lower rung's *prediction* drops below it, which is how
    # the measured rung corrects replay over-predictions.
    measured: list = []
    for candidate in finalists:
        ips = ctx.predictor.measure(candidate.picasso,
                                    iterations=warmup_iterations)
        measured.append(replace(candidate, measured_ips=ips,
                                source="warmup"))
    combined = measured + rest
    combined.sort(key=lambda c: -c.best_known_ips)
    return combined


register_strategy("coordinate-descent", coordinate_descent)
register_strategy("successive-halving", successive_halving)
