"""Warm-up-driven auto-tuning of PICASSO's interleaving knobs.

The paper determines Eq. 2/3 values "empirically or experimentally from
warm-up iterations of training".  :class:`AutoTuner` operationalizes
that: it profiles short runs over a small grid of (interleave sets,
micro-batches) around the analytic estimates and returns the best
configuration — the same profile-then-commit loop production PICASSO
runs during its warm-up phase.

Moved here from ``repro.core.autotuner`` (a deprecation shim remains
at the old path) and exposed to the search loop as the registered
``"warmup-grid"`` strategy: the only fully-measured strategy, useful
as a fidelity yardstick for the replay-predicted ones.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import PicassoConfig
from repro.core.executor import simulate_plan
from repro.core.planner import PicassoPlanner
from repro.hardware.topology import ClusterSpec
from repro.models.base import ModelSpec
from repro.tuning.strategies import (
    Candidate,
    SearchContext,
    register_strategy,
)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one auto-tuning session."""

    best_config: PicassoConfig
    best_ips: float
    trials: tuple

    @property
    def interleave_sets(self) -> int:
        """The chosen K-Interleaving set count."""
        return self.best_config.interleave_sets

    @property
    def micro_batches(self) -> int:
        """The chosen D-Interleaving slice count."""
        return self.best_config.micro_batches


class AutoTuner:
    """Profiles warm-up iterations to pick interleaving parameters.

    :param set_candidates / micro_candidates: explicit grids, or
        ``None`` to search a neighbourhood of the analytic (Eq. 2/3)
        plan.
    :param warmup_iterations: simulated steps per trial (short, as in
        the paper's warm-up phase).
    """

    def __init__(self, base_config: PicassoConfig | None = None,
                 set_candidates: tuple | None = None,
                 micro_candidates: tuple | None = None,
                 warmup_iterations: int = 2):
        if warmup_iterations < 1:
            raise ValueError("warmup_iterations must be >= 1")
        self.base_config = base_config or PicassoConfig()
        self.set_candidates = set_candidates
        self.micro_candidates = micro_candidates
        self.warmup_iterations = warmup_iterations

    def _grids(self, model: ModelSpec, cluster: ClusterSpec,
               batch_size: int) -> tuple:
        planner = PicassoPlanner(self.base_config)
        analytic = planner.plan(model, cluster, batch_size)
        sets = self.set_candidates
        if sets is None:
            center = analytic.interleave_sets
            sets = tuple(sorted({max(1, center - 2), center,
                                 center + 2}))
        micros = self.micro_candidates
        if micros is None:
            center = analytic.micro_batches
            micros = tuple(sorted({1, max(1, center - 1), center,
                                   center + 2}))
        return sets, micros

    def tune(self, model: ModelSpec, cluster: ClusterSpec,
             batch_size: int) -> TuningResult:
        """Grid-profile and return the best configuration found."""
        sets, micros = self._grids(model, cluster, batch_size)
        trials = []
        best = None
        for set_count in sets:
            for micro in micros:
                config = replace(self.base_config,
                                 interleave_sets=set_count,
                                 micro_batches=micro)
                planner = PicassoPlanner(config)
                plan = planner.plan(model, cluster, batch_size)
                report = simulate_plan(
                    plan, iterations=self.warmup_iterations,
                    name=f"tune/s{set_count}m{micro}")
                trial = {"interleave_sets": set_count,
                         "micro_batches": micro,
                         "ips": report.ips}
                trials.append(trial)
                if best is None or report.ips > best[1]:
                    best = (config, report.ips)
        best_config, best_ips = best
        return TuningResult(best_config=best_config, best_ips=best_ips,
                            trials=tuple(trials))


def warmup_grid(ctx: SearchContext) -> list:
    """Fully-measured legacy grid search as a registered strategy.

    Ignores the declared knob space's extra knobs (the legacy tuner
    only sweeps interleaving geometry) but honours its
    ``interleave_sets`` / ``micro_batches`` values when declared.
    Every candidate is measured, so predicted == measured and the
    downstream fidelity report is trivially exact.
    """
    warmup_iterations = int(ctx.options.get(
        "warmup_iterations", ctx.predictor.iterations))
    sets = micros = None
    for knob in ctx.space:
        if knob.name == "interleave_sets":
            sets = knob.values
        elif knob.name == "micro_batches":
            micros = knob.values
    tuner = AutoTuner(base_config=ctx.base,
                      set_candidates=sets,
                      micro_candidates=micros,
                      warmup_iterations=warmup_iterations)
    result = tuner.tune(ctx.predictor.model, ctx.predictor.cluster,
                        ctx.predictor.batch_size)
    candidates = []
    for trial in result.trials:
        assignment = {"interleave_sets": trial["interleave_sets"],
                      "micro_batches": trial["micro_batches"]}
        candidates.append(Candidate(
            assignment=assignment,
            picasso=replace(ctx.base, **assignment),
            predicted_ips=trial["ips"],
            measured_ips=trial["ips"],
            source="measured"))
    candidates.sort(key=lambda c: -c.best_known_ips)
    return candidates


register_strategy("warmup-grid", warmup_grid)
