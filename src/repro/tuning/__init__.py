"""Trace-driven auto-tuning: knob spaces, prediction, search.

The what-if loop behind :func:`repro.api.tune`: a
:class:`ReplayPredictor` prices candidate configs by replaying a
recorded base-run trace under per-class work-ratio cost hooks
(:mod:`repro.replay`), and registered search strategies
(``coordinate-descent``, ``successive-halving``, the fully-measured
legacy ``warmup-grid``) drive it over a declared :class:`KnobSpace`.
New strategies plug in via :func:`register_strategy`.
"""

from repro.tuning.knobs import Knob, KnobSpace, default_space
from repro.tuning.predictor import Prediction, ReplayPredictor
from repro.tuning.strategies import (
    Candidate,
    SearchContext,
    coordinate_descent,
    rank_candidates,
    register_strategy,
    strategies,
    strategy,
    successive_halving,
)
from repro.tuning.warmup import AutoTuner, TuningResult, warmup_grid

__all__ = [
    "AutoTuner",
    "Candidate",
    "Knob",
    "KnobSpace",
    "Prediction",
    "ReplayPredictor",
    "SearchContext",
    "TuningResult",
    "coordinate_descent",
    "default_space",
    "rank_candidates",
    "register_strategy",
    "strategies",
    "strategy",
    "successive_halving",
    "warmup_grid",
]
