"""Replay-based throughput prediction for config candidates.

:class:`ReplayPredictor` turns a candidate
:class:`~repro.core.config.PicassoConfig` into a predicted ips without
running the engine: it compiles the candidate's execution plan (cheap,
analytic), totals the planned *work* per resource kind, scales the
recorded base trace's segments by the candidate/base work ratios, and
replays the frozen DAG under those :class:`~repro.replay.CostHooks`.

Work ratios — not solo-time ratios — are the fidelity-critical choice:
recorded segment durations already embed resource contention
(water-filling rate sharing), so crediting candidates with full
solo-efficiency gains double-counts.  Waits follow the asymmetric
``"congestion"`` model for the same reason.  Structural knobs that
move work *between* tasks rather than changing per-kind totals (e.g.
``interleave_sets`` alone) are invisible to per-class scaling; the
search loop compensates by validating its top candidates with real
runs before declaring a winner.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.config import PicassoConfig
from repro.core.executor import (
    compile_plan,
    per_iteration_seconds,
    simulate_plan,
)
from repro.core.planner import PicassoPlanner
from repro.replay import CostHooks, ReplayResult, TraceReplayer

#: The iteration-boundary marker throughput accounting keys off.
FIRST_STEP_MARKER = "it0/step_end"

#: Fraction of the background prefetch stream's planned work credited
#: as hidden when predicting a candidate analytically.  The stream
#: runs on its own per-group chains and mostly overlaps foreground
#: execution, but the warm-up iteration and tail exposure keep the
#: realized hiding below perfect — charging the full stream work as
#: foreground (credit 0) would bury the lookahead knobs, crediting it
#: all (1) would over-predict them.
PREFETCH_HIDE_CREDIT = 0.7


@dataclass(frozen=True)
class Prediction:
    """One candidate's replay-predicted outcome."""

    picasso: PicassoConfig
    ips: float
    makespan: float
    seconds_per_iteration: float
    hooks: CostHooks
    replay: ReplayResult = field(repr=False)


def _picasso_key(picasso: PicassoConfig) -> str:
    """Stable cache key for a (possibly unhashable) config."""
    return json.dumps(picasso.as_dict(), sort_keys=True,
                      separators=(",", ":"))


class ReplayPredictor:
    """Predicts candidate throughput by replaying a recorded base run.

    :param records: :class:`~repro.sim.trace.TaskRecord` list of the
        base run (``record_tasks=True``), in engine completion order.
    :param base_picasso: the config the trace was recorded under; work
        ratios are taken relative to its plan.
    :param wait_model: :data:`~repro.replay.WAIT_MODELS` policy for
        re-derived queue waits.
    :param shrink_credit: exponent damping work *reductions* (ratios
        below 1 are raised to this power).  The base run's overlap
        structure was shaped by the base geometry, so freed work only
        partially converts into saved wall-clock; crediting it fully
        (``1.0``) systematically over-predicts candidates that slash
        one kind's work (e.g. ``micro_batches=1`` collapsing launch
        overhead).  Work *growth* is always charged in full.
    """

    def __init__(self, model, cluster, batch_size: int,
                 iterations: int, records,
                 base_picasso: PicassoConfig | None = None,
                 wait_model: str = "congestion",
                 shrink_credit: float = 0.5):
        if not 0.0 < shrink_credit <= 1.0:
            raise ValueError(
                f"shrink_credit must be in (0, 1], got {shrink_credit}")
        self.model = model
        self.cluster = cluster
        self.batch_size = batch_size
        self.iterations = iterations
        self.base_picasso = base_picasso or PicassoConfig()
        self.wait_model = wait_model
        self.shrink_credit = shrink_credit
        self.replayer = TraceReplayer(records)
        self._work_cache: dict = {}
        self._prediction_cache: dict = {}
        self._base_work = self.plan_work(self.base_picasso)

    def _plan(self, picasso: PicassoConfig):
        planner = PicassoPlanner(picasso)
        return planner.plan(self.model, self.cluster, self.batch_size)

    def _plan_totals(self, picasso: PicassoConfig) -> tuple:
        """``(totals, stream)`` planned work per resource-kind value.

        ``totals`` maps ``kind_value -> (work, solo_seconds)`` over
        *every* task; ``stream`` maps ``kind_value -> work`` counting
        only background prefetch-stream tasks (``tags["layer"] ==
        "prefetch"``), which mostly hide under foreground execution
        and must not be charged at face value (see
        :data:`PREFETCH_HIDE_CREDIT`).
        """
        key = _picasso_key(picasso)
        cached = self._work_cache.get(key)
        if cached is not None:
            return cached
        _graph, tasks, resources = compile_plan(
            self._plan(picasso), self.iterations)
        totals: dict = {}
        stream: dict = {}
        for task in tasks:
            on_stream = task.tags.get("layer") == "prefetch"
            for phase in task.phases:
                rate = min(resources[phase.kind].capacity,
                           phase.max_rate)
                work, solo = totals.get(phase.kind.value, (0.0, 0.0))
                totals[phase.kind.value] = (work + phase.work,
                                            solo + phase.work / rate)
                if on_stream:
                    stream[phase.kind.value] = (
                        stream.get(phase.kind.value, 0.0) + phase.work)
        self._work_cache[key] = (totals, stream)
        return totals, stream

    def plan_work(self, picasso: PicassoConfig) -> dict:
        """Planned work per resource-kind value (and solo seconds).

        Returns ``{kind_value: (work, solo_seconds)}`` where solo
        seconds price each phase at its uncontended rate — the
        analytic lower bound the successive-halving rung-0 screen
        ranks by.
        """
        return self._plan_totals(picasso)[0]

    def bound_seconds(self, picasso: PicassoConfig) -> float:
        """Busiest-resource solo seconds: a makespan lower bound."""
        totals = self.plan_work(picasso)
        return max((solo for _work, solo in totals.values()),
                   default=0.0)

    def hooks_for(self, picasso: PicassoConfig) -> CostHooks:
        """Per-kind work-ratio cost hooks for one candidate.

        Work the candidate spends on the background prefetch stream is
        discounted by :data:`PREFETCH_HIDE_CREDIT` before the ratio:
        the base trace is (typically) prefetch-off, so charging the
        stream as if it ran in the foreground would make every
        lookahead candidate look strictly worse than its real run.
        """
        candidate, stream = self._plan_totals(picasso)
        scales = {}
        for kind_value, (base_work, _solo) in self._base_work.items():
            if base_work <= 0.0:
                continue
            work = candidate.get(kind_value, (0.0, 0.0))[0]
            work = max(0.0, work - PREFETCH_HIDE_CREDIT
                       * stream.get(kind_value, 0.0))
            scale = work / base_work
            if scale < 1.0:
                # A knob can zero out a kind entirely (e.g. caching
                # absorbing all cold fetches); floor the scale so the
                # replayed segment survives as an epsilon rather than
                # inverting time.  Reductions are then damped by the
                # shrink-credit exponent (see class docstring).
                scale = max(scale, 1e-9) ** self.shrink_credit
            if scale != 1.0:
                scales[kind_value] = scale
        return CostHooks(kind_overrides=tuple(sorted(scales.items())),
                         wait_model=self.wait_model)

    def predict(self, picasso: PicassoConfig) -> Prediction:
        """Replay the base trace under ``picasso``'s work ratios."""
        key = _picasso_key(picasso)
        cached = self._prediction_cache.get(key)
        if cached is not None:
            return cached
        hooks = self.hooks_for(picasso)
        replay = self.replayer.replay(hooks)
        per_iteration = per_iteration_seconds(
            replay.makespan, replay.finish(FIRST_STEP_MARKER),
            self.iterations)
        prediction = Prediction(
            picasso=picasso,
            ips=self.batch_size / per_iteration,
            makespan=replay.makespan,
            seconds_per_iteration=per_iteration,
            hooks=hooks,
            replay=replay)
        self._prediction_cache[key] = prediction
        return prediction

    def measure(self, picasso: PicassoConfig,
                iterations: int | None = None) -> float:
        """Ground truth: simulate the candidate and return its ips.

        Short ``iterations`` make this the successive-halving top
        rung (warm-up profiling); the full search-loop validation
        runs through the :func:`repro.api.run` facade instead.
        """
        report = simulate_plan(self._plan(picasso),
                               iterations=iterations or self.iterations)
        return report.ips
