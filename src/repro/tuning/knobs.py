"""The declared knob space the auto-tuner searches over.

A :class:`Knob` names one :class:`~repro.core.config.PicassoConfig`
field and its candidate values; a :class:`KnobSpace` is an ordered
tuple of knobs whose assignments apply to a base config through
``with_overrides`` — so every proposal re-runs the config's
``__post_init__`` validation and an invalid candidate fails at
construction, before any replay or run.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from itertools import product

from repro.core.config import PicassoConfig

_GIB = float(1 << 30)

_PICASSO_FIELDS = tuple(spec.name
                        for spec in dataclass_fields(PicassoConfig))


@dataclass(frozen=True)
class Knob:
    """One tunable config field and its candidate values, in order."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if self.name not in _PICASSO_FIELDS:
            raise ValueError(
                f"unknown knob {self.name!r}; expected a "
                f"PicassoConfig field: {list(_PICASSO_FIELDS)}")
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"knob {self.name!r} has no values")

    def as_dict(self) -> dict:
        return {"name": self.name, "values": list(self.values)}

    @classmethod
    def from_dict(cls, payload: dict) -> "Knob":
        return cls(name=payload["name"],
                   values=tuple(payload["values"]))


@dataclass(frozen=True)
class KnobSpace:
    """An ordered set of knobs defining the candidate grid."""

    knobs: tuple

    def __post_init__(self) -> None:
        if not isinstance(self.knobs, tuple):
            object.__setattr__(self, "knobs", tuple(self.knobs))
        if not self.knobs:
            raise ValueError("knob space is empty")
        names = [knob.name for knob in self.knobs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate knob name(s) in {names}")

    def __iter__(self):
        return iter(self.knobs)

    def __len__(self) -> int:
        return len(self.knobs)

    @property
    def size(self) -> int:
        """Number of assignments in the full grid."""
        total = 1
        for knob in self.knobs:
            total *= len(knob.values)
        return total

    def assignments(self):
        """Iterate the full grid as ``{knob: value}`` dicts."""
        names = [knob.name for knob in self.knobs]
        for values in product(*(knob.values for knob in self.knobs)):
            yield dict(zip(names, values))

    def apply(self, base: PicassoConfig,
              assignment: dict) -> PicassoConfig:
        """``base`` with ``assignment`` applied (validated copy).

        Raises :class:`ValueError` for keys outside the space, and —
        via ``with_overrides`` re-running ``__post_init__`` — for
        values the config itself rejects.
        """
        known = {knob.name for knob in self.knobs}
        unknown = sorted(set(assignment) - known)
        if unknown:
            raise ValueError(
                f"assignment key(s) {unknown} outside the knob "
                f"space {sorted(known)}")
        if not assignment:
            return base
        return base.with_overrides(**assignment)

    def as_dict(self) -> dict:
        return {"knobs": [knob.as_dict() for knob in self.knobs]}

    @classmethod
    def from_dict(cls, payload: dict) -> "KnobSpace":
        return cls(knobs=tuple(Knob.from_dict(entry)
                               for entry in payload["knobs"]))


def default_space() -> KnobSpace:
    """The stock search space: interleaving geometry plus cache size.

    Mirrors the knobs the paper reports tuning "empirically from
    warm-up iterations": K-Interleaving set count, D-Interleaving
    micro-batch count, and the HybridHash hot-storage budget.
    """
    return KnobSpace(knobs=(
        Knob("interleave_sets", (1, 2, 4, 8)),
        Knob("micro_batches", (1, 2, 3, 4, 8)),
        Knob("hot_storage_bytes",
             (0.5 * _GIB, 1.0 * _GIB, 2.0 * _GIB)),
        # Hot/cold lookahead pipeline: window depth and the residency
        # bar for running a batch ahead of colder ones.
        Knob("prefetch_lookahead", (1, 2, 4)),
        Knob("prefetch_hot_threshold", (0.4, 0.6, 0.8)),
    ))
