"""Real (numpy) training loops: synchronous and async-PS variants.

Synchronous data-parallel training (PICASSO's hybrid strategy, Horovod,
PyTorch AllToAll) is mathematically identical to single-worker training
on the combined batch; asynchronous PS training applies *stale*
gradients, which is what costs TF-PS a little accuracy in Tab. III.
"""

from repro.training.checkpoint import (
    checkpoint_bytes,
    load_checkpoint,
    save_checkpoint,
)
from repro.training.trainer import (
    AsyncPsTrainer,
    SyncTrainer,
    TrainResult,
    evaluate,
    train_and_evaluate,
)

__all__ = [
    "AsyncPsTrainer",
    "SyncTrainer",
    "TrainResult",
    "evaluate",
    "train_and_evaluate",
    "checkpoint_bytes",
    "load_checkpoint",
    "save_checkpoint",
]
