"""Checkpointing: save/restore full training state.

Production PICASSO leans on in-house failover-recovery (out of the
paper's scope); an open-source release still needs basic durable
checkpoints.  State is serialized with ``numpy.savez`` — dense
parameters, embedding tables, and optimizer slots — so a resumed run
continues the exact trajectory.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

from repro.nn.network import WdlNetwork


def save_checkpoint(network: WdlNetwork, path, step: int = 0,
                    metadata: dict | None = None) -> None:
    """Serialize a network's full trainable state to ``path`` (.npz)."""
    if step < 0:
        raise ValueError("step must be >= 0")
    arrays = {}
    for name, (value, _grad) in network.parameters().items():
        arrays[f"dense/{name}"] = value
    for field_name, table in network.embeddings.items():
        arrays[f"table/{field_name}"] = table.table
    header = {
        "step": step,
        "variant": network.variant,
        "embedding_dim": network.embedding_dim,
        "dataset": network.dataset.name,
        "metadata": metadata or {},
    }
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8)
    np.savez(path, **arrays)


def load_checkpoint(network: WdlNetwork, path) -> dict:
    """Restore state saved by :func:`save_checkpoint`; returns header.

    Raises :class:`ValueError` when the checkpoint does not match the
    network's architecture (variant, dims, table shapes).
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        header = json.loads(bytes(archive["__header__"]).decode())
        if header["variant"] != network.variant:
            raise ValueError(
                f"checkpoint variant {header['variant']!r} != "
                f"network variant {network.variant!r}")
        if header["embedding_dim"] != network.embedding_dim:
            raise ValueError("embedding dimension mismatch")
        for name, (value, _grad) in network.parameters().items():
            stored = archive[f"dense/{name}"]
            if stored.shape != value.shape:
                raise ValueError(f"shape mismatch for {name}")
            value[:] = stored
        for field_name, table in network.embeddings.items():
            stored = archive[f"table/{field_name}"]
            if stored.shape != table.table.shape:
                raise ValueError(
                    f"table shape mismatch for {field_name}")
            table.table[:] = stored
    return header


def checkpoint_bytes(network: WdlNetwork) -> int:
    """Approximate serialized size of a checkpoint (bytes)."""
    total = 0
    for _name, (value, _grad) in network.parameters().items():
        total += value.nbytes
    for table in network.embeddings.values():
        total += table.table.nbytes
    return total
