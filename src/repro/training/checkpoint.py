"""Checkpointing: save/restore full training state.

Production PICASSO leans on in-house failover-recovery (out of the
paper's scope); an open-source release still needs basic durable
checkpoints.  State is serialized with ``numpy.savez`` — dense
parameters, embedding tables, and (when an optimizer is passed)
optimizer slots — so a resumed run continues the *exact* trajectory:
with optimizer state included, a crash-and-restore replay reproduces
the uncrashed loss history bit for bit, which is what
:class:`~repro.faults.resilient.ResilientTrainer` builds its recovery
guarantee on.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.nn.network import WdlNetwork

_OPT_PREFIX = "opt/"


def resolve_checkpoint_path(path) -> Path:
    """The on-disk path a checkpoint lands at (``.npz`` appended).

    Mirrors ``numpy.savez``'s extension handling so callers that need
    the final name (publishers, registries, size accounting) agree
    with what :func:`save_checkpoint` actually writes.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_checkpoint(network: WdlNetwork, path, step: int = 0,
                    metadata: dict | None = None,
                    optimizer=None) -> None:
    """Serialize a network's full trainable state to ``path`` (.npz).

    The write is **atomic**: bytes go to a temporary file in the target
    directory first and only an :func:`os.replace` makes them visible
    under the final name.  A crash mid-write can therefore never leave
    a truncated "latest" checkpoint for a serving publisher to pick up
    — readers see either the previous complete file or the new one.

    :param optimizer: optional optimizer whose slot arrays (Adagrad
        accumulators, momenta, sparse-row state) are stored alongside
        the parameters; restoring them makes a resumed run bitwise
        identical to an uninterrupted one.
    """
    if step < 0:
        raise ValueError("step must be >= 0")
    arrays = {}
    for name, (value, _grad) in network.parameters().items():
        arrays[f"dense/{name}"] = value
    for field_name, table in network.embeddings.items():
        arrays[f"table/{field_name}"] = table.table
    if optimizer is not None:
        for key, value in optimizer.state_arrays().items():
            arrays[f"{_OPT_PREFIX}{key}"] = value
    header = {
        "step": step,
        "variant": network.variant,
        "embedding_dim": network.embedding_dim,
        "dataset": network.dataset.name,
        "has_optimizer_state": optimizer is not None,
        "metadata": metadata or {},
    }
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8)
    atomic_savez(path, **arrays)


def atomic_savez(path, **arrays) -> Path:
    """``numpy.savez`` with all-or-nothing visibility; returns the path.

    Writes into a ``tempfile`` sibling and publishes it with
    :func:`os.replace`, the POSIX atomic-rename durability idiom every
    snapshot publisher in :mod:`repro.online` leans on.
    """
    final = resolve_checkpoint_path(path)
    handle = tempfile.NamedTemporaryFile(
        dir=final.parent, prefix=final.name + ".",
        suffix=".tmp", delete=False)
    try:
        with handle:
            np.savez(handle, **arrays)
        os.replace(handle.name, final)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return final


def load_checkpoint(network: WdlNetwork, path, optimizer=None,
                    expected_step: int | None = None) -> dict:
    """Restore state saved by :func:`save_checkpoint`; returns header.

    :param optimizer: optional optimizer to restore slot state into
        (saved with ``save_checkpoint(..., optimizer=...)``).
    :param expected_step: when given, the header's ``step`` must match
        exactly — resume code passes the step it believes it restored
        to, catching stale or mislabeled checkpoints up front.

    Raises :class:`FileNotFoundError` naming both tried paths when
    neither ``path`` nor ``path.npz`` exists, and :class:`ValueError`
    when the checkpoint does not match the network's architecture
    (variant, dims, table shapes), carries a malformed ``step``
    header, or disagrees with ``expected_step``.
    """
    path = Path(path)
    if not path.exists():
        with_suffix = path.with_suffix(".npz")
        if with_suffix.exists():
            path = with_suffix
        else:
            raise FileNotFoundError(
                f"no checkpoint found at {path} or {with_suffix}")
    with np.load(path) as archive:
        header = json.loads(bytes(archive["__header__"]).decode())
        step = header.get("step")
        if not isinstance(step, int) or step < 0:
            raise ValueError(
                f"checkpoint {path} carries a malformed step header: "
                f"{step!r}")
        if expected_step is not None and step != expected_step:
            raise ValueError(
                f"checkpoint {path} is at step {step}, "
                f"expected step {expected_step}")
        if header["variant"] != network.variant:
            raise ValueError(
                f"checkpoint variant {header['variant']!r} != "
                f"network variant {network.variant!r}")
        if header["embedding_dim"] != network.embedding_dim:
            raise ValueError("embedding dimension mismatch")
        for name, (value, _grad) in network.parameters().items():
            stored = archive[f"dense/{name}"]
            if stored.shape != value.shape:
                raise ValueError(f"shape mismatch for {name}")
            value[:] = stored
        for field_name, table in network.embeddings.items():
            stored = archive[f"table/{field_name}"]
            if stored.shape != table.table.shape:
                raise ValueError(
                    f"table shape mismatch for {field_name}")
            table.table[:] = stored
        if optimizer is not None:
            optimizer.load_state_arrays({
                key[len(_OPT_PREFIX):]: archive[key]
                for key in archive.files
                if key.startswith(_OPT_PREFIX)
            })
    return header


def checkpoint_bytes(network: WdlNetwork, optimizer=None) -> int:
    """Approximate serialized size of a checkpoint (bytes)."""
    total = 0
    for _name, (value, _grad) in network.parameters().items():
        total += value.nbytes
    for table in network.embeddings.values():
        total += table.table.nbytes
    if optimizer is not None:
        for value in optimizer.state_arrays().values():
            total += value.nbytes
    return total
