"""Training loops and the Tab. III accuracy harness."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.data.labeled import LabeledBatchIterator
from repro.data.spec import DatasetSpec
from repro.nn.metrics import auc_score, log_loss
from repro.nn.network import WdlNetwork
from repro.nn.optim import Adagrad
from repro.telemetry.span import maybe_span
from repro.telemetry.timeseries import Ewma


@dataclass
class TrainResult:
    """Outcome of one training run (a ``Stats`` object)."""

    auc: float
    logloss: float
    steps: int
    losses: list = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Loss of the last training step."""
        return self.losses[-1] if self.losses else float("nan")

    def as_dict(self) -> dict:
        """Plain-dict snapshot for telemetry export and benchmarks."""
        return {
            "auc": self.auc,
            "logloss": self.logloss,
            "steps": self.steps,
            "final_loss": self.final_loss,
        }

    def merge(self, other: "TrainResult") -> "TrainResult":
        """Combine two runs: losses concatenate, quality averages.

        AUC and log-loss are weighted by each run's step count — the
        aggregation used when the same trajectory is split across
        evaluation windows.
        """
        total = self.steps + other.steps
        if total == 0:
            return TrainResult(auc=self.auc, logloss=self.logloss,
                               steps=0, losses=[])
        weight = self.steps / total
        return TrainResult(
            auc=self.auc * weight + other.auc * (1.0 - weight),
            logloss=self.logloss * weight + other.logloss * (1.0 - weight),
            steps=total,
            losses=list(self.losses) + list(other.losses))


class SyncTrainer:
    """Synchronous training: gradients applied immediately.

    One step on the global batch is exactly what PICASSO's hybrid
    strategy (and Allreduce/AllToAll baselines) computes across
    workers, so a single-process loop reproduces its optimization
    trajectory.
    """

    def __init__(self, network: WdlNetwork, optimizer=None, tracer=None,
                 registry=None, loss_alpha: float = 0.1, flight=None,
                 anomaly=None):
        """:param tracer: optional :class:`repro.telemetry.Tracer`;
        each step becomes a wall-clock span on the ``train`` track.
        :param registry: optional
            :class:`repro.telemetry.MetricsRegistry`; the trainer keeps
            its ``train/steps`` counter and ``train/loss_ewma`` gauge
            (EWMA-smoothed with ``loss_alpha``) current, so a long run
            is monitorable mid-flight.
        :param flight: optional
            :class:`repro.telemetry.FlightRecorder`; every step's loss
            lands in the ring as a sample (step index as modeled
            time), a step that raises dumps the ring before the
            exception propagates, and loss anomalies from ``anomaly``
            dump as alerts.
        :param anomaly: optional
            :class:`repro.telemetry.AnomalyDetector` over the loss
            stream; defaults to a z>4 detector when ``flight`` is set.
        """
        self.network = network
        self.optimizer = optimizer or Adagrad(lr=0.05)
        self.tracer = tracer
        self.registry = registry
        self.loss_ewma = Ewma(alpha=loss_alpha)
        self.flight = flight
        if anomaly is None and flight is not None:
            from repro.telemetry.recorder import AnomalyDetector
            anomaly = AnomalyDetector("train/loss", z_threshold=4.0)
        self.anomaly = anomaly

    def step(self, batch, index: int = 0) -> float:
        """One optimizer step on ``batch``; returns its loss.

        The single-step entry point :meth:`train` loops over — exposed
        so wrappers that own the step loop (the fault-injecting
        :class:`~repro.faults.resilient.ResilientTrainer` replaying
        work after a restore) drive the same telemetry path.
        """
        with maybe_span(self.tracer, "train/step", category="training",
                        track="train", step=index) as span:
            if self.flight is not None:
                with self.flight.watch(time_s=float(index),
                                       label="train/step"):
                    loss = self.network.train_step(batch,
                                                   self.optimizer)
            else:
                loss = self.network.train_step(batch, self.optimizer)
            if span is not None:
                span.attrs["loss"] = loss
        smoothed = self.loss_ewma.update(loss)
        if self.registry is not None:
            self.registry.counter("train/steps").inc()
            self.registry.gauge("train/loss_ewma").set(smoothed)
        if self.flight is not None:
            self.flight.record_sample("train/loss", float(index), loss,
                                      track="train")
        if self.anomaly is not None:
            alert = self.anomaly.observe(float(index), loss)
            if alert is not None and self.flight is not None:
                self.flight.record_alert(alert)
        return loss

    def train(self, iterator, steps: int, prefetcher=None) -> list:
        """Run ``steps`` updates; returns per-step losses.

        :param prefetcher: optional
            :class:`~repro.prefetch.LookaheadPrefetcher`; batches are
            emitted in its hot-first window order (each step keeps its
            *original* stream index for telemetry attribution).  With
            ``None`` — or a FIFO/depth-1 pipeline — the loop is
            bit-for-bit the legacy arrival-order path.
        """
        if steps < 0:
            raise ValueError("steps must be >= 0")
        losses = []
        with maybe_span(self.tracer, "train", category="training",
                        track="train", steps=steps):
            if prefetcher is None:
                for index, batch in enumerate(iterator.batches(steps)):
                    losses.append(self.step(batch, index))
            else:
                for index, batch in prefetcher.schedule(
                        iterator.batches(steps)):
                    losses.append(self.step(batch, index))
        return losses


class AsyncPsTrainer:
    """Asynchronous PS training: gradients land ``staleness`` steps late.

    Each step computes gradients against the *current* parameters, but
    the update actually applied is the one computed ``staleness`` steps
    ago — the canonical model of async PS lag, whose accuracy cost the
    paper's Tab. III attributes to TF-PS.
    """

    def __init__(self, network: WdlNetwork, optimizer=None,
                 staleness: int = 2):
        if staleness < 0:
            raise ValueError("staleness must be >= 0")
        self.network = network
        self.optimizer = optimizer or Adagrad(lr=0.05)
        self.staleness = staleness
        self._pending: deque = deque()

    def train(self, iterator, steps: int) -> list:
        """Run ``steps`` stale-gradient updates; returns losses."""
        losses = []
        for batch in iterator.batches(steps):
            loss = self.network.compute_gradients(batch)
            losses.append(loss)
            self._pending.append(self._snapshot_gradients())
            if len(self._pending) > self.staleness:
                self._apply(self._pending.popleft())
        while self._pending:
            self._apply(self._pending.popleft())
        return losses

    def _snapshot_gradients(self) -> tuple:
        dense = {name: grad.copy()
                 for name, (_value, grad) in
                 self.network.parameters().items()}
        sparse = {table.name: [(rows.copy(), grads.copy())
                               for rows, grads in table.sparse_grads()]
                  for table in self.network.sparse_tables()}
        return dense, sparse

    def _apply(self, snapshot: tuple) -> None:
        dense, sparse = snapshot
        # Re-stage the stale gradients into the live network and step.
        for name, (_value, grad) in self.network.parameters().items():
            grad[:] = dense[name]
        for table in self.network.sparse_tables():
            table.zero_grad()
            for rows, grads in sparse[table.name]:
                table._sparse_grads.append((rows, grads))
        self.optimizer.step(self.network.parameters(),
                            self.network.sparse_tables())
        for _name, (_value, grad) in self.network.parameters().items():
            grad[:] = 0.0
        for table in self.network.sparse_tables():
            table.zero_grad()


def evaluate(network: WdlNetwork, iterator, batches: int) -> tuple:
    """(AUC, log-loss) over ``batches`` held-out batches."""
    if batches < 1:
        raise ValueError("batches must be >= 1")
    all_labels = []
    all_scores = []
    for batch in iterator.batches(batches):
        all_scores.append(network.predict(batch))
        all_labels.append(batch.labels)
    labels = np.concatenate(all_labels)
    scores = np.concatenate(all_scores)
    return auc_score(labels, scores), log_loss(labels, scores)


def train_and_evaluate(dataset: DatasetSpec, variant: str,
                       mode: str = "sync", steps: int = 120,
                       batch_size: int = 2048, eval_batches: int = 20,
                       embedding_dim: int = 16, noise_scale: float = 1.0,
                       signal_scale: float = 1.0, staleness: int = 2,
                       seed: int = 0, tracer=None) -> TrainResult:
    """The Tab. III harness: train one model, report held-out AUC.

    :param mode: ``"sync"`` (PICASSO / PyTorch / Horovod trajectory) or
        ``"async-ps"`` (TF-PS with gradient staleness).
    :param tracer: optional telemetry tracer forwarded to the trainer.
    """
    if mode not in ("sync", "async-ps"):
        raise ValueError(f"unknown mode {mode!r}")
    network = WdlNetwork(dataset, variant=variant,
                         embedding_dim=embedding_dim, seed=seed)
    train_iter = LabeledBatchIterator(dataset, batch_size,
                                      noise_scale=noise_scale,
                                      signal_scale=signal_scale, seed=seed)
    if mode == "sync":
        trainer = SyncTrainer(network, tracer=tracer)
    else:
        trainer = AsyncPsTrainer(network, staleness=staleness)
    losses = trainer.train(train_iter, steps)
    eval_iter = LabeledBatchIterator(dataset, batch_size,
                                     noise_scale=noise_scale,
                                     signal_scale=signal_scale,
                                     seed=seed + 10_000)
    auc, ll = evaluate(network, eval_iter, eval_batches)
    return TrainResult(auc=auc, logloss=ll, steps=steps, losses=losses)
