"""Shared machinery for the facade's frozen config dataclasses.

``RunConfig``, ``ServeConfig``, ``StreamConfig``, ``TuneConfig`` and
``PicassoConfig`` all follow one contract — ``with_overrides`` for
sweeps, ``as_dict``/``from_dict`` for lossless JSON round-trips — and
each used to carry its own copy of that boilerplate.  :class:`ConfigBase`
is the single implementation; subclasses only declare how their
non-scalar fields serialize via :data:`ConfigBase._FIELD_CODECS`.

The mixin lives outside :mod:`repro.api` so that :mod:`repro.core`
(which the facade imports) can rebase :class:`~repro.core.config.
PicassoConfig` on it without an import cycle.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields, replace


def codec(encode, decode):
    """An ``(encode, decode)`` pair for :data:`ConfigBase._FIELD_CODECS`.

    ``encode`` maps a live field value to a JSON-friendly payload;
    ``decode`` rebuilds the value and must tolerate already-built
    instances (``from_dict`` callers sometimes pass them through).
    """
    return (encode, decode)


def dict_codec(cls):
    """Codec for a field holding an ``as_dict``/``from_dict`` object."""
    return codec(
        lambda value: value.as_dict(),
        lambda value: cls.from_dict(value)
        if isinstance(value, dict) else value)


class ConfigBase:
    """Mixin giving config dataclasses one serialization contract.

    Subclasses are frozen dataclasses; they may declare per-field
    codecs in ``_FIELD_CODECS`` (``{field_name: (encode, decode)}``).
    ``None`` values bypass codecs in both directions, so optional
    nested configs (``fault_plan``, ``picasso``) serialize as ``null``.
    """

    _FIELD_CODECS: dict = {}

    def with_overrides(self, **changes):
        """A copy with some fields replaced (sweeps, ablations).

        Goes through ``dataclasses.replace``, which re-runs
        ``__post_init__`` — an invalid override (a tuner proposal, a
        mistyped sweep) fails here at construction, not deep inside
        ``run()``.
        """
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """Plain-dict snapshot (trace metadata, logs); round-trips
        through :meth:`from_dict`."""
        payload = {}
        for spec in dataclass_fields(self):
            value = getattr(self, spec.name)
            field_codec = self._FIELD_CODECS.get(spec.name)
            if field_codec is not None and value is not None:
                value = field_codec[0](value)
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict):
        """Rebuild a config from :meth:`as_dict` output.

        Unknown keys raise :class:`ValueError` — a silently dropped
        key is a config that quietly ran with defaults.
        """
        known = [spec.name for spec in dataclass_fields(cls)]
        unknown = sorted(set(payload) - set(known))
        if unknown:
            raise ValueError(
                f"unknown {cls.__name__} key(s) {unknown}; "
                f"expected a subset of {known}")
        settings = {}
        for key, value in payload.items():
            field_codec = cls._FIELD_CODECS.get(key)
            if field_codec is not None and value is not None:
                value = field_codec[1](value)
            settings[key] = value
        return cls(**settings)
