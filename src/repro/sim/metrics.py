"""Derived metrics over simulation traces.

These mirror the paper's measurement methodology: DCGM-style sampling
of SM utilization and link bandwidth on a fixed-width (default 10 ms)
grid, then CDFs / timelines over the samples (Figs. 11 and 12).
"""

from __future__ import annotations

import numpy as np

from repro.sim.resource import ResourceKind
from repro.sim.trace import TraceRecorder

#: Sampling granularity used throughout the paper's utilization plots.
DEFAULT_BUCKET_SECONDS = 0.010


def _bucketize(segments: list, makespan: float, bucket: float) -> np.ndarray:
    """Integrate (t0, t1, rate) segments onto a fixed grid.

    Returns per-bucket average rate (resource units per second).
    """
    if makespan <= 0:
        return np.zeros(0)
    num_buckets = max(1, int(np.ceil(makespan / bucket)))
    sums = np.zeros(num_buckets)
    for t0, t1, rate in segments:
        first = int(t0 // bucket)
        last = min(num_buckets - 1, int((t1 - 1e-15) // bucket))
        for index in range(first, last + 1):
            lo = max(t0, index * bucket)
            hi = min(t1, (index + 1) * bucket)
            if hi > lo:
                sums[index] += rate * (hi - lo)
        # Guard against zero-width segments spilling past the grid.
    return sums / bucket


def utilization_timeline(recorder: TraceRecorder, kind: ResourceKind,
                         makespan: float,
                         bucket: float = DEFAULT_BUCKET_SECONDS):
    """Per-bucket utilization (0..1) of a resource.

    Returns ``(times, utilization)`` arrays; ``times`` are bucket starts.
    """
    trace = recorder.trace(kind)
    rates = _bucketize(trace.segments, makespan, bucket)
    utilization = np.clip(rates / trace.capacity, 0.0, 1.0)
    times = np.arange(len(utilization)) * bucket
    return times, utilization


def bandwidth_timeline(recorder: TraceRecorder, kind: ResourceKind,
                       makespan: float,
                       bucket: float = DEFAULT_BUCKET_SECONDS):
    """Per-bucket sustained bandwidth (resource units/s, e.g. B/s)."""
    trace = recorder.trace(kind)
    rates = _bucketize(trace.segments, makespan, bucket)
    times = np.arange(len(rates)) * bucket
    return times, rates


def utilization_cdf(recorder: TraceRecorder, kind: ResourceKind,
                    makespan: float,
                    bucket: float = DEFAULT_BUCKET_SECONDS):
    """Empirical CDF of bucketed utilization samples (Fig. 11).

    Returns ``(levels, cdf)`` where ``cdf[i]`` is the fraction of time
    the utilization was <= ``levels[i]``.
    """
    _times, samples = utilization_timeline(recorder, kind, makespan, bucket)
    if samples.size == 0:
        return np.zeros(0), np.zeros(0)
    levels = np.sort(samples)
    cdf = np.arange(1, len(levels) + 1) / len(levels)
    return levels, cdf


#: Gap below which two intervals are considered abutting.  Interval
#: endpoints come from summing float phase durations, so two segments
#: of one logically-contiguous busy span can disagree at the shared
#: endpoint by a few ulps; without the tolerance they never re-merge
#: and every overlap query under-credits the junction.
MERGE_EPSILON = 1e-12


def merge_intervals(intervals) -> list:
    """Coalesce (t0, t1) intervals into disjoint sorted spans.

    Intervals are half-open ``[t0, t1)``: a span ending at ``t`` and a
    span starting at ``t`` are exactly abutting and merge into one
    (the resource was continuously busy across the junction — there is
    no measure-zero idle instant between them).  Gaps up to
    :data:`MERGE_EPSILON` also merge, absorbing float noise in
    endpoints accumulated from summing phase durations.
    """
    intervals = sorted(intervals)
    if not intervals:
        return []
    merged = [list(intervals[0])]
    for t0, t1 in intervals[1:]:
        if t0 > merged[-1][1] + MERGE_EPSILON:
            merged.append([t0, t1])
        else:
            merged[-1][1] = max(merged[-1][1], t1)
    return [(t0, t1) for t0, t1 in merged]


def merged_busy_intervals(recorder: TraceRecorder, kinds) -> list:
    """Disjoint (t0, t1) spans during which *any* of ``kinds`` was busy.

    Kinds the recorder never saw (e.g. NVLINK on a cluster without it)
    contribute nothing.
    """
    known = set(recorder.kinds())
    intervals = []
    for kind in kinds:
        if kind not in known:
            continue
        trace = recorder.trace(kind)
        intervals.extend((t0, t1) for t0, t1, _rate in trace.segments)
    return merge_intervals(intervals)


def intersect_seconds(spans_a, spans_b) -> float:
    """Total overlap of two disjoint, sorted (t0, t1) interval lists.

    Half-open semantics: spans that merely share an endpoint have
    measure-zero intersection and contribute nothing — only ``hi >
    lo`` regions count.  Inputs must each be pre-merged (e.g. by
    :func:`merge_intervals`); abutment *within* one list is that
    function's responsibility, not this one's.
    """
    total = 0.0
    i = j = 0
    while i < len(spans_a) and j < len(spans_b):
        lo = max(spans_a[i][0], spans_b[j][0])
        hi = min(spans_a[i][1], spans_b[j][1])
        if hi > lo:
            total += hi - lo
        if spans_a[i][1] <= spans_b[j][1]:
            i += 1
        else:
            j += 1
    return total


def overlap_seconds(recorder: TraceRecorder, kinds_a, kinds_b) -> float:
    """Total time during which both resource classes were simultaneously busy.

    The numerator of the comm/compute overlap ratio: with ``kinds_a``
    the communication kinds and ``kinds_b`` the compute kinds, this is
    the span of the run where K-Interleaving actually hid network
    transfers behind dense compute (Eq. 3's objective).
    """
    return intersect_seconds(merged_busy_intervals(recorder, kinds_a),
                             merged_busy_intervals(recorder, kinds_b))


def busy_timeline(recorder: TraceRecorder, kinds, makespan: float,
                  bucket: float = DEFAULT_BUCKET_SECONDS):
    """Per-bucket fraction of time *any* of ``kinds`` was active.

    This is the DCGM-style GPU-utilization sample the paper's Fig. 11
    plots: a multiprocessor counts as utilized while any kernel
    (compute- or memory-bound) is resident.
    """
    if makespan <= 0:
        return np.zeros(0), np.zeros(0)
    merged = merged_busy_intervals(recorder, kinds)
    num_buckets = max(1, int(np.ceil(makespan / bucket)))
    busy = np.zeros(num_buckets)
    if merged:
        for t0, t1 in merged:
            first = int(t0 // bucket)
            last = min(num_buckets - 1, int((t1 - 1e-15) // bucket))
            for index in range(first, last + 1):
                lo = max(t0, index * bucket)
                hi = min(t1, (index + 1) * bucket)
                if hi > lo:
                    busy[index] += hi - lo
    times = np.arange(num_buckets) * bucket
    return times, np.clip(busy / bucket, 0.0, 1.0)


def busy_fraction(recorder: TraceRecorder, kind: ResourceKind,
                  makespan: float) -> float:
    """Fraction of the run during which the resource was occupied."""
    if makespan <= 0:
        return 0.0
    return min(1.0, recorder.trace(kind).busy_seconds / makespan)


def mean_utilization(recorder: TraceRecorder, kind: ResourceKind,
                     makespan: float) -> float:
    """Average fraction of capacity consumed over the run."""
    trace = recorder.trace(kind)
    return trace.utilization(makespan)
