"""Discrete-event simulator of a GPU-centric training executor.

The engine executes operator DAGs against a set of finite hardware
resources (kernel-launch queue, GPU SMs, HBM, DRAM, PCIe, NVLink,
network).  Concurrent work on one resource shares its capacity
(water-filling processor sharing); the launch queue serializes kernel
issues, which is what makes fragmentary WDL graphs launch-bound.
"""

from repro.sim.resource import Phase, Resource, ResourceKind
from repro.sim.engine import (
    Engine,
    SimResult,
    SimSummary,
    SimTask,
    build_node_resources,
)
from repro.sim.trace import (
    FrozenTrace,
    ResourceTrace,
    TaskRecord,
    TraceRecorder,
)
from repro.sim.export import ascii_gantt, busy_summary, timeline_json
from repro.sim.metrics import (
    bandwidth_timeline,
    busy_fraction,
    utilization_cdf,
    utilization_timeline,
)

__all__ = [
    "Phase",
    "Resource",
    "ResourceKind",
    "Engine",
    "SimResult",
    "SimSummary",
    "SimTask",
    "build_node_resources",
    "FrozenTrace",
    "ResourceTrace",
    "TaskRecord",
    "TraceRecorder",
    "bandwidth_timeline",
    "busy_fraction",
    "utilization_cdf",
    "utilization_timeline",
    "ascii_gantt",
    "busy_summary",
    "timeline_json",
]
