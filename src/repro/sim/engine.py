"""The discrete-event engine executing operator DAGs on shared resources.

Execution model:

* Every :class:`SimTask` runs its :class:`~repro.sim.resource.Phase`
  list in order; a phase occupies exactly one resource.
* A task becomes *ready* once all its predecessors finished; ready
  tasks are admitted to their first phase's resource, waiting FIFO if
  the resource has no free slot (the launch queue has one slot).
* Between events, every resource splits its capacity across occupants
  by water-filling; the engine advances to the earliest phase
  completion, logs the interval, and repeats.

The engine simulates a single worker node in detail.  Distributed
effects (collective communication volume, stragglers from skewed data)
enter through the phase costs computed by :mod:`repro.distributed`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hardware.topology import NodeSpec
from repro.sim.resource import Phase, Resource, ResourceKind
from repro.sim.trace import TaskRecord, TraceRecorder

_EPS = 1e-12


class SimTask:
    """One schedulable unit: an operator instance with sequential phases.

    :param name: identifier for debugging and per-task metrics.
    :param phases: the resource demands, executed in order.  Zero-work
        phases complete immediately and are allowed (useful for pure
        control-flow nodes).
    :param tags: free-form metadata (layer name, op kind, ...), carried
        into results for breakdowns.
    """

    __slots__ = ("name", "phases", "tags", "succs", "indegree",
                 "_phase_index", "remaining", "finish_time", "start_time")

    def __init__(self, name: str, phases: list, tags: dict | None = None):
        self.name = name
        self.phases = list(phases)
        self.tags = tags or {}
        self.succs: list = []
        self.indegree = 0
        self._phase_index = 0
        self.remaining = self.phases[0].work if self.phases else 0.0
        self.finish_time: float | None = None
        self.start_time: float | None = None

    @property
    def current_phase(self) -> Phase:
        """The phase the task is currently executing or about to enter."""
        return self.phases[self._phase_index]

    @property
    def done_with_phases(self) -> bool:
        """Whether every phase has completed."""
        return self._phase_index >= len(self.phases)

    def advance_phase(self) -> bool:
        """Move to the next phase; return ``False`` when none remain."""
        self._phase_index += 1
        if self._phase_index >= len(self.phases):
            return False
        self.remaining = self.current_phase.work
        return True

    def depends_on(self, other: "SimTask") -> None:
        """Declare that this task cannot start before ``other`` finishes."""
        other.succs.append(self)
        self.indegree += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimTask({self.name!r}, phases={len(self.phases)})"


@dataclass
class SimSummary:
    """Headline numbers of one engine run (a ``Stats`` object).

    The mergeable summary telemetry exports; ``merge`` composes two
    runs sequentially (makespans and counts add, per-resource busy
    time and work add).
    """

    makespan: float
    task_count: int
    event_count: int
    busy_seconds: dict = field(default_factory=dict)
    work_done: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict snapshot for telemetry export and benchmarks."""
        return {
            "makespan": self.makespan,
            "task_count": self.task_count,
            "event_count": self.event_count,
            "busy_seconds": dict(self.busy_seconds),
            "work_done": dict(self.work_done),
        }

    def merge(self, other: "SimSummary") -> "SimSummary":
        """Sequential composition of two runs into one summary."""
        busy = dict(self.busy_seconds)
        for kind, seconds in other.busy_seconds.items():
            busy[kind] = busy.get(kind, 0.0) + seconds
        work = dict(self.work_done)
        for kind, units in other.work_done.items():
            work[kind] = work.get(kind, 0.0) + units
        return SimSummary(
            makespan=self.makespan + other.makespan,
            task_count=self.task_count + other.task_count,
            event_count=self.event_count + other.event_count,
            busy_seconds=busy, work_done=work)


@dataclass
class SimResult:
    """Outcome of one engine run."""

    makespan: float
    recorder: TraceRecorder
    task_count: int
    event_count: int
    finish_times: dict = field(default_factory=dict)
    #: populated when the engine ran with ``record_tasks=True``.
    task_records: list = field(default_factory=list)
    #: run provenance manifest (see :mod:`repro.telemetry.provenance`),
    #: stamped by the :func:`repro.api.run` facade.
    provenance: dict = field(default_factory=dict)

    def busy_fraction(self, kind: ResourceKind) -> float:
        """Fraction of the makespan the resource was occupied at all."""
        if self.makespan <= 0:
            return 0.0
        return min(1.0, self.recorder.trace(kind).busy_seconds / self.makespan)

    def mean_rate(self, kind: ResourceKind) -> float:
        """Average sustained rate on the resource over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.recorder.trace(kind).work_done / self.makespan

    def summary(self) -> SimSummary:
        """The mergeable :class:`SimSummary` of this run."""
        return SimSummary(
            makespan=self.makespan,
            task_count=self.task_count,
            event_count=self.event_count,
            busy_seconds={kind.value:
                          self.recorder.trace(kind).busy_seconds
                          for kind in self.recorder.kinds()},
            work_done={kind.value: self.recorder.trace(kind).work_done
                       for kind in self.recorder.kinds()})


def build_node_resources(node: NodeSpec, launch_slots: int = 4,
                         net_efficiency: float = 0.35,
                         pcie_efficiency: float = 0.5) -> dict:
    """Instantiate the per-worker resource set for a cluster node.

    One worker owns one GPU; the host-side resources (DRAM bandwidth,
    PCIe lanes, NIC) are divided evenly among the node's workers, which
    is how co-located workers contend in practice.

    ``launch_slots`` models the framework's inter-op parallelism (TF
    executors dispatch from a small thread pool); ``net_efficiency`` is
    the achievable fraction of NIC line rate for collective traffic
    (protocol overhead, incast, synchronization).
    """
    share = max(1, node.gpus_per_node)
    resources = {
        ResourceKind.LAUNCH: Resource(
            ResourceKind.LAUNCH, capacity=float(launch_slots),
            slots=launch_slots),
        ResourceKind.CPU: Resource(
            ResourceKind.CPU, capacity=node.cpu.fp32_flops / share),
        ResourceKind.GPU_SM: Resource(
            ResourceKind.GPU_SM, capacity=node.gpu.fp32_flops),
        ResourceKind.HBM: Resource(
            ResourceKind.HBM, capacity=node.gpu.hbm_bandwidth),
        ResourceKind.DRAM: Resource(
            ResourceKind.DRAM, capacity=node.dram.bandwidth / share),
        ResourceKind.PCIE: Resource(
            ResourceKind.PCIE,
            capacity=node.pcie.bandwidth * pcie_efficiency),
        ResourceKind.NET: Resource(
            ResourceKind.NET,
            capacity=node.network.bandwidth * net_efficiency / share),
    }
    if node.nvlink is not None:
        resources[ResourceKind.NVLINK] = Resource(
            ResourceKind.NVLINK, capacity=node.nvlink.bandwidth)
    return resources


class Engine:
    """Runs a set of :class:`SimTask` DAG nodes to completion."""

    def __init__(self, resources: dict, record_trace: bool = True):
        """:param resources: mapping of kind -> :class:`Resource`."""
        self.resources = resources
        self.record_trace = record_trace

    def run(self, tasks: list, keep_finish_times: bool = False,
            record_tasks: bool = False, injector=None) -> SimResult:
        """Execute ``tasks`` and return timing plus utilization traces.

        With ``record_tasks=True`` the result additionally carries one
        :class:`~repro.sim.trace.TaskRecord` per task (dependency
        names, per-phase execution segments) — the raw feed for
        :mod:`repro.telemetry`'s trace export and critical-path
        analysis.  Purely additive: scheduling decisions are identical
        either way.

        ``injector`` (a :class:`~repro.faults.inject.FaultInjector`)
        perturbs the run: per-kind capacity scaling over fault windows
        (stragglers, degraded links, crash blackouts) and, at each
        crash, kill-and-requeue of every in-flight task — the current
        phase's partial progress is lost and the task re-enters its
        resource queue.  Event stepping is exact: time advances to the
        earliest of the next phase completion and the next fault
        boundary, so capacity changes never smear across a window edge.

        Raises :class:`RuntimeError` on dependency cycles (detected as a
        stall with unfinished tasks) and :class:`KeyError` when a phase
        references a resource kind this engine was not built with.
        """
        for resource in self.resources.values():
            resource.active.clear()
            resource.queue.clear()
        recorder = TraceRecorder(
            {kind: res.capacity for kind, res in self.resources.items()})
        now = 0.0
        events = 0
        finished = 0
        total = len(tasks)
        running: set = set()
        records: list = []
        segment_start: dict = {}  # task -> current segment's start time
        segments: dict = {}  # task -> [(kind value, t0, t1), ...]
        pred_names: dict = {}
        if record_tasks:
            pred_names = {id(task): [] for task in tasks}
            for task in tasks:
                for succ in task.succs:
                    pred_names[id(succ)].append(task.name)

        def begin_segment(task: SimTask) -> None:
            if record_tasks:
                segment_start[id(task)] = now

        def end_segment(task: SimTask) -> None:
            if record_tasks:
                start = segment_start.pop(id(task))
                segments.setdefault(id(task), []).append(
                    (task.current_phase.kind.value, start, now))

        def admit(task: SimTask) -> None:
            while True:
                if task.done_with_phases or not task.phases:
                    complete(task)
                    return
                if task.current_phase.work <= 0:
                    if not task.advance_phase():
                        complete(task)
                        return
                    continue
                break
            resource = self.resources[task.current_phase.kind]
            if resource.has_free_slot():
                resource.active.append(task)
                running.add(task)
                begin_segment(task)
                if task.start_time is None:
                    task.start_time = now
            else:
                resource.queue.append(task)
                if task.start_time is None:
                    task.start_time = now

        def complete(task: SimTask) -> None:
            nonlocal finished
            task.finish_time = now
            finished += 1
            if record_tasks:
                records.append(TaskRecord(
                    name=task.name,
                    start=task.start_time if task.start_time is not None
                    else now,
                    end=now,
                    preds=tuple(pred_names.get(id(task), ())),
                    tags=dict(task.tags),
                    segments=tuple(segments.pop(id(task), ()))))
            for succ in task.succs:
                succ.indegree -= 1
                if succ.indegree == 0:
                    admit(succ)

        # Snapshot the initial ready set first: admitting a zero-work
        # task can cascade completions that drop other tasks' indegree
        # to zero, and those are already admitted by the cascade.
        initially_ready = [task for task in tasks if task.indegree == 0]
        for task in initially_ready:
            admit(task)

        def kill_in_flight() -> int:
            """Crash semantics: every in-flight task loses its current
            phase's progress and re-enters its resource queue."""
            killed = 0
            for resource in self.resources.values():
                for task in list(resource.active):
                    end_segment(task)  # the aborted occupancy stays visible
                    task.remaining = task.current_phase.work
                    resource.active.remove(task)
                    running.discard(task)
                    resource.queue.append(task)
                    killed += 1
                while resource.queue and resource.has_free_slot():
                    queued = resource.queue.pop(0)
                    resource.active.append(queued)
                    running.add(queued)
                    begin_segment(queued)
                    if queued.start_time is None:
                        queued.start_time = now
            return killed

        while running:
            events += 1
            # Allocate rates per resource and find the earliest completion.
            rates: dict = {}
            totals: dict = {}
            dt = math.inf
            for kind, resource in self.resources.items():
                if not resource.active:
                    continue
                scale = injector.scale(kind, now) if injector else 1.0
                allocation = resource.allocate_rates(scale)
                totals[kind] = sum(allocation.values())
                for task, rate in allocation.items():
                    rates[task] = rate
                    if rate > 0:
                        dt = min(dt, task.remaining / rate)
            if injector is not None:
                boundary = injector.next_boundary(now)
                if math.isfinite(boundary):
                    dt = min(dt, max(boundary - now, 0.0))
            if not math.isfinite(dt):
                raise RuntimeError("simulation stalled with running tasks")
            dt = max(dt, 0.0)
            if dt > 0:
                recorder.add_interval(now, now + dt, totals)
            previous = now
            now += dt

            completed_phase = []
            for task, rate in rates.items():
                task.remaining -= rate * dt
                if task.remaining <= _EPS * max(1.0, rate):
                    completed_phase.append(task)
            for task in completed_phase:
                resource = self.resources[task.current_phase.kind]
                end_segment(task)
                resource.active.remove(task)
                running.discard(task)
                while resource.queue and resource.has_free_slot():
                    queued = resource.queue.pop(0)
                    resource.active.append(queued)
                    running.add(queued)
                    begin_segment(queued)
                    if queued.start_time is None:
                        queued.start_time = now
                if task.advance_phase():
                    admit(task)
                else:
                    complete(task)

            if injector is not None:
                for event in injector.crashes_between(previous, now):
                    injector.record(event, now, kill_in_flight())

        if finished != total:
            stuck = total - finished
            raise RuntimeError(
                f"{stuck} task(s) never became ready; dependency cycle?")
        finish_times = {}
        if keep_finish_times:
            finish_times = {task.name: task.finish_time for task in tasks}
        return SimResult(makespan=now, recorder=recorder,
                         task_count=total, event_count=events,
                         finish_times=finish_times, task_records=records)
