"""The discrete-event engine executing operator DAGs on shared resources.

Execution model:

* Every :class:`SimTask` runs its :class:`~repro.sim.resource.Phase`
  list in order; a phase occupies exactly one resource.
* A task becomes *ready* once all its predecessors finished; ready
  tasks are admitted to their first phase's resource, waiting FIFO if
  the resource has no free slot (the launch queue has one slot).
* Between events, every resource splits its capacity across occupants
  by water-filling; the engine advances to the earliest phase
  completion, logs the interval, and repeats.

The engine simulates a single worker node in detail.  Distributed
effects (collective communication volume, stragglers from skewed data)
enter through the phase costs computed by :mod:`repro.distributed`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.hardware.topology import NodeSpec
from repro.sim.resource import Phase, Resource, ResourceKind
from repro.sim.trace import TaskRecord, TraceRecorder

_EPS = 1e-12

#: Initial capacity of the vectorized engine's slot arrays; grows by
#: doubling when concurrency exceeds it.
_MIN_SLOTS = 64


class SimTask:
    """One schedulable unit: an operator instance with sequential phases.

    :param name: identifier for debugging and per-task metrics.
    :param phases: the resource demands, executed in order.  Zero-work
        phases complete immediately and are allowed (useful for pure
        control-flow nodes).
    :param tags: free-form metadata (layer name, op kind, ...), carried
        into results for breakdowns.
    """

    __slots__ = ("name", "phases", "tags", "succs", "indegree",
                 "_phase_index", "remaining", "finish_time", "start_time",
                 "_slot", "_cap")

    def __init__(self, name: str, phases: list, tags: dict | None = None):
        self.name = name
        self.phases = list(phases)
        self.tags = tags or {}
        self.succs: list = []
        self.indegree = 0
        self._phase_index = 0
        self.remaining = self.phases[0].work if self.phases else 0.0
        self.finish_time: float | None = None
        self.start_time: float | None = None
        #: slot index in the vectorized engine's arrays (-1 = inactive)
        #: and the current phase's max_rate, both engine-managed.
        self._slot = -1
        self._cap = math.inf

    @property
    def current_phase(self) -> Phase:
        """The phase the task is currently executing or about to enter."""
        return self.phases[self._phase_index]

    @property
    def done_with_phases(self) -> bool:
        """Whether every phase has completed."""
        return self._phase_index >= len(self.phases)

    def advance_phase(self) -> bool:
        """Move to the next phase; return ``False`` when none remain."""
        self._phase_index += 1
        if self._phase_index >= len(self.phases):
            return False
        self.remaining = self.current_phase.work
        return True

    def depends_on(self, other: "SimTask") -> None:
        """Declare that this task cannot start before ``other`` finishes."""
        other.succs.append(self)
        self.indegree += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimTask({self.name!r}, phases={len(self.phases)})"


@dataclass
class SimSummary:
    """Headline numbers of one engine run (a ``Stats`` object).

    The mergeable summary telemetry exports; ``merge`` composes two
    runs sequentially (makespans and counts add, per-resource busy
    time and work add).
    """

    makespan: float
    task_count: int
    event_count: int
    busy_seconds: dict = field(default_factory=dict)
    work_done: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict snapshot for telemetry export and benchmarks."""
        return {
            "makespan": self.makespan,
            "task_count": self.task_count,
            "event_count": self.event_count,
            "busy_seconds": dict(self.busy_seconds),
            "work_done": dict(self.work_done),
        }

    def merge(self, other: "SimSummary") -> "SimSummary":
        """Sequential composition of two runs into one summary."""
        busy = dict(self.busy_seconds)
        for kind, seconds in other.busy_seconds.items():
            busy[kind] = busy.get(kind, 0.0) + seconds
        work = dict(self.work_done)
        for kind, units in other.work_done.items():
            work[kind] = work.get(kind, 0.0) + units
        return SimSummary(
            makespan=self.makespan + other.makespan,
            task_count=self.task_count + other.task_count,
            event_count=self.event_count + other.event_count,
            busy_seconds=busy, work_done=work)


@dataclass
class SimResult:
    """Outcome of one engine run."""

    makespan: float
    recorder: TraceRecorder
    task_count: int
    event_count: int
    finish_times: dict = field(default_factory=dict)
    #: populated when the engine ran with ``record_tasks=True``.
    task_records: list = field(default_factory=list)
    #: run provenance manifest (see :mod:`repro.telemetry.provenance`),
    #: stamped by the :func:`repro.api.run` facade.
    provenance: dict = field(default_factory=dict)

    def busy_fraction(self, kind: ResourceKind) -> float:
        """Fraction of the makespan the resource was occupied at all."""
        if self.makespan <= 0:
            return 0.0
        return min(1.0, self.recorder.trace(kind).busy_seconds / self.makespan)

    def mean_rate(self, kind: ResourceKind) -> float:
        """Average sustained rate on the resource over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.recorder.trace(kind).work_done / self.makespan

    def summary(self) -> SimSummary:
        """The mergeable :class:`SimSummary` of this run."""
        return SimSummary(
            makespan=self.makespan,
            task_count=self.task_count,
            event_count=self.event_count,
            busy_seconds={kind.value:
                          self.recorder.trace(kind).busy_seconds
                          for kind in self.recorder.kinds()},
            work_done={kind.value: self.recorder.trace(kind).work_done
                       for kind in self.recorder.kinds()})


def build_node_resources(node: NodeSpec, launch_slots: int = 4,
                         net_efficiency: float = 0.35,
                         pcie_efficiency: float = 0.5) -> dict:
    """Instantiate the per-worker resource set for a cluster node.

    One worker owns one GPU; the host-side resources (DRAM bandwidth,
    PCIe lanes, NIC) are divided evenly among the node's workers, which
    is how co-located workers contend in practice.

    ``launch_slots`` models the framework's inter-op parallelism (TF
    executors dispatch from a small thread pool); ``net_efficiency`` is
    the achievable fraction of NIC line rate for collective traffic
    (protocol overhead, incast, synchronization).
    """
    share = max(1, node.gpus_per_node)
    resources = {
        ResourceKind.LAUNCH: Resource(
            ResourceKind.LAUNCH, capacity=float(launch_slots),
            slots=launch_slots),
        ResourceKind.CPU: Resource(
            ResourceKind.CPU, capacity=node.cpu.fp32_flops / share),
        ResourceKind.GPU_SM: Resource(
            ResourceKind.GPU_SM, capacity=node.gpu.fp32_flops),
        ResourceKind.HBM: Resource(
            ResourceKind.HBM, capacity=node.gpu.hbm_bandwidth),
        ResourceKind.DRAM: Resource(
            ResourceKind.DRAM, capacity=node.dram.bandwidth / share),
        ResourceKind.PCIE: Resource(
            ResourceKind.PCIE,
            capacity=node.pcie.bandwidth * pcie_efficiency),
        ResourceKind.NET: Resource(
            ResourceKind.NET,
            capacity=node.network.bandwidth * net_efficiency / share),
    }
    if node.nvlink is not None:
        resources[ResourceKind.NVLINK] = Resource(
            ResourceKind.NVLINK, capacity=node.nvlink.bandwidth)
    return resources


class _Lane:
    """Cached rate allocation of one resource (vectorized engine).

    The legacy loop recomputed the water-filling allocation of every
    occupied resource on every event; the allocation is a pure function
    of the occupant list and the fault scale, so a lane caches it and
    only recomputes when membership or scale actually changed (the
    ``dirty`` flag).  ``alloc_tasks``/``alloc_rates`` preserve the
    legacy allocation-dict insertion order — capped tasks first, per
    water-filling iteration, then the uncapped fair-share rest — which
    the engine relies on to emit completions in byte-identical order.
    """

    __slots__ = ("resource", "capacity", "alloc_tasks", "alloc_rates",
                 "total", "scale", "dirty", "live", "busy", "work",
                 "trace", "seg_append")

    def __init__(self, resource: Resource, trace):
        self.resource = resource
        self.capacity = resource.capacity
        self.alloc_tasks: list = []
        self.alloc_rates: list = []
        self.total = 0.0
        self.scale = 1.0
        self.dirty = False
        #: whether the lane currently has occupants (mirrors
        #: ``resource.active`` being non-empty after the last rebuild);
        #: live lanes are the only ones the trace step visits.
        self.live = False
        # Trace accumulators, folded in event order exactly as the
        # legacy ``TraceRecorder.add_interval`` would; flushed into the
        # ResourceTrace at the end of the run.
        self.busy = 0.0
        self.work = 0.0
        self.trace = trace
        self.seg_append = trace.segments.append


class Engine:
    """Runs a set of :class:`SimTask` DAG nodes to completion.

    Two equivalent execution loops are available:

    * the **vectorized** hot path (default) keeps every active task's
      remaining work in a flat numpy slot array, caches per-resource
      rate allocations until membership changes, and advances events
      with a handful of whole-array operations;
    * the **legacy** per-event Python scan, kept as the executable
      specification the equivalence suite checks the vectorized loop
      against, bit for bit.

    Both produce byte-identical results — makespans, utilization
    traces, task records and fault kill/requeue ordering.
    """

    def __init__(self, resources: dict, record_trace: bool = True,
                 vectorized: bool = True):
        """:param resources: mapping of kind -> :class:`Resource`.
        :param vectorized: select the numpy hot path (default) or the
            legacy reference loop; results are bit-identical.
        """
        self.resources = resources
        self.record_trace = record_trace
        self.vectorized = vectorized

    def run(self, tasks: list, keep_finish_times: bool = False,
            record_tasks: bool = False, injector=None) -> SimResult:
        """Execute ``tasks`` and return timing plus utilization traces.

        With ``record_tasks=True`` the result additionally carries one
        :class:`~repro.sim.trace.TaskRecord` per task (dependency
        names, per-phase execution segments) — the raw feed for
        :mod:`repro.telemetry`'s trace export and critical-path
        analysis.  Purely additive: scheduling decisions are identical
        either way.

        ``injector`` (a :class:`~repro.faults.inject.FaultInjector`)
        perturbs the run: per-kind capacity scaling over fault windows
        (stragglers, degraded links, crash blackouts) and, at each
        crash, kill-and-requeue of every in-flight task — the current
        phase's partial progress is lost and the task re-enters its
        resource queue.  Event stepping is exact: time advances to the
        earliest of the next phase completion and the next fault
        boundary, so capacity changes never smear across a window edge.

        Raises :class:`RuntimeError` on dependency cycles (detected as a
        stall with unfinished tasks) and :class:`KeyError` when a phase
        references a resource kind this engine was not built with.
        """
        if self.vectorized:
            return self._run_vectorized(tasks, keep_finish_times,
                                        record_tasks, injector)
        return self._run_legacy(tasks, keep_finish_times,
                                record_tasks, injector)

    def _run_legacy(self, tasks: list, keep_finish_times: bool = False,
                    record_tasks: bool = False, injector=None) -> SimResult:
        """The original per-event Python scan (reference semantics)."""
        for resource in self.resources.values():
            resource.active.clear()
            resource.queue.clear()
        recorder = TraceRecorder(
            {kind: res.capacity for kind, res in self.resources.items()})
        now = 0.0
        events = 0
        finished = 0
        total = len(tasks)
        running: set = set()
        records: list = []
        segment_start: dict = {}  # task -> current segment's start time
        segments: dict = {}  # task -> [(kind value, t0, t1), ...]
        pred_names: dict = {}
        if record_tasks:
            pred_names = {id(task): [] for task in tasks}
            for task in tasks:
                for succ in task.succs:
                    pred_names[id(succ)].append(task.name)

        def begin_segment(task: SimTask) -> None:
            if record_tasks:
                segment_start[id(task)] = now

        def end_segment(task: SimTask) -> None:
            if record_tasks:
                start = segment_start.pop(id(task))
                segments.setdefault(id(task), []).append(
                    (task.current_phase.kind.value, start, now))

        def admit(task: SimTask) -> None:
            while True:
                if task.done_with_phases or not task.phases:
                    complete(task)
                    return
                if task.current_phase.work <= 0:
                    if not task.advance_phase():
                        complete(task)
                        return
                    continue
                break
            resource = self.resources[task.current_phase.kind]
            if resource.has_free_slot():
                resource.active.append(task)
                running.add(task)
                begin_segment(task)
                if task.start_time is None:
                    task.start_time = now
            else:
                resource.queue.append(task)
                if task.start_time is None:
                    task.start_time = now

        def complete(task: SimTask) -> None:
            nonlocal finished
            task.finish_time = now
            finished += 1
            if record_tasks:
                records.append(TaskRecord(
                    name=task.name,
                    start=task.start_time if task.start_time is not None
                    else now,
                    end=now,
                    preds=tuple(pred_names.get(id(task), ())),
                    tags=dict(task.tags),
                    segments=tuple(segments.pop(id(task), ()))))
            for succ in task.succs:
                succ.indegree -= 1
                if succ.indegree == 0:
                    admit(succ)

        # Snapshot the initial ready set first: admitting a zero-work
        # task can cascade completions that drop other tasks' indegree
        # to zero, and those are already admitted by the cascade.
        initially_ready = [task for task in tasks if task.indegree == 0]
        for task in initially_ready:
            admit(task)

        def kill_in_flight() -> int:
            """Crash semantics: every in-flight task loses its current
            phase's progress and re-enters its resource queue."""
            killed = 0
            for resource in self.resources.values():
                for task in list(resource.active):
                    end_segment(task)  # the aborted occupancy stays visible
                    task.remaining = task.current_phase.work
                    resource.active.remove(task)
                    running.discard(task)
                    resource.queue.append(task)
                    killed += 1
                while resource.queue and resource.has_free_slot():
                    queued = resource.queue.pop(0)
                    resource.active.append(queued)
                    running.add(queued)
                    begin_segment(queued)
                    if queued.start_time is None:
                        queued.start_time = now
            return killed

        while running:
            events += 1
            # Allocate rates per resource and find the earliest completion.
            rates: dict = {}
            totals: dict = {}
            dt = math.inf
            for kind, resource in self.resources.items():
                if not resource.active:
                    continue
                scale = injector.scale(kind, now) if injector else 1.0
                allocation = resource.allocate_rates(scale)
                totals[kind] = sum(allocation.values())
                for task, rate in allocation.items():
                    rates[task] = rate
                    if rate > 0:
                        dt = min(dt, task.remaining / rate)
            if injector is not None:
                boundary = injector.next_boundary(now)
                if math.isfinite(boundary):
                    dt = min(dt, max(boundary - now, 0.0))
            if not math.isfinite(dt):
                raise RuntimeError("simulation stalled with running tasks")
            dt = max(dt, 0.0)
            if dt > 0:
                recorder.add_interval(now, now + dt, totals)
            previous = now
            now += dt

            completed_phase = []
            for task, rate in rates.items():
                task.remaining -= rate * dt
                if task.remaining <= _EPS * max(1.0, rate):
                    completed_phase.append(task)
            for task in completed_phase:
                resource = self.resources[task.current_phase.kind]
                end_segment(task)
                resource.active.remove(task)
                running.discard(task)
                while resource.queue and resource.has_free_slot():
                    queued = resource.queue.pop(0)
                    resource.active.append(queued)
                    running.add(queued)
                    begin_segment(queued)
                    if queued.start_time is None:
                        queued.start_time = now
                if task.advance_phase():
                    admit(task)
                else:
                    complete(task)

            if injector is not None:
                for event in injector.crashes_between(previous, now):
                    injector.record(event, now, kill_in_flight())

        if finished != total:
            stuck = total - finished
            raise RuntimeError(
                f"{stuck} task(s) never became ready; dependency cycle?")
        finish_times = {}
        if keep_finish_times:
            finish_times = {task.name: task.finish_time for task in tasks}
        return SimResult(makespan=now, recorder=recorder,
                         task_count=total, event_count=events,
                         finish_times=finish_times, task_records=records)

    def _run_vectorized(self, tasks: list, keep_finish_times: bool = False,
                        record_tasks: bool = False,
                        injector=None) -> SimResult:
        """Numpy hot path; bit-identical to :meth:`_run_legacy`.

        Design (see DESIGN.md "Engine internals"):

        * every *active* task owns a slot in flat float64 arrays
          (``remaining``/``rate``/``thresh``); slots are recycled
          through a free list, so array length tracks peak concurrency,
          not task count.  Inactive slots hold ``remaining = inf`` and
          ``rate = 1.0`` so they are inert under every whole-array op;
        * per-resource allocations live in :class:`_Lane` caches,
          recomputed only when occupancy or the fault scale changes;
        * each event is one fused sweep — divide / min for the next
          completion, multiply / subtract for the work drain, a
          compare + ``flatnonzero`` for completions — instead of the
          O(resources x occupants) Python scan.

        Bitwise equivalence holds because elementwise float64 numpy
        arithmetic (divide, multiply, subtract) rounds identically to
        Python scalar arithmetic, min/compare operations pick values
        without rounding, and every order-sensitive reduction (the
        recorder totals, completion emission) still runs in the legacy
        allocation order.
        """
        resources = self.resources
        res_items = list(resources.items())
        for resource in resources.values():
            resource.active.clear()
            resource.queue.clear()
        recorder = TraceRecorder(
            {kind: res.capacity for kind, res in res_items})
        now = 0.0
        events = 0
        finished = 0
        total = len(tasks)
        running: set = set()
        running_add = running.add
        records: list = []
        segment_start: dict = {}
        segments: dict = {}
        pred_names: dict = {}
        if record_tasks:
            pred_names = {id(task): [] for task in tasks}
            for task in tasks:
                for succ in task.succs:
                    pred_names[id(succ)].append(task.name)

        # --- flat slot state -------------------------------------------------
        cap = _MIN_SLOTS
        remaining = np.full(cap, np.inf)
        rate = np.ones(cap)
        thresh = np.full(cap, -1.0)
        buf_eta = np.empty(cap)
        buf_tmp = np.empty(cap)
        buf_cmp = np.empty(cap, dtype=bool)
        slot_task: list = [None] * cap
        free_slots = list(range(cap - 1, -1, -1))
        lanes = {kind: _Lane(res, recorder.trace(kind))
                 for kind, res in res_items}
        #: ``(resource, lane)`` per kind, so hot paths pay one dict
        #: lookup instead of two.
        kind_info = {kind: (res, lanes[kind]) for kind, res in res_items}
        #: lanes whose allocation must be recomputed before the next
        #: event (appended at most once each — the ``dirty`` flag).
        dirty_lanes: list = []
        dirty_append = dirty_lanes.append
        #: lanes with occupants, maintained by ``rebuild``; the per-event
        #: trace step walks these instead of re-deriving a totals dict.
        live_lanes: list = []

        def grow() -> None:
            nonlocal cap, remaining, rate, thresh, buf_eta, buf_tmp, buf_cmp
            nonlocal eta_argmin, eta_item, cmp_nonzero
            new_cap = cap * 2
            remaining = np.concatenate(
                [remaining, np.full(cap, np.inf)])
            rate = np.concatenate([rate, np.ones(cap)])
            thresh = np.concatenate([thresh, np.full(cap, -1.0)])
            buf_eta = np.empty(new_cap)
            buf_tmp = np.empty(new_cap)
            buf_cmp = np.empty(new_cap, dtype=bool)
            eta_argmin = buf_eta.argmin
            eta_item = buf_eta.item
            cmp_nonzero = buf_cmp.nonzero
            slot_task.extend([None] * cap)
            free_slots.extend(range(new_cap - 1, cap - 1, -1))
            cap = new_cap

        def activate(task: SimTask) -> None:
            if not free_slots:
                grow()
            slot = free_slots.pop()
            task._slot = slot
            slot_task[slot] = task
            remaining[slot] = task.remaining
            running.add(task)

        def deactivate(task: SimTask) -> None:
            slot = task._slot
            task._slot = -1
            slot_task[slot] = None
            remaining[slot] = np.inf
            rate[slot] = 1.0
            thresh[slot] = -1.0
            free_slots.append(slot)
            running.discard(task)

        def rebuild(lane: _Lane) -> None:
            """Recompute one resource's allocation (legacy water-fill).

            Mirrors ``Resource.allocate_rates`` op for op — same
            iteration structure, same sequential budget subtraction —
            so rates and their order are bit-identical; then scatters
            rates and completion thresholds into the slot arrays.
            Also maintains ``live_lanes`` membership and ``lane.total``
            so the trace step needs no per-event recomputation.
            """
            lane.dirty = False
            resource = lane.resource
            active = resource.active
            if not active:
                lane.alloc_tasks = []
                lane.alloc_rates = []
                lane.total = 0.0
                if lane.live:
                    live_lanes.remove(lane)
                    lane.live = False
                return
            scale = lane.scale
            if scale == 1.0:
                budget = lane.capacity
                if len(active) == 1:
                    # The dominant case at this workload's occupancy:
                    # one occupant, full capacity.  ``fair = budget/1``
                    # is exact, so the water-fill collapses to one min.
                    task = active[0]
                    max_rate = task._cap
                    task_rate = max_rate if max_rate < budget else budget
                    lane.alloc_tasks = [task]
                    lane.alloc_rates = [task_rate]
                    lane.total = task_rate
                    slot = task._slot
                    rate[slot] = task_rate
                    thresh[slot] = _EPS * (task_rate if task_rate > 1.0
                                           else 1.0)
                    if not lane.live:
                        live_lanes.append(lane)
                        lane.live = True
                    return
                if len(active) == 2:
                    # Two occupants: the water-fill has four outcomes
                    # (neither / both / either one capped); spelling
                    # them out skips the general loop while keeping
                    # the same float ops in the same order — capped
                    # tasks are still emitted first.
                    first, second = active
                    cap_first = first._cap
                    cap_second = second._cap
                    fair = budget / 2
                    if cap_first < fair:
                        if cap_second < fair:
                            alloc_tasks = [first, second]
                            alloc_rates = [cap_first, cap_second]
                            total = cap_first + cap_second
                        else:
                            left = budget - cap_first
                            if left <= 0:
                                rate_second = 1e-12
                            elif cap_second < left:
                                rate_second = cap_second
                            else:
                                rate_second = left
                            alloc_tasks = [first, second]
                            alloc_rates = [cap_first, rate_second]
                            total = cap_first + rate_second
                    elif cap_second < fair:
                        left = budget - cap_second
                        if left <= 0:
                            rate_first = 1e-12
                        elif cap_first < left:
                            rate_first = cap_first
                        else:
                            rate_first = left
                        alloc_tasks = [second, first]
                        alloc_rates = [cap_second, rate_first]
                        total = cap_second + rate_first
                    else:
                        alloc_tasks = [first, second]
                        alloc_rates = [fair, fair]
                        total = fair + fair
                    lane.alloc_tasks = alloc_tasks
                    lane.alloc_rates = alloc_rates
                    lane.total = total
                    task_rate = alloc_rates[0]
                    slot = alloc_tasks[0]._slot
                    rate[slot] = task_rate
                    thresh[slot] = _EPS * (task_rate if task_rate > 1.0
                                           else 1.0)
                    task_rate = alloc_rates[1]
                    slot = alloc_tasks[1]._slot
                    rate[slot] = task_rate
                    thresh[slot] = _EPS * (task_rate if task_rate > 1.0
                                           else 1.0)
                    if not lane.live:
                        live_lanes.append(lane)
                        lane.live = True
                    return
            elif scale <= 0.0:
                budget = None
            else:
                budget = lane.capacity * min(1.0, float(scale))
            if budget is None:
                alloc_tasks = list(active)
                alloc_rates = [0.0] * len(active)
            else:
                # Single-pass form of the legacy two-comprehension
                # water-fill: capped tasks are appended (and their
                # rates deducted) in the same pending order, the
                # survivors filtered with the same ``>= fair`` test,
                # so every float and every position is unchanged.
                pending = active
                alloc_tasks = []
                alloc_rates = []
                while True:
                    fair = budget / len(pending)
                    survivors = []
                    any_capped = False
                    for task in pending:
                        max_rate = task._cap
                        if max_rate < fair:
                            alloc_tasks.append(task)
                            alloc_rates.append(max_rate)
                            budget -= max_rate
                            any_capped = True
                        else:
                            survivors.append(task)
                    if not any_capped:
                        alloc_tasks.extend(pending)
                        alloc_rates.extend([fair] * len(pending))
                        break
                    if budget <= 0:
                        alloc_tasks.extend(survivors)
                        alloc_rates.extend([1e-12] * len(survivors))
                        break
                    if not survivors:
                        break
                    pending = survivors
            lane.alloc_tasks = alloc_tasks
            lane.alloc_rates = alloc_rates
            lane.total = sum(alloc_rates)
            for task, task_rate in zip(alloc_tasks, alloc_rates):
                slot = task._slot
                rate[slot] = task_rate
                thresh[slot] = _EPS * (task_rate if task_rate > 1.0 else 1.0)
            if not lane.live:
                live_lanes.append(lane)
                lane.live = True

        def begin_segment(task: SimTask) -> None:
            if record_tasks:
                segment_start[id(task)] = now

        def end_segment(task: SimTask) -> None:
            if record_tasks:
                start = segment_start.pop(id(task))
                segments.setdefault(id(task), []).append(
                    (task.current_phase.kind.value, start, now))

        def admit(task: SimTask) -> None:
            # Unrolled form of the legacy preamble (``done_with_phases``
            # / ``current_phase`` / ``advance_phase``), manipulating
            # ``_phase_index`` directly: zero-work phases complete
            # immediately, in the same order.
            phases = task.phases
            count = len(phases)
            index = task._phase_index
            while True:
                if index >= count:
                    complete(task)
                    return
                phase = phases[index]
                if phase.work <= 0:
                    index += 1
                    task._phase_index = index
                    if index >= count:
                        complete(task)
                        return
                    task.remaining = phases[index].work
                    continue
                break
            resource, lane = kind_info[phase.kind]
            task._cap = phase.max_rate
            if resource.slots is None or len(resource.active) < resource.slots:
                resource.active.append(task)
                if not lane.dirty:
                    lane.dirty = True
                    dirty_append(lane)
                # activate(task), inlined
                if not free_slots:
                    grow()
                slot = free_slots.pop()
                task._slot = slot
                slot_task[slot] = task
                remaining[slot] = task.remaining
                running_add(task)
                if record_tasks:
                    segment_start[id(task)] = now
                if task.start_time is None:
                    task.start_time = now
            else:
                resource.queue.append(task)
                if task.start_time is None:
                    task.start_time = now

        def complete(task: SimTask) -> None:
            nonlocal finished
            task.finish_time = now
            finished += 1
            if record_tasks:
                records.append(TaskRecord(
                    name=task.name,
                    start=task.start_time if task.start_time is not None
                    else now,
                    end=now,
                    preds=tuple(pred_names.get(id(task), ())),
                    tags=dict(task.tags),
                    segments=tuple(segments.pop(id(task), ()))))
            for succ in task.succs:
                succ.indegree -= 1
                if succ.indegree == 0:
                    admit(succ)

        # Snapshot the initial ready set first: admitting a zero-work
        # task can cascade completions that drop other tasks' indegree
        # to zero, and those are already admitted by the cascade.
        initially_ready = [task for task in tasks if task.indegree == 0]
        for task in initially_ready:
            admit(task)

        def kill_in_flight() -> int:
            """Crash semantics: every in-flight task loses its current
            phase's progress and re-enters its resource queue."""
            killed = 0
            for kind, resource in res_items:
                changed = False
                for task in list(resource.active):
                    end_segment(task)  # the aborted occupancy stays visible
                    task.remaining = task.current_phase.work
                    resource.active.remove(task)
                    deactivate(task)
                    resource.queue.append(task)
                    killed += 1
                    changed = True
                while resource.queue and resource.has_free_slot():
                    queued = resource.queue.pop(0)
                    resource.active.append(queued)
                    activate(queued)
                    begin_segment(queued)
                    if queued.start_time is None:
                        queued.start_time = now
                    changed = True
                if changed:
                    lane = lanes[kind]
                    if not lane.dirty:
                        lane.dirty = True
                        dirty_append(lane)
            return killed

        isfinite = math.isfinite
        np_divide = np.divide
        np_multiply = np.multiply
        np_subtract = np.subtract
        np_less_equal = np.less_equal
        running_discard = running.discard
        free_append = free_slots.append
        # 0-d staging array for the scalar dt: feeding an ndarray to the
        # ufunc skips the per-call Python-float boxing.
        dt_arr = np.empty(())
        eta_argmin = buf_eta.argmin
        eta_item = buf_eta.item
        cmp_nonzero = buf_cmp.nonzero
        with np.errstate(divide="ignore"):
            while running:
                events += 1
                if injector is not None:
                    for kind, resource in res_items:
                        if resource.active:
                            lane = lanes[kind]
                            scale = injector.scale(kind, now)
                            if scale != lane.scale:
                                lane.scale = scale
                                if not lane.dirty:
                                    lane.dirty = True
                                    dirty_append(lane)
                if dirty_lanes:
                    for lane in dirty_lanes:
                        rebuild(lane)
                    del dirty_lanes[:]
                np_divide(remaining, rate, out=buf_eta)
                dt = eta_item(eta_argmin())
                if injector is not None:
                    boundary = injector.next_boundary(now)
                    if isfinite(boundary):
                        dt = min(dt, max(boundary - now, 0.0))
                if not isfinite(dt):
                    raise RuntimeError(
                        "simulation stalled with running tasks")
                if dt < 0.0:
                    dt = 0.0
                previous = now
                if dt > 0.0:
                    end = now + dt
                    dtp = end - now
                    if dtp > 0.0:
                        # Legacy ``recorder.add_interval``, unrolled
                        # over the live lanes; same fold order per
                        # kind, so the accumulators round identically.
                        for lane in live_lanes:
                            lane_total = lane.total
                            if lane_total > 0.0:
                                lane.busy += dtp
                                lane.work += lane_total * dtp
                                lane.seg_append((now, end, lane_total))
                    now = end

                dt_arr[...] = dt
                np_multiply(rate, dt_arr, out=buf_tmp)
                np_subtract(remaining, buf_tmp, out=remaining)
                np_less_equal(remaining, thresh, out=buf_cmp)
                hits = cmp_nonzero()[0]
                if hits.shape[0]:
                    if hits.shape[0] == 1:
                        completed_phase = [slot_task[hits.item(0)]]
                    else:
                        # Emit in the legacy order: resources-dict
                        # iteration order, allocation order within.
                        hit_set = {slot_task[index] for index in hits}
                        completed_phase = []
                        for kind, resource in res_items:
                            if resource.active:
                                for task in lanes[kind].alloc_tasks:
                                    if task in hit_set:
                                        completed_phase.append(task)
                    for task in completed_phase:
                        phases = task.phases
                        index = task._phase_index
                        resource, lane = kind_info[phases[index].kind]
                        if record_tasks:
                            end_segment(task)
                        resource.active.remove(task)
                        if resource.active or resource.queue:
                            if not lane.dirty:
                                lane.dirty = True
                                dirty_append(lane)
                        elif lane.dirty:
                            pass  # queued rebuild will clear the lane
                        else:
                            # Lane emptied: clear the allocation inline
                            # instead of queueing a rebuild.
                            lane.alloc_tasks = ()
                            lane.alloc_rates = ()
                            lane.total = 0.0
                            if lane.live:
                                live_lanes.remove(lane)
                                lane.live = False
                        # deactivate(task), inlined
                        slot = task._slot
                        task._slot = -1
                        slot_task[slot] = None
                        remaining[slot] = np.inf
                        rate[slot] = 1.0
                        thresh[slot] = -1.0
                        free_append(slot)
                        running_discard(task)
                        while resource.queue and resource.has_free_slot():
                            queued = resource.queue.pop(0)
                            resource.active.append(queued)
                            activate(queued)
                            begin_segment(queued)
                            if queued.start_time is None:
                                queued.start_time = now
                        # task.advance_phase(), inlined
                        index += 1
                        task._phase_index = index
                        if index < len(phases):
                            task.remaining = phases[index].work
                            admit(task)
                        else:
                            complete(task)

                if injector is not None:
                    for event in injector.crashes_between(previous, now):
                        injector.record(event, now, kill_in_flight())

        # Flush the per-lane trace accumulators into the recorder the
        # callers see; folding happened in the legacy event order, so
        # every float is byte-identical to an add_interval stream.
        for lane in lanes.values():
            lane.trace.busy_seconds = lane.busy
            lane.trace.work_done = lane.work

        if finished != total:
            stuck = total - finished
            raise RuntimeError(
                f"{stuck} task(s) never became ready; dependency cycle?")
        finish_times = {}
        if keep_finish_times:
            finish_times = {task.name: task.finish_time for task in tasks}
        return SimResult(makespan=now, recorder=recorder,
                         task_count=total, event_count=events,
                         finish_times=finish_times, task_records=records)
