"""Trace export: JSON timelines and ASCII Gantt charts.

Production PICASSO ships DCGM/timeline tooling for diagnosing
stragglers; this module provides the equivalent developer-facing
exports over :class:`~repro.sim.trace.TraceRecorder` data.
"""

from __future__ import annotations

import json

from repro.sim.engine import SimResult
from repro.sim.metrics import utilization_timeline

#: Glyph ramp for ASCII utilization levels (empty .. saturated).
_RAMP = " .:-=+*#%@"


def timeline_json(result: SimResult, bucket: float = 0.010) -> str:
    """Serialize per-resource utilization timelines as JSON.

    The schema is ``{"makespan": s, "buckets": {resource:
    {"bucket_seconds": b, "utilization": [..]}}}`` — stable for
    notebook plotting.  The series covers the whole makespan: when the
    run does not divide evenly into buckets, the final partial bucket
    is emitted too, normalized by the time it actually covers (so a
    resource busy to the end reads 1.0 there, not ``width/bucket``).
    """
    payload = {"makespan": result.makespan, "buckets": {}}
    for kind in result.recorder.kinds():
        _times, util = utilization_timeline(result.recorder, kind,
                                            result.makespan, bucket)
        values = [float(value) for value in util]
        if values:
            covered = result.makespan - (len(values) - 1) * bucket
            if 0 < covered < bucket:
                values[-1] = min(1.0, values[-1] * bucket / covered)
        payload["buckets"][kind.value] = {
            "bucket_seconds": bucket,
            "utilization": [round(value, 4) for value in values],
        }
    return json.dumps(payload, indent=2, sort_keys=True)


def ascii_gantt(result: SimResult, width: int = 72,
                kinds: tuple | None = None) -> str:
    """Render per-resource utilization as an ASCII chart.

    One row per resource; each column is a time bucket whose glyph
    encodes the utilization level.  Useful for eyeballing pipeline
    overlap (the Fig. 8 interleaving pictures, in text).
    """
    if width < 8:
        raise ValueError("width must be >= 8")
    if result.makespan <= 0:
        return "(empty trace)"
    bucket = result.makespan / width
    selected = kinds or tuple(result.recorder.kinds())
    label_width = max(len(kind.value) for kind in selected)
    lines = []
    for kind in selected:
        _times, util = utilization_timeline(result.recorder, kind,
                                            result.makespan, bucket)
        glyphs = "".join(
            _RAMP[min(len(_RAMP) - 1, int(value * (len(_RAMP) - 1)
                                          + 0.5))]
            for value in util[:width])
        lines.append(f"{kind.value.ljust(label_width)} |{glyphs}|")
    scale = (f"{' ' * label_width}  0s{' ' * (width - 12)}"
             f"{result.makespan:.3f}s")
    lines.append(scale)
    return "\n".join(lines)


def busy_summary(result: SimResult) -> dict:
    """Per-resource busy fraction and mean utilization, one dict."""
    summary = {}
    for kind in result.recorder.kinds():
        trace = result.recorder.trace(kind)
        summary[kind.value] = {
            "busy_fraction": round(
                min(1.0, trace.busy_seconds
                    / result.makespan) if result.makespan else 0.0, 4),
            "mean_utilization": round(
                trace.utilization(result.makespan), 4),
        }
    return summary
