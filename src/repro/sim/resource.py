"""Hardware resources and work phases for the discrete-event engine.

A *resource* is anything with a finite capacity a training step can
saturate: the kernel-launch path, GPU SMs (FLOP/s), memory and
interconnect bandwidths (B/s).  A *phase* is one contiguous demand a
task places on a single resource; tasks execute their phases in order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum


class ResourceKind(str, Enum):
    """The hardware resource classes the paper's analysis uses (Fig. 4)."""

    LAUNCH = "launch"  # host-side kernel/op issue path (seconds of issue work)
    CPU = "cpu"  # host compute (FLOP/s)
    GPU_SM = "gpu_sm"  # device compute (FLOP/s)
    HBM = "hbm"  # device memory bandwidth (B/s)
    DRAM = "dram"  # host memory bandwidth (B/s)
    PCIE = "pcie"  # host<->device link (B/s)
    NVLINK = "nvlink"  # device<->device link (B/s)
    NET = "net"  # inter-node network (B/s)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResourceKind.{self.name}"


#: Resource classes that count as "communication" in the paper's breakdowns.
COMMUNICATION_KINDS = frozenset({ResourceKind.NET, ResourceKind.NVLINK})

#: Resource classes that count as "memory access" in the breakdowns.
MEMORY_KINDS = frozenset(
    {ResourceKind.HBM, ResourceKind.DRAM, ResourceKind.PCIE})

#: Resource classes that count as "computation" in the breakdowns.
COMPUTE_KINDS = frozenset({ResourceKind.GPU_SM, ResourceKind.CPU})

#: Resource classes on which a *kernel* executes — compute units plus
#: the memory channels that memory-bound kernels (gather, stitch, hash
#: probes) keep busy.  This is the DCGM-flavoured "device is doing
#: useful work" definition behind Fig. 11's utilization plots; the
#: transfer fabrics (PCIe, NVLink, NIC) are excluded because time on
#: them is a fetch in flight, not a kernel resident.
EXECUTION_KINDS = frozenset({ResourceKind.GPU_SM, ResourceKind.CPU,
                             ResourceKind.HBM, ResourceKind.DRAM})


@dataclass(frozen=True)
class Phase:
    """One contiguous demand on a single resource.

    :param kind: which resource the phase consumes.
    :param work: amount of work in the resource's unit (bytes for
        bandwidths, FLOPs for compute, seconds for ``LAUNCH``).
    :param max_rate: the fastest this phase alone can drive the
        resource; a single small transfer cannot saturate PCIe, so its
        ``max_rate`` is below the link capacity.  Defaults to unbounded.
    """

    kind: ResourceKind
    work: float
    max_rate: float = math.inf

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError(f"phase work must be >= 0, got {self.work}")
        if self.max_rate <= 0:
            raise ValueError(f"max_rate must be > 0, got {self.max_rate}")


class Resource:
    """A finite-capacity resource with water-filling processor sharing.

    ``slots`` bounds how many tasks may occupy the resource at once;
    excess tasks wait in FIFO order.  ``slots=1`` models a serialized
    path such as the kernel-launch queue.
    """

    def __init__(self, kind: ResourceKind, capacity: float,
                 slots: int | None = None, name: str | None = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if slots is not None and slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.kind = kind
        self.capacity = float(capacity)
        self.slots = slots
        self.name = name or kind.value
        self.active: list = []  # running SimTasks (engine-managed)
        self.queue: list = []  # FIFO of tasks waiting for a slot

    def has_free_slot(self) -> bool:
        """Whether another task may start executing immediately."""
        return self.slots is None or len(self.active) < self.slots

    def allocate_rates(self, scale: float = 1.0) -> dict:
        """Water-filling allocation of capacity across active tasks.

        Tasks whose ``max_rate`` is below their fair share keep their
        ``max_rate``; the slack is redistributed among the remaining
        tasks until the capacity is exhausted or every task is capped.
        Returns a mapping of task -> rate (resource units per second).

        :param scale: transient capacity multiplier in ``[0, 1]`` (a
            fault injector's straggler/blackout windows); ``0`` stalls
            every occupant without evicting it.
        """
        if not self.active:
            return {}
        if scale <= 0.0:
            return {task: 0.0 for task in self.active}
        rates: dict = {}
        remaining = list(self.active)
        budget = self.capacity * min(1.0, float(scale))
        # Iterate: cap the slowest-demand tasks first, then re-share.
        while remaining:
            fair = budget / len(remaining)
            capped = [t for t in remaining
                      if t.current_phase.max_rate < fair]
            if not capped:
                for task in remaining:
                    rates[task] = fair
                break
            for task in capped:
                rates[task] = task.current_phase.max_rate
                budget -= task.current_phase.max_rate
            remaining = [t for t in remaining if t not in rates]
            if budget <= 0:
                for task in remaining:
                    rates[task] = 1e-12  # starved; should not happen
                break
        return rates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Resource({self.kind.value}, capacity={self.capacity:.3g}, "
                f"slots={self.slots})")
