"""Execution traces: who used which resource, when, and how hard.

The engine logs one interval per simulation event; each interval stores
the rate every resource sustained during it.  Metrics (SM-utilization
CDFs, bandwidth timelines, worker-side breakdowns) are derived from the
interval log afterwards, mirroring how the paper samples DCGM counters
at 10 ms granularity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.sim.resource import (
    COMMUNICATION_KINDS,
    COMPUTE_KINDS,
    MEMORY_KINDS,
    ResourceKind,
)

#: Bump when the frozen-trace JSON layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TaskRecord:
    """One executed task, as the engine saw it (telemetry's raw feed).

    Produced by :meth:`~repro.sim.engine.Engine.run` when asked to
    record tasks; consumed by :mod:`repro.telemetry.chrome_trace` (one
    trace event per execution segment) and
    :mod:`repro.telemetry.critical_path` (dependency walk).

    :param preds: names of the tasks this one waited for.
    :param segments: ``(resource_kind_value, t0, t1)`` execution
        segments, one per phase occupancy; time between ``start`` and
        the first segment (or between segments) is queueing.
    """

    name: str
    start: float
    end: float
    preds: tuple = ()
    tags: dict = field(default_factory=dict)
    segments: tuple = ()

    @property
    def duration(self) -> float:
        """Wall (modeled) time from ready-and-admitted to finished."""
        return self.end - self.start

    def resource_seconds(self) -> dict:
        """Execution seconds per resource kind value, summed."""
        totals: dict = {}
        for kind, t0, t1 in self.segments:
            totals[kind] = totals.get(kind, 0.0) + (t1 - t0)
        return totals

    @property
    def wait_seconds(self) -> float:
        """Time spent queued rather than executing."""
        executing = sum(t1 - t0 for _kind, t0, t1 in self.segments)
        return max(0.0, self.duration - executing)

    def as_dict(self) -> dict:
        """Lossless plain-dict form; round-trips via :meth:`from_dict`."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "preds": list(self.preds),
            "tags": dict(self.tags),
            "segments": [[kind, t0, t1]
                         for kind, t0, t1 in self.segments],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TaskRecord":
        """Rebuild a record from :meth:`as_dict` output."""
        return cls(
            name=payload["name"],
            start=payload["start"],
            end=payload["end"],
            preds=tuple(payload.get("preds", ())),
            tags=dict(payload.get("tags", {})),
            segments=tuple((kind, t0, t1)
                           for kind, t0, t1
                           in payload.get("segments", ())))


@dataclass(frozen=True)
class FrozenTrace:
    """A recorded task DAG, frozen for offline what-if replay.

    Bundles the :class:`TaskRecord` list of one engine run with its
    makespan and free-form metadata (typically the workload config and
    headline metrics), and serializes byte-deterministically: saving
    the same run twice yields identical files, so replay artifacts can
    sit behind the determinism CI gate.
    """

    records: tuple
    makespan: float
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.records, tuple):
            object.__setattr__(self, "records", tuple(self.records))

    def __len__(self) -> int:
        return len(self.records)

    def as_dict(self) -> dict:
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "makespan": self.makespan,
            "metadata": dict(self.metadata),
            "records": [record.as_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FrozenTrace":
        version = payload.get("schema_version")
        if version != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"frozen trace schema v{version} != supported "
                f"v{TRACE_SCHEMA_VERSION}; re-record the trace")
        return cls(
            records=tuple(TaskRecord.from_dict(record)
                          for record in payload.get("records", ())),
            makespan=payload["makespan"],
            metadata=dict(payload.get("metadata", {})))

    def dumps(self) -> str:
        """Canonical JSON: sorted keys, fixed separators, newline EOF.

        Record *order* is load-bearing (it is the engine's completion
        order, which the replayer relies on as a topological order),
        so records stay a list; only dict keys are sorted.
        """
        return json.dumps(self.as_dict(), sort_keys=True, indent=1,
                          separators=(",", ": ")) + "\n"

    def save(self, path: str) -> str:
        """Write the canonical JSON to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())
        return path

    @classmethod
    def load(cls, path: str) -> "FrozenTrace":
        """Read a trace written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


@dataclass
class ResourceTrace:
    """Accumulated usage of one resource over a run."""

    kind: ResourceKind
    capacity: float
    busy_seconds: float = 0.0
    work_done: float = 0.0
    #: list of (t0, t1, used_rate) covering only intervals with rate > 0.
    segments: list = field(default_factory=list)

    def utilization(self, makespan: float) -> float:
        """Mean fraction of capacity used over ``makespan`` seconds."""
        if makespan <= 0:
            return 0.0
        return min(1.0, self.work_done / (self.capacity * makespan))


class TraceRecorder:
    """Collects per-interval resource usage during a simulation run."""

    def __init__(self, capacities: dict):
        self._traces = {
            kind: ResourceTrace(kind=kind, capacity=capacity)
            for kind, capacity in capacities.items()
        }

    def add_interval(self, t0: float, t1: float, rates: dict) -> None:
        """Log one simulation interval.

        :param rates: mapping of :class:`ResourceKind` to the total rate
            sustained on that resource during ``[t0, t1)``.
        """
        dt = t1 - t0
        if dt <= 0:
            return
        for kind, rate in rates.items():
            if rate <= 0:
                continue
            trace = self._traces[kind]
            trace.busy_seconds += dt
            trace.work_done += rate * dt
            trace.segments.append((t0, t1, rate))

    def trace(self, kind: ResourceKind) -> ResourceTrace:
        """The accumulated trace for ``kind`` (empty trace if unused)."""
        return self._traces[kind]

    def kinds(self) -> list:
        """Resource kinds known to this recorder."""
        return list(self._traces)

    def union_busy_seconds(self, kinds) -> float:
        """Total time during which *any* of ``kinds`` was active.

        This is the DCGM-style "GPU busy" metric: a GPU counts as
        utilized while any kernel (compute or memory-bound) is
        resident, so the union of SM and HBM activity reproduces the
        paper's measured SM utilization.
        """
        intervals = []
        for kind in kinds:
            trace = self._traces.get(kind)
            if trace is None:
                continue
            intervals.extend((t0, t1) for t0, t1, _rate in trace.segments)
        if not intervals:
            return 0.0
        intervals.sort()
        total = 0.0
        current_start, current_end = intervals[0]
        for t0, t1 in intervals[1:]:
            if t0 > current_end:
                total += current_end - current_start
                current_start, current_end = t0, t1
            else:
                current_end = max(current_end, t1)
        total += current_end - current_start
        return total

    def category_breakdown(self, makespan: float) -> dict:
        """Worker-side time breakdown as in Fig. 5.

        Returns a mapping with, per category (``compute``, ``memory``,
        ``communication``, ``launch``), the fraction of walltime during
        which the category was active at all, and the *exposed* fraction
        during which it was the only active category (i.e. it blocked
        everything else).
        """
        categories = {
            "compute": COMPUTE_KINDS,
            "memory": MEMORY_KINDS,
            "communication": COMMUNICATION_KINDS,
            "launch": frozenset({ResourceKind.LAUNCH}),
        }
        # Build a unified event timeline from all segments.
        boundaries = set()
        for trace in self._traces.values():
            for t0, t1, _rate in trace.segments:
                boundaries.add(t0)
                boundaries.add(t1)
        timeline = sorted(boundaries)
        active = {name: 0.0 for name in categories}
        exposed = {name: 0.0 for name in categories}
        if len(timeline) < 2 or makespan <= 0:
            return {name: {"active": 0.0, "exposed": 0.0} for name in active}

        # Index segments per category for an interval sweep.
        events = []  # (time, +1/-1, category)
        for name, kinds in categories.items():
            for kind in kinds:
                trace = self._traces.get(kind)
                if trace is None:
                    continue
                for t0, t1, _rate in trace.segments:
                    events.append((t0, 1, name))
                    events.append((t1, -1, name))
        events.sort(key=lambda item: (item[0], -item[1]))
        counts = {name: 0 for name in categories}
        prev_time = events[0][0] if events else 0.0
        index = 0
        while index < len(events):
            time = events[index][0]
            dt = time - prev_time
            if dt > 0:
                live = [name for name, count in counts.items() if count > 0]
                for name in live:
                    active[name] += dt
                if len(live) == 1:
                    exposed[live[0]] += dt
            while index < len(events) and events[index][0] == time:
                _t, delta, name = events[index]
                counts[name] += delta
                index += 1
            prev_time = time
        return {
            name: {
                "active": active[name] / makespan,
                "exposed": exposed[name] / makespan,
            }
            for name in categories
        }
