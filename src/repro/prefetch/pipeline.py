"""The cross-batch hot/cold lookahead prefetch pipeline.

:class:`LookaheadPrefetcher` is the scheduling core of the Hotline-
style (arXiv 2204.05436) heterogeneous pipeline: it watches a bounded
window of upcoming batches, classifies each hot (fast-tier resident —
runs immediately) or cold (must gather rows first), and reorders
within the window so hot batches run on the foreground while cold
batches' rows stage on a background stream.  The reorder is
deterministic — a pure function of the batch stream and the attached
residency oracle — and bounded:

* a batch is never deferred more than ``lookahead_depth - 1`` times
  (the starvation bound), and
* a cold batch whose staging would exceed ``max_inflight_bytes`` is
  not deferred at all (it runs in arrival order instead of piling up
  unbounded in-flight transfers).

Every staged batch leaves a :class:`PrefetchRecord` pricing its fetch
and how much of it the foreground hid; :class:`PrefetchStats`
aggregates them into the exposed-fetch-seconds headline the
:class:`~repro.telemetry.monitor.PrefetchMonitor` mirrors on the
simulator side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.prefetch.classifiers import batch_classifier
from repro.prefetch.config import PrefetchConfig

#: Default background staging rate when no fetch model is attached —
#: a DRAM-over-PCIe-flavoured 8 GB/s, matching the ``dram`` tier of
#: :data:`repro.embedding.multilevel.DEFAULT_TIERS`'s era.
DEFAULT_FETCH_RATE = 8e9


def default_ids(item) -> np.ndarray:
    """Extract the sparse-ID array from a batch-like object.

    Understands :class:`~repro.data.loader.Batch` (``sparse`` dict of
    per-field arrays) and anything :func:`numpy.asarray` accepts.
    """
    sparse = getattr(item, "sparse", None)
    if isinstance(sparse, dict):
        if not sparse:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(
            [np.asarray(ids).ravel() for ids in sparse.values()])
    return np.asarray(item).ravel()


@dataclass(frozen=True)
class PrefetchRecord:
    """One cold batch's trip through the background stream."""

    index: int  # original stream position
    score: float  # residency score at staging time
    deferred: int  # emissions it was jumped by
    bytes: float  # unique rows staged, in bytes
    fetch_s: float  # modeled background fetch duration
    hidden_s: float  # portion overlapped by foreground compute
    exposed_s: float  # portion the pipeline stalled waiting on

    def as_dict(self) -> dict:
        return {"index": self.index, "score": self.score,
                "deferred": self.deferred, "bytes": self.bytes,
                "fetch_s": self.fetch_s, "hidden_s": self.hidden_s,
                "exposed_s": self.exposed_s}


@dataclass
class PrefetchStats:
    """Aggregate account of one pipeline's scheduling decisions."""

    batches: int = 0
    hot: int = 0
    cold: int = 0
    staged: int = 0
    reordered: int = 0
    staged_bytes: float = 0.0
    fetch_seconds: float = 0.0
    hidden_seconds: float = 0.0

    @property
    def exposed_fetch_seconds(self) -> float:
        """Background fetch time the foreground failed to hide."""
        return max(0.0, self.fetch_seconds - self.hidden_seconds)

    @property
    def overlap_ratio(self) -> float:
        """Hidden fraction of all background fetch time."""
        if self.fetch_seconds <= 0:
            return 0.0
        return self.hidden_seconds / self.fetch_seconds

    def as_dict(self) -> dict:
        """Plain-dict snapshot for benchmarks and telemetry export."""
        return {
            "batches": self.batches,
            "hot": self.hot,
            "cold": self.cold,
            "staged": self.staged,
            "reordered": self.reordered,
            "staged_bytes": self.staged_bytes,
            "fetch_seconds": self.fetch_seconds,
            "hidden_seconds": self.hidden_seconds,
            "exposed_fetch_seconds": self.exposed_fetch_seconds,
            "overlap_ratio": self.overlap_ratio,
        }

    def merge(self, other: "PrefetchStats") -> "PrefetchStats":
        """Combined account of two pipelines (``Stats`` protocol)."""
        return PrefetchStats(
            batches=self.batches + other.batches,
            hot=self.hot + other.hot,
            cold=self.cold + other.cold,
            staged=self.staged + other.staged,
            reordered=self.reordered + other.reordered,
            staged_bytes=self.staged_bytes + other.staged_bytes,
            fetch_seconds=self.fetch_seconds + other.fetch_seconds,
            hidden_seconds=self.hidden_seconds + other.hidden_seconds)


@dataclass
class _Entry:
    """One batch waiting in the lookahead window."""

    index: int
    item: object
    ids: np.ndarray
    deferred: int = 0
    staged: bool = False
    score: float = 0.0
    bytes: float = 0.0
    fetch_s: float = 0.0
    issued_at_s: float = 0.0


class LookaheadPrefetcher:
    """Deterministic windowed hot-first scheduler with modeled staging.

    :param config: the :class:`PrefetchConfig` facade knobs.
    :param classifier: an object with ``classify(ids, index) ->
        BatchClass``; defaults to resolving ``config.policy`` through
        the registry with ``resident`` as the residency oracle.
    :param resident: optional ``(id) -> bool`` residency oracle (see
        :func:`~repro.prefetch.classifiers.resident_from_cache`);
        only used when ``classifier`` is not given.
    :param row_bytes: bytes per embedding row, for staging volume.
    :param fetch_cost: optional ``(ids) -> seconds`` background-fetch
        model (e.g. ``cache.expected_access_cost``); defaults to the
        staged bytes over :data:`DEFAULT_FETCH_RATE`.
    :param step_seconds: modeled foreground duration per emitted
        batch, which is what hides in-flight staging; ``0.0`` prices
        every fetch as fully exposed.
    :param ids_fn: ``(item) -> ndarray`` ID extractor; defaults to
        :func:`default_ids`.
    :param observe: optional ``(ids) -> None`` hook called for every
        pushed batch — feeds adaptive oracles
        (:class:`~repro.prefetch.classifiers.AdaptiveResidency`) the
        stream they classify.
    """

    def __init__(self, config: PrefetchConfig, classifier=None,
                 resident=None, row_bytes: float = 64.0,
                 fetch_cost=None, step_seconds: float = 0.0,
                 ids_fn=None, observe=None):
        if row_bytes <= 0:
            raise ValueError(f"row_bytes must be > 0, got {row_bytes}")
        if step_seconds < 0:
            raise ValueError(
                f"step_seconds must be >= 0, got {step_seconds}")
        self.config = config
        self.classifier = classifier if classifier is not None \
            else batch_classifier(config.policy)(config, resident=resident)
        self.row_bytes = float(row_bytes)
        self.fetch_cost = fetch_cost
        self.step_seconds = float(step_seconds)
        self.ids_fn = ids_fn or default_ids
        self.observe = observe
        self.stats = PrefetchStats()
        self.records: list = []
        self._window: list = []
        self._inflight_bytes = 0.0
        self._elapsed_s = 0.0  # modeled foreground time emitted so far
        self._next_index = 0

    # -- window management ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._window)

    def push(self, item) -> None:
        """Append the next arriving batch to the lookahead window."""
        ids = self.ids_fn(item)
        if self.observe is not None:
            self.observe(ids)
        self._window.append(_Entry(index=self._next_index, item=item,
                                   ids=ids))
        self._next_index += 1

    def _stage_cost(self, entry: _Entry) -> tuple:
        """(bytes, fetch seconds) to background-stage one batch."""
        unique = np.unique(entry.ids).size
        staged_bytes = unique * self.row_bytes
        if self.fetch_cost is not None:
            fetch_s = float(self.fetch_cost(entry.ids))
        else:
            fetch_s = staged_bytes / DEFAULT_FETCH_RATE
        return staged_bytes, fetch_s

    def _choose(self) -> int:
        """Window position to emit next (the scheduling decision)."""
        if not self.config.reorders or len(self._window) == 1:
            return 0
        depth = self.config.lookahead_depth
        if self._window[0].deferred >= depth - 1:
            return 0  # starvation bound: the oldest batch must run now
        classes = [self.classifier.classify(entry.ids, entry.index)
                   for entry in self._window]
        for entry, verdict in zip(self._window, classes):
            entry.score = verdict.score
        for position, verdict in enumerate(classes):
            if not verdict.hot:
                continue
            if position == 0:
                return 0
            # Everything older than the candidate is cold and must be
            # staging while it runs; respect the in-flight byte cap.
            inflight = self._inflight_bytes
            feasible = True
            for entry in self._window[:position]:
                if entry.staged:
                    continue
                staged_bytes, _fetch = self._stage_cost(entry)
                if inflight + staged_bytes \
                        > self.config.max_inflight_bytes:
                    feasible = False
                    break
                inflight += staged_bytes
            if feasible:
                return position
        return 0

    def pop(self) -> tuple:
        """Emit the next batch: ``(original_index, item)``.

        Staging, deferral accounting and the modeled timeline advance
        here; the caller just runs what comes out.
        """
        if not self._window:
            raise IndexError("pop from an empty prefetch window")
        choice = self._choose()
        if choice != 0:
            self.stats.reordered += 1
            for entry in self._window[:choice]:
                entry.deferred += 1
                if not entry.staged:
                    staged_bytes, fetch_s = self._stage_cost(entry)
                    entry.staged = True
                    entry.bytes = staged_bytes
                    entry.fetch_s = fetch_s
                    entry.issued_at_s = self._elapsed_s
                    self._inflight_bytes += staged_bytes
                    self.stats.staged += 1
                    self.stats.staged_bytes += staged_bytes
                    self.stats.fetch_seconds += fetch_s
        entry = self._window.pop(choice)
        self.stats.batches += 1
        if entry.staged:
            self.stats.cold += 1
            self._inflight_bytes -= entry.bytes
            hidden = min(entry.fetch_s,
                         self._elapsed_s - entry.issued_at_s)
            self.stats.hidden_seconds += hidden
            self.records.append(PrefetchRecord(
                index=entry.index, score=entry.score,
                deferred=entry.deferred, bytes=entry.bytes,
                fetch_s=entry.fetch_s, hidden_s=hidden,
                exposed_s=max(0.0, entry.fetch_s - hidden)))
        else:
            self.stats.hot += 1
        self._elapsed_s += self.step_seconds
        return entry.index, entry.item

    def schedule(self, items):
        """Reorder a batch stream; yields ``(original_index, item)``.

        The window fills to ``lookahead_depth`` before the first
        emission and drains at the end; with ``lookahead_depth=1`` or
        the ``fifo`` policy this is the identity schedule.
        """
        for item in items:
            self.push(item)
            while len(self._window) >= self.config.lookahead_depth:
                yield self.pop()
        while self._window:
            yield self.pop()

    def plan(self, batches) -> list:
        """The emission order for a batch list, as original indices.

        The pure-reorder view of :meth:`schedule` — what determinism
        tests byte-compare.
        """
        return [index for index, _item in self.schedule(list(batches))]


def choose_deadline_aware(classes, estimates, deadlines, start_s: float,
                          lookahead_depth: int, deferred,
                          reorders: bool = True) -> int:
    """Serving-side window choice: hot-first, never past a deadline.

    Picks the window position to serve next.  A hot batch may jump
    ahead of colder, older batches only if every batch it defers still
    completes before its deadline afterwards — reordering must never
    *create* an SLO miss the FIFO order would not have had.

    :param classes: per-window-position :class:`BatchClass` verdicts.
    :param estimates: per-position modeled service seconds.
    :param deadlines: per-position completion deadlines (absolute
        modeled time, e.g. oldest arrival + latency budget).
    :param start_s: when the server would begin the chosen batch.
    :param lookahead_depth: the starvation bound — position 0 is
        forced once it has been deferred ``lookahead_depth - 1`` times.
    :param deferred: per-position deferral counts so far.
    """
    if not reorders or len(classes) <= 1:
        return 0
    if deferred[0] >= lookahead_depth - 1:
        return 0
    for position, verdict in enumerate(classes):
        if not verdict.hot:
            continue
        if position == 0:
            return 0
        cursor = start_s + estimates[position]
        feasible = True
        for older in range(position):
            if cursor + estimates[older] > deadlines[older]:
                feasible = False
                break
            cursor += estimates[older]
        if feasible:
            return position
    return 0
