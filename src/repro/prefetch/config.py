"""The unified prefetch facade config.

:class:`PrefetchConfig` is the one declarative surface for the
hot/cold lookahead pipeline (Hotline, arXiv 2204.05436): how far ahead
the scheduler may look, what counts as a "hot" (tier-resident) batch,
how many staged bytes may be in flight, and which batch classifier
decides.  The same object embeds in :class:`~repro.api.RunConfig`,
:class:`~repro.api.ServeConfig` and :class:`~repro.api.StreamConfig`,
so one JSON snapshot configures prefetching on all three facade legs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config_base import ConfigBase

_MIB = float(1 << 20)


@dataclass(frozen=True)
class PrefetchConfig(ConfigBase):
    """Knobs of the cross-batch hot/cold lookahead pipeline.

    :param lookahead_depth: how many upcoming batches the scheduler
        may inspect (and reorder within); ``1`` disables reordering —
        the pipeline degenerates to today's strict-FIFO trainer.
    :param hot_threshold: minimum fast-tier-resident fraction of a
        batch's unique IDs for it to classify *hot* (run immediately);
        batches below it are *cold* and stage in the background.
    :param max_inflight_bytes: cap on bytes concurrently staged on the
        background stream; a cold batch that cannot stage under the
        cap is never deferred (it runs in arrival order instead).
    :param policy: registered batch-classifier name
        (:func:`repro.prefetch.batch_classifiers` lists the choices;
        ``"fifo"`` keeps arrival order bit-for-bit).
    """

    lookahead_depth: int = 4
    hot_threshold: float = 0.6
    max_inflight_bytes: float = 256.0 * _MIB
    policy: str = "hotness"

    def __post_init__(self) -> None:
        if self.lookahead_depth < 1:
            raise ValueError(
                f"lookahead_depth must be >= 1, "
                f"got {self.lookahead_depth}")
        if not 0.0 <= self.hot_threshold <= 1.0:
            raise ValueError(
                f"hot_threshold must be in [0, 1], "
                f"got {self.hot_threshold}")
        if self.max_inflight_bytes <= 0:
            raise ValueError(
                f"max_inflight_bytes must be > 0, "
                f"got {self.max_inflight_bytes}")
        if not self.policy:
            raise ValueError("policy must be non-empty")

    @property
    def reorders(self) -> bool:
        """Whether this config can emit out of arrival order at all."""
        return self.lookahead_depth > 1 and self.policy != "fifo"
