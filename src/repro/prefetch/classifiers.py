"""Batch hot/cold classifiers and their open registry.

A *classifier* looks at one upcoming batch's IDs and decides whether
it can run immediately (hot — its rows are resident in the fast tier)
or should stage in the background first (cold).  Classifiers are an
open registry exactly like the facade's framework registry
(:func:`repro.api.register_framework`): built-ins ``"hotness"`` and
``"fifo"`` ship registered, plug-ins bind a name to a factory, and
``repro.prefetch.BATCH_CLASSIFIERS`` is a live view of whatever is
currently registered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: name -> factory ``(config, resident=None) -> classifier``.
_CLASSIFIER_REGISTRY: dict = {}


def register_batch_classifier(name: str, factory,
                              overwrite: bool = False) -> None:
    """Bind a classifier name the pipeline resolves ``policy`` through.

    :param factory: callable ``(config, resident=None) -> classifier``
        receiving the :class:`~repro.prefetch.config.PrefetchConfig`
        and an optional ``resident(id) -> bool`` residency oracle; the
        returned object must expose ``classify(ids, index) ->
        BatchClass``.
    :param overwrite: allow rebinding an existing name (a plug-in
        shadowing a built-in must opt in explicitly).
    """
    if not name:
        raise ValueError("classifier name must be non-empty")
    if not callable(factory):
        raise TypeError(f"factory for {name!r} is not callable")
    if name in _CLASSIFIER_REGISTRY and not overwrite:
        raise ValueError(f"batch classifier {name!r} already registered; "
                         "pass overwrite=True to replace it")
    _CLASSIFIER_REGISTRY[name] = factory


def batch_classifiers() -> tuple:
    """Currently registered classifier names, in registration order."""
    return tuple(_CLASSIFIER_REGISTRY)


def batch_classifier(name: str):
    """The registered factory for ``name`` (ValueError with choices)."""
    try:
        return _CLASSIFIER_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown batch classifier {name!r}; "
            f"expected one of {batch_classifiers()}") from None


@dataclass(frozen=True)
class BatchClass:
    """One batch's verdict: its residency score and hot/cold label.

    :param score: fast-tier-resident fraction of the batch's unique
        IDs, in ``[0, 1]``.
    :param hot: whether the batch may run immediately
        (``score >= hot_threshold`` for the hotness classifier).
    """

    index: int
    score: float
    hot: bool


def resident_from_cache(cache):
    """A residency oracle over a live embedding cache.

    Supports :class:`~repro.embedding.multilevel.MultiLevelCache`
    (fastest-tier placement) and
    :class:`~repro.embedding.hybrid_hash.HybridHash` (hot-set
    membership); raises :class:`TypeError` otherwise.
    """
    tiers = getattr(cache, "tiers", None)
    if tiers is not None:
        fastest = tiers[0].name
        return lambda key: cache.tier_of(key) == fastest
    hot_ids = getattr(cache, "hot_ids", None)
    if hot_ids is not None:
        return lambda key: int(key) in cache.hot_ids
    raise TypeError(
        f"no residency oracle for {type(cache).__name__}; "
        "expected MultiLevelCache or HybridHash")


def resident_from_counter(counter, hot_k: int):
    """A residency oracle treating the counter's top-k as resident.

    Mirrors Algorithm 1's flush: the ``hot_k`` most frequent IDs of a
    :class:`~repro.embedding.counter.FrequencyCounter` are the rows
    the fast tier would pin.  The top-k set is snapshotted per call to
    keep classification O(1) per ID; rebuild the oracle after counter
    updates that should be visible.
    """
    hot = frozenset(counter.top_k(hot_k))
    return lambda key: int(key) in hot


class AdaptiveResidency:
    """Streaming residency oracle: learns the hot set as batches pass.

    For pipelines with no live cache to consult (the continuous-
    training loop trains on a drifting stream the serving cache never
    sees), this oracle plays Algorithm 1's statistics half: every
    observed batch feeds a :class:`FrequencyCounter`, and every
    ``refresh_every`` observations the resident set snaps to the
    counter's top-``hot_k`` — the rows a fast tier of that capacity
    would pin.  Wire it as both the prefetcher's ``resident`` oracle
    and its ``observe`` hook.
    """

    def __init__(self, hot_k: int, refresh_every: int = 8):
        if hot_k < 1:
            raise ValueError(f"hot_k must be >= 1, got {hot_k}")
        if refresh_every < 1:
            raise ValueError(
                f"refresh_every must be >= 1, got {refresh_every}")
        from repro.embedding.counter import FrequencyCounter
        self.counter = FrequencyCounter()
        self.hot_k = int(hot_k)
        self.refresh_every = int(refresh_every)
        self._hot: frozenset = frozenset()
        self._since_refresh = 0

    def observe(self, ids) -> None:
        """Feed one batch's IDs; refreshes the hot set periodically."""
        self.counter.observe(np.asarray(ids).ravel())
        self._since_refresh += 1
        if self._since_refresh >= self.refresh_every:
            self._hot = frozenset(self.counter.top_k(self.hot_k))
            self._since_refresh = 0

    def __call__(self, key) -> bool:
        return int(key) in self._hot


class HotnessClassifier:
    """Hot iff enough of the batch's unique IDs are tier-resident.

    Without a residency oracle every ID counts as cold (score 0.0), so
    the pipeline stages everything it can — the conservative default
    when no cache state is attached.
    """

    def __init__(self, hot_threshold: float, resident=None):
        if not 0.0 <= hot_threshold <= 1.0:
            raise ValueError(
                f"hot_threshold must be in [0, 1], got {hot_threshold}")
        self.hot_threshold = float(hot_threshold)
        self.resident = resident

    def classify(self, ids, index: int) -> BatchClass:
        """Score one batch's IDs against the residency oracle."""
        unique = np.unique(np.asarray(ids).ravel())
        if unique.size == 0 or self.resident is None:
            score = 0.0
        else:
            score = sum(1 for key in unique.tolist()
                        if self.resident(key)) / unique.size
        return BatchClass(index=index, score=score,
                          hot=score >= self.hot_threshold)


class FifoClassifier:
    """Every batch is hot: strict arrival order, nothing ever stages.

    The identity policy — a pipeline running this classifier is
    bit-for-bit today's trainer regardless of lookahead depth.
    """

    def classify(self, ids, index: int) -> BatchClass:
        return BatchClass(index=index, score=1.0, hot=True)


register_batch_classifier(
    "hotness",
    lambda config, resident=None: HotnessClassifier(
        config.hot_threshold, resident=resident))
register_batch_classifier(
    "fifo", lambda config, resident=None: FifoClassifier())
