"""Hot/cold heterogeneous prefetch pipeline (Hotline, arXiv 2204.05436).

The cross-batch lookahead stage behind the facade's ``prefetch``
config: classify upcoming batches hot (fast-tier resident) or cold,
run hot batches while cold batches' rows stage on a background
stream, and account for every second of fetch the foreground failed
to hide.  One :class:`PrefetchConfig` drives the trainer, the
streaming loop and the serving micro-batcher; classifiers are an open
registry (``BATCH_CLASSIFIERS`` is a live view).
"""

from repro.prefetch.classifiers import (
    AdaptiveResidency,
    BatchClass,
    FifoClassifier,
    HotnessClassifier,
    batch_classifier,
    batch_classifiers,
    register_batch_classifier,
    resident_from_cache,
    resident_from_counter,
)
from repro.prefetch.config import PrefetchConfig
from repro.prefetch.pipeline import (
    DEFAULT_FETCH_RATE,
    LookaheadPrefetcher,
    PrefetchRecord,
    PrefetchStats,
    choose_deadline_aware,
    default_ids,
)

__all__ = [
    "AdaptiveResidency",
    "BATCH_CLASSIFIERS",
    "BatchClass",
    "DEFAULT_FETCH_RATE",
    "FifoClassifier",
    "HotnessClassifier",
    "LookaheadPrefetcher",
    "PrefetchConfig",
    "PrefetchRecord",
    "PrefetchStats",
    "batch_classifier",
    "batch_classifiers",
    "choose_deadline_aware",
    "default_ids",
    "register_batch_classifier",
    "resident_from_cache",
    "resident_from_counter",
]


def __getattr__(name: str):
    # Live view: plug-in registrations show up without re-import.
    if name == "BATCH_CLASSIFIERS":
        return batch_classifiers()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
