"""Hardware substrate: parametric device and cluster models.

The paper evaluates on two V100 clusters (Tab. I): AliCloud ``Gn6e``
(8x V100-SXM2 per node, 32 Gbps TCP) and the on-premise ``EFLOPS``
cluster (1x V100S-PCIe per node, 100 Gbps RDMA).  We reproduce both as
parametric specifications; the discrete-event engine in
:mod:`repro.sim` consumes them to derive resource capacities.
"""

from repro.hardware.specs import (
    CpuSpec,
    GpuSpec,
    LinkSpec,
    MemorySpec,
    CPU_XEON_8163,
    CPU_XEON_8269CY,
    GPU_V100_SXM2,
    GPU_V100S_PCIE,
    DDR4_DRAM,
    NVME_SSD,
    PCIE_GEN3_X16,
    NVLINK_V100,
    NET_TCP_32G,
    NET_RDMA_100G,
)
from repro.hardware.topology import (
    ClusterSpec,
    NodeSpec,
    GN6E_NODE,
    EFLOPS_NODE,
    gn6e_cluster,
    eflops_cluster,
)

__all__ = [
    "CpuSpec",
    "GpuSpec",
    "LinkSpec",
    "MemorySpec",
    "CPU_XEON_8163",
    "CPU_XEON_8269CY",
    "GPU_V100_SXM2",
    "GPU_V100S_PCIE",
    "DDR4_DRAM",
    "NVME_SSD",
    "PCIE_GEN3_X16",
    "NVLINK_V100",
    "NET_TCP_32G",
    "NET_RDMA_100G",
    "ClusterSpec",
    "NodeSpec",
    "GN6E_NODE",
    "EFLOPS_NODE",
    "gn6e_cluster",
    "eflops_cluster",
]
