"""Parametric specifications of commodity training hardware.

All capacities are expressed in base SI units (bytes/second for
bandwidths, FLOP/second for compute, seconds for latencies) so that the
simulator never has to convert units.  The preset constants mirror
Tab. I of the paper plus vendor datasheets for the V100 generation.

These specs deliberately model *effective*, not peak, capability: a
training workload rarely reaches datasheet numbers, and the paper's
bottleneck analysis (launch overhead, PCIe congestion, network
saturation) only depends on achievable throughput ratios.
"""

from __future__ import annotations

from dataclasses import dataclass


def gbps(value: float) -> float:
    """Convert gigabits/second to bytes/second."""
    return value * 1e9 / 8.0


def gib(value: float) -> float:
    """Convert GiB to bytes."""
    return value * (1 << 30)


def gbytes_per_s(value: float) -> float:
    """Convert GB/s (decimal) to bytes/second."""
    return value * 1e9


@dataclass(frozen=True)
class GpuSpec:
    """An accelerator card.

    :param name: marketing name, e.g. ``"Tesla V100-SXM2"``.
    :param sm_count: number of streaming multiprocessors.
    :param fp32_flops: achievable single-precision FLOP/s in dense math.
    :param hbm_bytes: device memory capacity in bytes.
    :param hbm_bandwidth: achievable device memory bandwidth (B/s).
    :param kernel_launch_latency: host-side time to issue one kernel
        onto a CUDA stream, in seconds.  This is the constant that makes
        fragmentary WDL graphs launch-bound (paper SS II-D).
    """

    name: str
    sm_count: int
    fp32_flops: float
    hbm_bytes: float
    hbm_bandwidth: float
    kernel_launch_latency: float = 5.0e-6


@dataclass(frozen=True)
class CpuSpec:
    """A host processor.

    ``op_dispatch_latency`` is the framework-side cost of scheduling one
    graph operation (TF executor bookkeeping); it is paid for CPU ops and
    adds to ``GpuSpec.kernel_launch_latency`` for GPU ops.
    """

    name: str
    physical_cores: int
    fp32_flops: float
    op_dispatch_latency: float = 2.0e-6


@dataclass(frozen=True)
class MemorySpec:
    """A host memory pool (DRAM, persistent memory, ...)."""

    name: str
    capacity_bytes: float
    bandwidth: float
    access_latency: float = 1.0e-7


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point or shared interconnect.

    :param bandwidth: achievable bandwidth in bytes/second.
    :param latency: per-message latency in seconds (protocol overhead).
    :param duplex: whether both directions can be used concurrently.
    """

    name: str
    bandwidth: float
    latency: float
    duplex: bool = True


# --- Preset devices (Tab. I of the paper + V100 datasheets) -----------------

GPU_V100_SXM2 = GpuSpec(
    name="Tesla V100-SXM2-32GB",
    sm_count=80,
    fp32_flops=14.0e12,
    hbm_bytes=gib(32),
    hbm_bandwidth=gbytes_per_s(820.0),
)

GPU_V100S_PCIE = GpuSpec(
    name="Tesla V100S-PCIe-32GB",
    sm_count=80,
    fp32_flops=15.0e12,
    hbm_bytes=gib(32),
    hbm_bandwidth=gbytes_per_s(990.0),
)

CPU_XEON_8163 = CpuSpec(
    name="Xeon Platinum 8163",
    physical_cores=96,
    fp32_flops=3.0e12,
)

CPU_XEON_8269CY = CpuSpec(
    name="Xeon Platinum 8269CY",
    physical_cores=104,
    fp32_flops=3.3e12,
)

DDR4_DRAM = MemorySpec(
    name="DDR4-2666 (6 channels)",
    capacity_bytes=gib(512),
    bandwidth=gbytes_per_s(85.0),
)

NVME_SSD = MemorySpec(
    name="NVMe SSD (datacenter)",
    capacity_bytes=gib(2048),
    bandwidth=gbytes_per_s(2.0),
    # Random-read latency dominates small embedding-row fetches.
    access_latency=8.0e-5,
)

PCIE_GEN3_X16 = LinkSpec(
    name="PCIe Gen3 x16",
    bandwidth=gbytes_per_s(12.0),
    latency=2.0e-6,
)

NVLINK_V100 = LinkSpec(
    name="NVLink 2.0 (per V100, aggregate)",
    bandwidth=gbytes_per_s(130.0),
    latency=1.0e-6,
)

NET_TCP_32G = LinkSpec(
    name="32 Gbps Ethernet (TCP)",
    # TCP stacks reach ~70% of line rate on large transfers.
    bandwidth=gbps(32) * 0.7,
    latency=4.0e-5,
)

NET_RDMA_100G = LinkSpec(
    name="100 Gbps RDMA",
    bandwidth=gbps(100) * 0.9,
    latency=3.0e-6,
)
