"""Cluster topology: nodes made of devices, clusters made of nodes.

A :class:`NodeSpec` corresponds to one PICASSO-Executor's machine: CPUs,
GPUs, DRAM, and the intra-node interconnects.  A :class:`ClusterSpec`
is a homogeneous collection of nodes joined by a network link.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hardware.specs import (
    CpuSpec,
    GpuSpec,
    LinkSpec,
    MemorySpec,
    CPU_XEON_8163,
    CPU_XEON_8269CY,
    DDR4_DRAM,
    GPU_V100_SXM2,
    GPU_V100S_PCIE,
    NET_RDMA_100G,
    NET_TCP_32G,
    NVLINK_V100,
    PCIE_GEN3_X16,
    gib,
)


@dataclass(frozen=True)
class NodeSpec:
    """One machine in the training cluster.

    :param gpus_per_node: number of accelerator cards.
    :param nvlink: intra-node GPU-GPU link, or ``None`` when the cards
        are only reachable over PCIe (e.g. single-GPU EFLOPS nodes).
    """

    name: str
    cpu: CpuSpec
    gpu: GpuSpec
    gpus_per_node: int
    dram: MemorySpec
    pcie: LinkSpec
    nvlink: LinkSpec | None
    network: LinkSpec

    @property
    def has_nvlink(self) -> bool:
        """Whether GPU peers in this node communicate over NVLink."""
        return self.nvlink is not None and self.gpus_per_node > 1


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of :class:`NodeSpec` machines.

    ``num_nodes`` counts machines; the total number of workers (one per
    GPU) is :attr:`num_workers`.
    """

    name: str
    node: NodeSpec
    num_nodes: int

    @property
    def num_workers(self) -> int:
        """Total GPU workers across the cluster."""
        return self.num_nodes * self.node.gpus_per_node

    def with_nodes(self, num_nodes: int) -> "ClusterSpec":
        """Return a copy of this cluster scaled to ``num_nodes``."""
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        return replace(self, num_nodes=num_nodes)


GN6E_NODE = NodeSpec(
    name="AliCloud Gn6e",
    cpu=CPU_XEON_8163,
    gpu=GPU_V100_SXM2,
    gpus_per_node=8,
    dram=replace(DDR4_DRAM, capacity_bytes=gib(724)),
    pcie=PCIE_GEN3_X16,
    nvlink=NVLINK_V100,
    network=NET_TCP_32G,
)

EFLOPS_NODE = NodeSpec(
    name="EFLOPS",
    cpu=CPU_XEON_8269CY,
    gpu=GPU_V100S_PCIE,
    gpus_per_node=1,
    dram=DDR4_DRAM,
    pcie=PCIE_GEN3_X16,
    nvlink=None,
    network=NET_RDMA_100G,
)


def gn6e_cluster(num_nodes: int = 1) -> ClusterSpec:
    """Public-cloud benchmark testbed from Tab. I (8x V100 per node)."""
    return ClusterSpec(name="Gn6e", node=GN6E_NODE, num_nodes=num_nodes)


def eflops_cluster(num_nodes: int = 16) -> ClusterSpec:
    """On-premise system-design testbed from Tab. I (1x V100 per node)."""
    return ClusterSpec(name="EFLOPS", node=EFLOPS_NODE, num_nodes=num_nodes)
