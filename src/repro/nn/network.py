"""Runnable WDL networks for the accuracy experiments.

:class:`WdlNetwork` instantiates a trainable numpy network for the four
Tab. III models: ``wdl`` (plain concat+MLP), ``dlrm`` (pairwise dot
interaction), ``deepfm`` (FM second-order term), ``din`` (target
attention over behaviour sequences) and ``dien`` (GRU interest
evolution).  All fields share one embedding dimension, as DLRM's
interaction requires and Tab. II's per-dataset dims reflect.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Batch
from repro.data.spec import DatasetSpec
from repro.nn.interactions import (
    AttentionPooling,
    GruPooling,
    dot_interaction,
    dot_interaction_grad,
    fm_interaction,
    fm_interaction_grad,
)
from repro.nn.layers import Dense, DenseEmbedding, relu, relu_grad, sigmoid
from repro.nn.loss import bce_loss, bce_loss_grad

_VARIANTS = ("wdl", "dlrm", "deepfm", "din", "dien")


class WdlNetwork:
    """A trainable wide-and-deep network over a dataset spec.

    :param variant: one of ``wdl``, ``dlrm``, ``deepfm``, ``din``,
        ``dien`` — selects the feature-interaction structure.
    :param vocab_rows: hash-trick rows per embedding table (folds the
        full-scale ID space into trainable tables).
    """

    def __init__(self, dataset: DatasetSpec, variant: str = "wdl",
                 embedding_dim: int = 16, vocab_rows: int = 100_000,
                 mlp_layers: tuple = (128, 64), seed: int = 0):
        if variant not in _VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; expected one of {_VARIANTS}")
        self.dataset = dataset
        self.variant = variant
        self.embedding_dim = embedding_dim
        rng = np.random.default_rng(seed)
        self._rng = rng

        self.embeddings = {
            spec.name: DenseEmbedding(
                min(spec.vocab_size, vocab_rows), embedding_dim,
                name=f"emb.{spec.name}", rng=rng)
            for spec in dataset.fields
        }
        self.poolers: dict = {}
        for spec in dataset.fields:
            if spec.seq_length <= 1:
                continue
            if variant == "din":
                self.poolers[spec.name] = AttentionPooling(
                    embedding_dim, name=f"att.{spec.name}", rng=rng)
            elif variant == "dien":
                self.poolers[spec.name] = GruPooling(
                    embedding_dim, name=f"gru.{spec.name}", rng=rng)

        num_fields = dataset.num_fields
        base_dim = num_fields * embedding_dim + dataset.num_numeric
        if variant == "dlrm":
            base_dim += num_fields * (num_fields - 1) // 2
        elif variant == "deepfm":
            base_dim += 1
        widths = [base_dim, *mlp_layers, 1]
        self.mlp = [
            Dense(w_in, w_out, name=f"mlp.{index}", rng=rng)
            for index, (w_in, w_out) in enumerate(
                zip(widths[:-1], widths[1:]))
        ]
        self._cache = None

    # -- forward / backward --------------------------------------------------

    def forward(self, batch: Batch) -> np.ndarray:
        """Compute logits for a batch; caches activations."""
        pooled = []
        pool_caches = {}
        for spec in self.dataset.fields:
            table = self.embeddings[spec.name]
            vectors = table.forward(batch.sparse[spec.name])
            if spec.seq_length > 1:
                sequence = vectors.reshape(
                    batch.batch_size, spec.seq_length, self.embedding_dim)
                pooler = self.poolers.get(spec.name)
                if pooler is not None:
                    out = pooler.forward(sequence)
                    pool_caches[spec.name] = ("module", sequence.shape)
                else:
                    out = sequence.mean(axis=1)
                    pool_caches[spec.name] = ("mean", sequence.shape)
                pooled.append(out)
            else:
                pool_caches[spec.name] = ("scalar", vectors.shape)
                pooled.append(vectors)

        stack = np.stack(pooled, axis=1)  # (batch, fields, dim)
        segments = [stack.reshape(batch.batch_size, -1)]
        extra = None
        if self.variant == "dlrm":
            extra = dot_interaction(stack)
            segments.append(extra)
        elif self.variant == "deepfm":
            extra = fm_interaction(stack)
            segments.append(extra)
        if self.dataset.num_numeric:
            segments.append(batch.numeric.astype(np.float64))
        features = np.concatenate(segments, axis=1)

        activations = [features]
        hidden = features
        for layer in self.mlp[:-1]:
            hidden = relu(layer.forward(hidden))
            activations.append(hidden)
        logits = self.mlp[-1].forward(hidden).ravel()
        self._cache = (batch, stack, pool_caches, activations)
        return logits

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backpropagate from d(loss)/d(logits) through the network."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        batch, stack, pool_caches, activations = self._cache
        grad = grad_logits.reshape(-1, 1)
        grad = self.mlp[-1].backward(grad)
        for index in range(len(self.mlp) - 2, -1, -1):
            layer = self.mlp[index]
            # activations[index] is the *input* of layer `index`; redo
            # the pre-activation to gate the ReLU gradient.
            pre = activations[index] @ layer.weight + layer.bias
            grad = relu_grad(pre, grad)
            grad = layer.backward(grad)

        # Split the concatenated feature gradient back into segments.
        fields_dim = stack.shape[1] * stack.shape[2]
        grad_stack = grad[:, :fields_dim].reshape(stack.shape)
        cursor = fields_dim
        if self.variant == "dlrm":
            width = stack.shape[1] * (stack.shape[1] - 1) // 2
            grad_stack += dot_interaction_grad(
                stack, grad[:, cursor:cursor + width])
            cursor += width
        elif self.variant == "deepfm":
            grad_stack += fm_interaction_grad(
                stack, grad[:, cursor:cursor + 1].ravel())
            cursor += 1

        for index, spec in enumerate(self.dataset.fields):
            grad_field = grad_stack[:, index, :]
            table = self.embeddings[spec.name]
            kind, shape = pool_caches[spec.name]
            if kind == "scalar":
                table.backward(grad_field)
            elif kind == "mean":
                steps = shape[1]
                grad_seq = np.repeat(grad_field[:, None, :] / steps,
                                     steps, axis=1)
                table.backward(grad_seq.reshape(-1, self.embedding_dim))
            else:
                pooler = self.poolers[spec.name]
                grad_seq = pooler.backward(grad_field)
                table.backward(grad_seq.reshape(-1, self.embedding_dim))
        self._cache = None

    # -- training helpers ----------------------------------------------------

    def train_step(self, batch: Batch, optimizer) -> float:
        """One forward/backward/update step; returns the batch loss."""
        if batch.labels is None:
            raise ValueError("training batch has no labels")
        self.zero_grad()
        logits = self.forward(batch)
        loss = bce_loss(logits, batch.labels)
        self.backward(bce_loss_grad(logits, batch.labels))
        optimizer.step(self.parameters(), self.sparse_tables())
        return loss

    def compute_gradients(self, batch: Batch) -> float:
        """Forward + backward without applying updates (PS workers)."""
        if batch.labels is None:
            raise ValueError("training batch has no labels")
        self.zero_grad()
        logits = self.forward(batch)
        loss = bce_loss(logits, batch.labels)
        self.backward(bce_loss_grad(logits, batch.labels))
        return loss

    def predict(self, batch: Batch) -> np.ndarray:
        """Click probabilities for a batch."""
        logits = self.forward(batch)
        self._cache = None
        return sigmoid(logits)

    def parameters(self) -> dict:
        """All dense parameters as name -> (value, grad)."""
        params = {}
        for layer in self.mlp:
            params.update(layer.parameters())
        for pooler in self.poolers.values():
            params.update(pooler.parameters())
        return params

    def sparse_tables(self) -> list:
        """Embedding tables with pending sparse gradients."""
        return list(self.embeddings.values())

    def zero_grad(self) -> None:
        """Clear all dense and sparse gradients."""
        for layer in self.mlp:
            layer.zero_grad()
        for pooler in self.poolers.values():
            pooler.zero_grad()
        for table in self.embeddings.values():
            table.zero_grad()

    def dense_state(self) -> dict:
        """Snapshot of dense parameter values (copied)."""
        return {name: value.copy()
                for name, (value, _grad) in self.parameters().items()}

    def load_dense_state(self, state: dict) -> None:
        """Restore dense parameters from :meth:`dense_state`."""
        for name, (value, _grad) in self.parameters().items():
            value[:] = state[name]
