"""Optimizers over (dense dict + sparse embedding) parameters.

All optimizers share one interface: ``step(params, sparse_tables)``
where ``params`` maps name -> (value, grad) arrays updated in place,
and ``sparse_tables`` is a list of
:class:`~repro.nn.layers.DenseEmbedding` with pending sparse grads.

The paper trains embeddings with Adagrad-style sparse updates (the
industry default) and mentions LAMB as the large-batch auxiliary
optimizer PICASSO can enable.
"""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base optimizer: handles sparse embedding updates via Adagrad.

    Dense parameter handling is delegated to ``_dense_update``;
    subclasses implement their own rule.  Sparse rows always use
    Adagrad (value + accumulator slots), matching production WDL
    training where embedding optimizers must be memory-lean.
    """

    def __init__(self, lr: float = 0.01, sparse_lr: float | None = None):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.lr = lr
        self.sparse_lr = sparse_lr if sparse_lr is not None else lr
        self._sparse_state: dict = {}

    def step(self, params: dict, sparse_tables: list) -> None:
        """Apply one update to dense params and embedding tables."""
        for name, (value, grad) in params.items():
            self._dense_update(name, value, grad)
        for table in sparse_tables:
            self._sparse_update(table)

    def _dense_update(self, name: str, value: np.ndarray,
                      grad: np.ndarray) -> None:
        raise NotImplementedError

    def state_arrays(self) -> dict:
        """Every optimizer slot as ``{key: array}`` (checkpointing).

        Keys are namespaced (``sparse/<table>``, subclass slots under
        their own prefix); :meth:`load_state_arrays` inverts the
        mapping exactly, so a restored optimizer continues the same
        trajectory bit for bit.
        """
        state = {f"sparse/{name}": value
                 for name, value in self._sparse_state.items()}
        state.update(self._extra_state_arrays())
        return state

    def load_state_arrays(self, arrays: dict) -> None:
        """Restore slots saved by :meth:`state_arrays`."""
        self._sparse_state = {
            key[len("sparse/"):]: np.array(value, copy=True)
            for key, value in arrays.items()
            if key.startswith("sparse/")
        }
        self._load_extra_state(arrays)

    def _extra_state_arrays(self) -> dict:
        """Subclass hook: additional slots to checkpoint."""
        return {}

    def _load_extra_state(self, arrays: dict) -> None:
        """Subclass hook: restore :meth:`_extra_state_arrays` slots."""

    def _sparse_update(self, table) -> None:
        state = self._sparse_state.setdefault(
            table.name, np.zeros(table.table.shape, dtype=np.float64))
        for rows, grads in table.sparse_grads():
            np.add.at(state, rows, grads ** 2)
            denom = np.sqrt(state[rows]) + 1e-8
            np.add.at(table.table, rows,
                      -self.sparse_lr * grads / denom)


class SGD(Optimizer):
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0,
                 sparse_lr: float | None = None):
        super().__init__(lr, sparse_lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: dict = {}

    def _dense_update(self, name, value, grad):
        if self.momentum:
            velocity = self._velocity.setdefault(name,
                                                 np.zeros_like(value))
            velocity *= self.momentum
            velocity += grad
            value -= self.lr * velocity
        else:
            value -= self.lr * grad

    def _extra_state_arrays(self):
        return {f"velocity/{name}": value
                for name, value in self._velocity.items()}

    def _load_extra_state(self, arrays):
        self._velocity = {
            key[len("velocity/"):]: np.array(value, copy=True)
            for key, value in arrays.items()
            if key.startswith("velocity/")
        }


class Adagrad(Optimizer):
    """Adagrad: per-coordinate adaptive learning rates."""

    def __init__(self, lr: float = 0.05, sparse_lr: float | None = None,
                 epsilon: float = 1e-8):
        super().__init__(lr, sparse_lr)
        self.epsilon = epsilon
        self._accumulator: dict = {}

    def _dense_update(self, name, value, grad):
        acc = self._accumulator.setdefault(name, np.zeros_like(value))
        acc += grad ** 2
        value -= self.lr * grad / (np.sqrt(acc) + self.epsilon)

    def _extra_state_arrays(self):
        return {f"accumulator/{name}": value
                for name, value in self._accumulator.items()}

    def _load_extra_state(self, arrays):
        self._accumulator = {
            key[len("accumulator/"):]: np.array(value, copy=True)
            for key, value in arrays.items()
            if key.startswith("accumulator/")
        }


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(self, lr: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8,
                 sparse_lr: float | None = None):
        super().__init__(lr, sparse_lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: dict = {}
        self._v: dict = {}
        self._t = 0

    def step(self, params: dict, sparse_tables: list) -> None:
        self._t += 1
        super().step(params, sparse_tables)

    def _dense_update(self, name, value, grad):
        m = self._m.setdefault(name, np.zeros_like(value))
        v = self._v.setdefault(name, np.zeros_like(value))
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad ** 2
        m_hat = m / (1 - self.beta1 ** self._t)
        v_hat = v / (1 - self.beta2 ** self._t)
        value -= self.lr * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def _extra_state_arrays(self):
        state = {f"adam_m/{name}": value
                 for name, value in self._m.items()}
        state.update({f"adam_v/{name}": value
                      for name, value in self._v.items()})
        state["adam_t"] = np.array(self._t, dtype=np.int64)
        return state

    def _load_extra_state(self, arrays):
        self._m = {key[len("adam_m/"):]: np.array(value, copy=True)
                   for key, value in arrays.items()
                   if key.startswith("adam_m/")}
        self._v = {key[len("adam_v/"):]: np.array(value, copy=True)
                   for key, value in arrays.items()
                   if key.startswith("adam_v/")}
        if "adam_t" in arrays:
            self._t = int(arrays["adam_t"])


class Lamb(Adam):
    """LAMB: layer-wise trust-ratio scaling on top of Adam.

    The auxiliary optimizer the paper cites for super-large batch
    training (You et al., ICLR'19).
    """

    def _dense_update(self, name, value, grad):
        m = self._m.setdefault(name, np.zeros_like(value))
        v = self._v.setdefault(name, np.zeros_like(value))
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad ** 2
        m_hat = m / (1 - self.beta1 ** self._t)
        v_hat = v / (1 - self.beta2 ** self._t)
        update = m_hat / (np.sqrt(v_hat) + self.epsilon)
        weight_norm = np.linalg.norm(value)
        update_norm = np.linalg.norm(update)
        trust = 1.0
        if weight_norm > 0 and update_norm > 0:
            trust = weight_norm / update_norm
        value -= self.lr * trust * update
