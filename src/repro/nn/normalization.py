"""Normalization and residual blocks for the MLP head.

Paper SS II-A: "MLP also contains computation-intensive architectural
units such as batch normalization and residual connection", and SS IV
notes that super-large-batch training pairs with global batch norm.
Both are implemented here with manual gradients so the accuracy
experiments can enable them.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dense, relu, relu_grad


class BatchNorm:
    """1D batch normalization with running statistics.

    Training mode normalizes by batch statistics and maintains
    exponential running averages; evaluation mode uses the running
    averages (standard Ioffe & Szegedy semantics).
    """

    def __init__(self, dim: int, name: str, momentum: float = 0.9,
                 epsilon: float = 1e-5):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.name = name
        self.gamma = np.ones(dim)
        self.beta = np.zeros(dim)
        self.grad_gamma = np.zeros(dim)
        self.grad_beta = np.zeros(dim)
        self.running_mean = np.zeros(dim)
        self.running_var = np.ones(dim)
        self.momentum = momentum
        self.epsilon = epsilon
        self.training = True
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Normalize a ``(batch, dim)`` activation matrix."""
        if self.training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean *= self.momentum
            self.running_mean += (1 - self.momentum) * mean
            self.running_var *= self.momentum
            self.running_var += (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.epsilon)
        normalized = (x - mean) / std
        self._cache = (normalized, std, x.shape[0])
        return self.gamma * normalized + self.beta

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. the input; accumulates gamma/beta grads."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, std, batch = self._cache
        self.grad_gamma += (grad * normalized).sum(axis=0)
        self.grad_beta += grad.sum(axis=0)
        if not self.training:
            return grad * self.gamma / std
        grad_norm = grad * self.gamma
        term = (grad_norm
                - grad_norm.mean(axis=0)
                - normalized * (grad_norm * normalized).mean(axis=0))
        return term / std

    def parameters(self) -> dict:
        """Trainable scale/shift parameters."""
        return {
            f"{self.name}.gamma": (self.gamma, self.grad_gamma),
            f"{self.name}.beta": (self.beta, self.grad_beta),
        }

    def zero_grad(self) -> None:
        """Reset parameter gradients."""
        self.grad_gamma[:] = 0.0
        self.grad_beta[:] = 0.0


class ResidualBlock:
    """``y = relu(x + Dense2(relu(Dense1(x))))`` with manual grads.

    Width-preserving residual unit (He et al.), the other
    compute-intensive MLP element the paper names.
    """

    def __init__(self, dim: int, name: str, rng: np.random.Generator):
        self.name = name
        self.first = Dense(dim, dim, f"{name}.fc1", rng)
        self.second = Dense(dim, dim, f"{name}.fc2", rng)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Residual forward pass."""
        pre1 = self.first.forward(x)
        hidden = relu(pre1)
        pre2 = self.second.forward(hidden)
        summed = x + pre2
        self._cache = (pre1, summed)
        return relu(summed)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. the block input."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        pre1, summed = self._cache
        grad_sum = relu_grad(summed, grad)
        grad_hidden = self.second.backward(grad_sum)
        grad_pre1 = relu_grad(pre1, grad_hidden)
        grad_x = self.first.backward(grad_pre1)
        return grad_x + grad_sum

    def parameters(self) -> dict:
        """Both dense layers' parameters."""
        params = {}
        params.update(self.first.parameters())
        params.update(self.second.parameters())
        return params

    def zero_grad(self) -> None:
        """Reset both layers' gradients."""
        self.first.zero_grad()
        self.second.zero_grad()
