"""Basic trainable layers with manual gradients."""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, grad: np.ndarray) -> np.ndarray:
    """Gradient of ReLU given its input and the upstream gradient."""
    return grad * (x > 0)


class Dense:
    """A fully connected layer ``y = x @ W + b``.

    Parameters live in ``params`` / gradients in ``grads``, keyed so an
    optimizer can treat the whole network as one flat dict.
    """

    def __init__(self, in_dim: int, out_dim: int, name: str,
                 rng: np.random.Generator):
        if in_dim < 1 or out_dim < 1:
            raise ValueError("layer dims must be >= 1")
        scale = np.sqrt(2.0 / (in_dim + out_dim))
        self.name = name
        self.weight = (rng.standard_normal((in_dim, out_dim))
                       * scale).astype(np.float64)
        self.bias = np.zeros(out_dim, dtype=np.float64)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Affine transform; caches the input for backward."""
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. input."""
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.grad_weight += self._input.T @ grad
        self.grad_bias += grad.sum(axis=0)
        return grad @ self.weight.T

    def parameters(self) -> dict:
        """Mapping of parameter name -> (value, gradient) arrays."""
        return {
            f"{self.name}.weight": (self.weight, self.grad_weight),
            f"{self.name}.bias": (self.bias, self.grad_bias),
        }

    def zero_grad(self) -> None:
        """Reset accumulated gradients."""
        self.grad_weight[:] = 0.0
        self.grad_bias[:] = 0.0


class DenseEmbedding:
    """A vectorized embedding matrix with sparse gradient updates.

    IDs are folded into ``vocab_rows`` via modulo (the standard hash
    trick) so laptop-scale training can consume the full-scale ID
    streams.  Gradients accumulate into a sparse (ids, deltas) list the
    optimizer applies with ``np.add.at`` semantics.
    """

    def __init__(self, vocab_rows: int, dim: int, name: str,
                 rng: np.random.Generator, scale: float = 0.05):
        if vocab_rows < 1 or dim < 1:
            raise ValueError("vocab_rows and dim must be >= 1")
        self.name = name
        self.vocab_rows = vocab_rows
        self.dim = dim
        self.table = (rng.standard_normal((vocab_rows, dim))
                      * scale).astype(np.float64)
        self._sparse_grads: list = []
        self._last_rows: np.ndarray | None = None

    def fold(self, ids: np.ndarray) -> np.ndarray:
        """Map raw categorical IDs into table rows."""
        return np.asarray(ids, dtype=np.int64) % self.vocab_rows

    def forward(self, ids: np.ndarray) -> np.ndarray:
        """Lookup rows; shape ``(len(ids), dim)``."""
        rows = self.fold(ids)
        self._last_rows = rows
        return self.table[rows]

    def backward(self, grad: np.ndarray) -> None:
        """Record sparse gradients for the most recent forward."""
        if self._last_rows is None:
            raise RuntimeError("backward called before forward")
        self._sparse_grads.append((self._last_rows, grad))

    def sparse_grads(self) -> list:
        """Pending (rows, grads) pairs since the last ``zero_grad``."""
        return self._sparse_grads

    def zero_grad(self) -> None:
        """Drop pending sparse gradients."""
        self._sparse_grads = []

    def memory_bytes(self) -> int:
        """Bytes held by the table."""
        return self.table.nbytes
