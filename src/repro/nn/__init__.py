"""A from-scratch numpy neural-network engine for WDL models.

This is the *accuracy* half of the reproduction: Tab. III trains
DLRM/DeepFM on Criteo-like data and DIN/DIEN on Alibaba-like data and
reports AUC parity between PICASSO's synchronous hybrid strategy and
the baselines, with asynchronous TF-PS slightly behind.  Everything
here is real training with manual backpropagation — embeddings, MLPs,
attention, GRUs, optimizers, losses, and the AUC metric.
"""

from repro.nn.layers import Dense, DenseEmbedding, relu, relu_grad, sigmoid
from repro.nn.interactions import (
    AttentionPooling,
    GruPooling,
    dot_interaction,
    dot_interaction_grad,
    fm_interaction,
    fm_interaction_grad,
)
from repro.nn.optim import SGD, Adagrad, Adam, Lamb, Optimizer
from repro.nn.loss import bce_loss, bce_loss_grad
from repro.nn.metrics import auc_score, log_loss
from repro.nn.network import WdlNetwork
from repro.nn.normalization import BatchNorm, ResidualBlock

__all__ = [
    "Dense",
    "DenseEmbedding",
    "relu",
    "relu_grad",
    "sigmoid",
    "AttentionPooling",
    "GruPooling",
    "dot_interaction",
    "dot_interaction_grad",
    "fm_interaction",
    "fm_interaction_grad",
    "SGD",
    "Adagrad",
    "Adam",
    "Lamb",
    "Optimizer",
    "bce_loss",
    "bce_loss_grad",
    "auc_score",
    "log_loss",
    "WdlNetwork",
    "BatchNorm",
    "ResidualBlock",
]
