"""Binary cross-entropy on logits, with gradient."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import sigmoid


def bce_loss(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean binary cross-entropy computed stably from logits."""
    logits = np.asarray(logits, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if logits.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: {logits.shape} vs {labels.shape}")
    # log(1+exp(x)) without overflow.
    softplus = np.maximum(logits, 0) + np.log1p(np.exp(-np.abs(logits)))
    return float(np.mean(softplus - logits * labels))


def bce_loss_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """d(mean BCE)/d(logits) = (sigmoid(x) - y) / n."""
    logits = np.asarray(logits, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    return (sigmoid(logits) - labels) / logits.size
