"""Feature-interaction computations with manual gradients.

Implements the interaction math the Tab. III models need: DLRM's
pairwise dot interaction, DeepFM's FM second-order term, DIN's target
attention, and DIEN's GRU over behaviour sequences (truncated BPTT).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import sigmoid


def dot_interaction(fields: np.ndarray) -> np.ndarray:
    """DLRM pairwise dots.

    :param fields: ``(batch, num_fields, dim)`` stacked embeddings.
    :returns: ``(batch, num_fields*(num_fields-1)//2)`` upper-triangle
        pairwise inner products.
    """
    grams = np.einsum("bfd,bgd->bfg", fields, fields)
    count = fields.shape[1]
    iu = np.triu_indices(count, k=1)
    return grams[:, iu[0], iu[1]]


def dot_interaction_grad(fields: np.ndarray,
                         grad: np.ndarray) -> np.ndarray:
    """Gradient of :func:`dot_interaction` w.r.t. the field stack."""
    batch, count, _dim = fields.shape
    iu = np.triu_indices(count, k=1)
    grad_gram = np.zeros((batch, count, count))
    grad_gram[:, iu[0], iu[1]] = grad
    grad_gram = grad_gram + grad_gram.transpose(0, 2, 1)
    return np.einsum("bfg,bgd->bfd", grad_gram, fields)


def fm_interaction(fields: np.ndarray) -> np.ndarray:
    """Factorization-machine second-order term.

    ``0.5 * ((sum_f v_f)^2 - sum_f v_f^2)`` summed over the embedding
    dimension; shape ``(batch, 1)``.
    """
    sum_v = fields.sum(axis=1)
    sum_sq = (fields ** 2).sum(axis=1)
    term = 0.5 * (sum_v ** 2 - sum_sq)
    return term.sum(axis=1, keepdims=True)


def fm_interaction_grad(fields: np.ndarray, grad: np.ndarray) -> np.ndarray:
    """Gradient of :func:`fm_interaction` w.r.t. the field stack.

    :param grad: upstream gradient of shape ``(batch,)`` (the FM term
        is a scalar per instance).
    """
    grad = np.asarray(grad).reshape(-1, 1, 1)
    sum_v = fields.sum(axis=1, keepdims=True)
    return grad * (sum_v - fields)


class AttentionPooling:
    """DIN-style target attention over a behaviour sequence.

    Scores each sequence step by its inner product with a learned query
    vector, softmaxes, and returns the weighted sum.  (The full DIN
    conditions the query on the candidate item; a learned global query
    preserves the trainability characteristics at laptop scale.)
    """

    def __init__(self, dim: int, name: str, rng: np.random.Generator):
        self.name = name
        self.query = (rng.standard_normal(dim) * 0.1).astype(np.float64)
        self.grad_query = np.zeros_like(self.query)
        self._cache = None

    def forward(self, sequence: np.ndarray) -> np.ndarray:
        """:param sequence: ``(batch, steps, dim)``; returns ``(batch, dim)``."""
        scores = sequence @ self.query
        scores -= scores.max(axis=1, keepdims=True)
        weights = np.exp(scores)
        weights /= weights.sum(axis=1, keepdims=True)
        pooled = np.einsum("bs,bsd->bd", weights, sequence)
        self._cache = (sequence, weights)
        return pooled

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. the sequence; accumulates the query grad."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        sequence, weights = self._cache
        grad_weights = np.einsum("bd,bsd->bs", grad, sequence)
        grad_seq = weights[:, :, None] * grad[:, None, :]
        # Softmax backward.
        dot = (grad_weights * weights).sum(axis=1, keepdims=True)
        grad_scores = weights * (grad_weights - dot)
        grad_seq += grad_scores[:, :, None] * self.query[None, None, :]
        self.grad_query += np.einsum("bs,bsd->d", grad_scores, sequence)
        return grad_seq

    def parameters(self) -> dict:
        """Trainable parameters of the pooling module."""
        return {f"{self.name}.query": (self.query, self.grad_query)}

    def zero_grad(self) -> None:
        """Reset the query gradient."""
        self.grad_query[:] = 0.0


class GruPooling:
    """A minimal GRU over a behaviour sequence, returning the last state.

    Implements the standard update/reset-gate recurrence with full
    backpropagation through time; used for DIEN's interest-evolution
    layer at laptop scale (short sequences).
    """

    def __init__(self, dim: int, name: str, rng: np.random.Generator):
        self.name = name
        scale = 1.0 / np.sqrt(dim)
        self.w_z = (rng.standard_normal((2 * dim, dim)) * scale)
        self.w_r = (rng.standard_normal((2 * dim, dim)) * scale)
        self.w_h = (rng.standard_normal((2 * dim, dim)) * scale)
        self.grad_w_z = np.zeros_like(self.w_z)
        self.grad_w_r = np.zeros_like(self.w_r)
        self.grad_w_h = np.zeros_like(self.w_h)
        self.dim = dim
        self._cache = None

    def forward(self, sequence: np.ndarray) -> np.ndarray:
        """:param sequence: ``(batch, steps, dim)``; returns ``(batch, dim)``."""
        batch, steps, dim = sequence.shape
        h = np.zeros((batch, dim))
        states = []
        for step in range(steps):
            x = sequence[:, step, :]
            xh = np.concatenate([x, h], axis=1)
            z = sigmoid(xh @ self.w_z)
            r = sigmoid(xh @ self.w_r)
            xrh = np.concatenate([x, r * h], axis=1)
            h_tilde = np.tanh(xrh @ self.w_h)
            new_h = (1 - z) * h + z * h_tilde
            states.append((x, h, z, r, h_tilde))
            h = new_h
        self._cache = (sequence.shape, states)
        return h

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """BPTT; returns gradient w.r.t. the input sequence."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        (batch, steps, dim), states = self._cache
        grad_seq = np.zeros((batch, steps, dim))
        grad_h = grad
        for step in reversed(range(steps)):
            x, h_prev, z, r, h_tilde = states[step]
            grad_z = grad_h * (h_tilde - h_prev)
            grad_h_tilde = grad_h * z
            grad_h_prev = grad_h * (1 - z)

            pre_h = grad_h_tilde * (1 - h_tilde ** 2)
            xrh = np.concatenate([x, r * h_prev], axis=1)
            self.grad_w_h += xrh.T @ pre_h
            grad_xrh = pre_h @ self.w_h.T
            grad_x = grad_xrh[:, :dim]
            grad_rh = grad_xrh[:, dim:]
            grad_r = grad_rh * h_prev
            grad_h_prev += grad_rh * r

            pre_z = grad_z * z * (1 - z)
            pre_r = grad_r * r * (1 - r)
            xh = np.concatenate([x, h_prev], axis=1)
            self.grad_w_z += xh.T @ pre_z
            self.grad_w_r += xh.T @ pre_r
            grad_xh = pre_z @ self.w_z.T + pre_r @ self.w_r.T
            grad_x += grad_xh[:, :dim]
            grad_h_prev += grad_xh[:, dim:]

            grad_seq[:, step, :] = grad_x
            grad_h = grad_h_prev
        return grad_seq

    def parameters(self) -> dict:
        """Trainable GRU matrices."""
        return {
            f"{self.name}.w_z": (self.w_z, self.grad_w_z),
            f"{self.name}.w_r": (self.w_r, self.grad_w_r),
            f"{self.name}.w_h": (self.w_h, self.grad_w_h),
        }

    def zero_grad(self) -> None:
        """Reset gate gradients."""
        self.grad_w_z[:] = 0.0
        self.grad_w_r[:] = 0.0
        self.grad_w_h[:] = 0.0
