"""Evaluation metrics: AUC and log-loss (the standard CTR metrics)."""

from __future__ import annotations

import numpy as np


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    Ties in scores receive average ranks, matching
    ``sklearn.metrics.roc_auc_score``.  Returns 0.5 when one class is
    absent (undefined AUC).
    """
    labels = np.asarray(labels, dtype=np.float64).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if labels.shape != scores.shape:
        raise ValueError(
            f"shape mismatch: {labels.shape} vs {scores.shape}")
    positives = labels > 0.5
    num_pos = int(positives.sum())
    num_neg = labels.size - num_pos
    if num_pos == 0 or num_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(labels.size, dtype=np.float64)
    sorted_scores = scores[order]
    index = 0
    position = 1.0
    while index < labels.size:
        tail = index
        while (tail + 1 < labels.size
               and sorted_scores[tail + 1] == sorted_scores[index]):
            tail += 1
        average_rank = (position + position + (tail - index)) / 2.0
        ranks[order[index:tail + 1]] = average_rank
        position += tail - index + 1
        index = tail + 1
    rank_sum = ranks[positives].sum()
    u_statistic = rank_sum - num_pos * (num_pos + 1) / 2.0
    return float(u_statistic / (num_pos * num_neg))


def log_loss(labels: np.ndarray, probabilities: np.ndarray,
             epsilon: float = 1e-12) -> float:
    """Mean negative log-likelihood of the predicted probabilities."""
    labels = np.asarray(labels, dtype=np.float64).ravel()
    probs = np.clip(np.asarray(probabilities, dtype=np.float64).ravel(),
                    epsilon, 1.0 - epsilon)
    if labels.shape != probs.shape:
        raise ValueError(
            f"shape mismatch: {labels.shape} vs {probs.shape}")
    return float(-np.mean(labels * np.log(probs)
                          + (1 - labels) * np.log(1 - probs)))
