"""Hot-swapping model versions under live traffic (double buffering).

A serving replica cannot pause for a checkpoint load every time the
streaming trainer publishes — at production rates even a one-second
stall sheds thousands of requests.  :class:`HotSwapServer` wraps a
:class:`~repro.serving.server.ModelServer` with the standard
double-buffer protocol:

* a **standby** network (same architecture, privately owned weights)
  absorbs the new version in the background: the registry chain is
  materialized into it while the active network keeps serving, with
  the copy priced at PCIe cost in modeled time (only the bytes the
  standby does not already have — a delta-sized transfer, not a full
  checkpoint);
* once the standby is loaded, the next batch boundary **flips** the
  two networks — a pointer swap whose only serving cost is rebinding
  the model's kernels, microseconds, charged explicitly to the server
  timeline so the pause is measured, not hidden.

The embedding *cache* is deliberately not double-buffered: cache keys
are request IDs, which do not change across versions, so hit-ratio
state survives every swap (a version bump must not re-warm the cache).

While a background load is in flight the active replica's embedding
fetches share the PCIe link with the snapshot copy, so service time is
inflated by ``load_share`` — the swap's degraded mode, shaped like
:class:`~repro.faults.degraded.DegradedModeController`'s hooks so the
two compose (see
:class:`~repro.faults.degraded.CompositeServeController`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.network import WdlNetwork
from repro.online.registry import SnapshotRegistry, SnapshotVersion
from repro.serving.server import ModelServer


def clone_network(network: WdlNetwork) -> WdlNetwork:
    """A fresh network with the same architecture (its own buffers).

    The standby half of the double buffer: identical dataset, variant,
    dims and table shapes, so registry chains materialize into it and
    the flip is shape-compatible by construction.
    """
    mlp_layers = tuple(layer.weight.shape[1]
                       for layer in network.mlp[:-1])
    vocab_rows = max(table.vocab_rows
                     for table in network.sparse_tables())
    return WdlNetwork(network.dataset, variant=network.variant,
                      embedding_dim=network.embedding_dim,
                      vocab_rows=vocab_rows, mlp_layers=mlp_layers,
                      seed=0)


@dataclass
class SwapRecord:
    """One version swap, from publish pickup to pointer flip."""

    version: int
    step: int
    requested_s: float
    ready_s: float
    load_s: float
    bytes_loaded: int
    #: set when the flip lands on a batch boundary.
    applied_s: float | None = None
    pause_s: float = 0.0

    def as_dict(self) -> dict:
        return {"version": self.version, "step": self.step,
                "requested_s": self.requested_s, "ready_s": self.ready_s,
                "load_s": self.load_s, "bytes_loaded": self.bytes_loaded,
                "applied_s": self.applied_s, "pause_s": self.pause_s}


class HotSwapServer:
    """Double-buffered version swapping for one model server.

    :param server: the live server whose ``network`` gets flipped.
    :param registry: where published versions come from.
    :param load_share: fraction of embedding-fetch bandwidth the
        background snapshot copy steals while in flight (service-time
        inflation ``1 + load_share`` during the load window).
    """

    def __init__(self, server: ModelServer, registry: SnapshotRegistry,
                 load_share: float = 0.1):
        if not 0.0 <= load_share < 1.0:
            raise ValueError(
                f"load_share must be in [0, 1), got {load_share}")
        self.server = server
        self.registry = registry
        self.load_share = float(load_share)
        self.node = server.node
        self.standby = clone_network(server.network)
        #: registry versions currently held by each buffer (``None``
        #: means initial weights / never loaded).
        self.active_version: int | None = None
        self.active_step = 0
        self.standby_version: int | None = None
        self._pending: SwapRecord | None = None
        self.swaps: list = []
        # The flip rebinds one kernel per lookup/MLP stage — the same
        # per-slice kernel census the server's latency model uses.
        network = server.network
        kernels = network.dataset.num_fields + len(network.mlp) + 2
        self.flip_pause_s = kernels * (
            self.node.gpu.kernel_launch_latency
            + self.node.cpu.op_dispatch_latency)

    # -- background load -----------------------------------------------------

    def pending(self) -> SwapRecord | None:
        """The in-flight swap, if a load has not flipped yet."""
        return self._pending

    def _bytes_to_load(self, entry: SnapshotVersion) -> int:
        """Snapshot bytes the standby is missing for ``entry``.

        The standby already holds ``standby_version`` (the previously
        active weights), so only chain links newer than that ship; a
        cold standby (or one older than the chain's base) pays for the
        full base too.
        """
        chain = self.registry.chain(entry.version)
        have = self.standby_version
        if have is None or have < chain[0].version:
            return sum(link.nbytes for link in chain)
        return sum(link.nbytes for link in chain
                   if link.version > have)

    def begin_swap(self, entry: SnapshotVersion,
                   now_s: float) -> SwapRecord:
        """Start loading ``entry`` into the standby at ``now_s``.

        The weights land immediately (the simulation is not
        time-sliced) but the swap only becomes flippable at
        ``ready_s`` — ``now_s`` plus the modeled PCIe transfer of the
        missing chain bytes.
        """
        if self._pending is not None:
            raise RuntimeError(
                f"swap to v{self._pending.version} still in flight")
        nbytes = self._bytes_to_load(entry)
        load_s = self.node.pcie.latency + nbytes / self.node.pcie.bandwidth
        self.registry.materialize(self.standby, entry.version)
        self.standby_version = entry.version
        record = SwapRecord(version=entry.version, step=entry.step,
                            requested_s=now_s, ready_s=now_s + load_s,
                            load_s=load_s, bytes_loaded=nbytes)
        self._pending = record
        return record

    # -- the flip ------------------------------------------------------------

    def maybe_flip(self, now_s: float) -> float:
        """Flip to the standby if its load has finished by ``now_s``.

        Returns the pause (seconds) to charge to the serving timeline —
        0.0 when nothing flips.  After a flip the old active network
        becomes the new standby, keeping its version tag so the next
        load is delta-sized.
        """
        record = self._pending
        if record is None or record.ready_s > now_s:
            return 0.0
        self.server.network, self.standby = \
            self.standby, self.server.network
        self.active_version, self.standby_version = \
            self.standby_version, self.active_version
        self.active_step = record.step
        record.applied_s = now_s
        record.pause_s = self.flip_pause_s
        self.swaps.append(record)
        self._pending = None
        return self.flip_pause_s

    # -- serve-controller hooks ----------------------------------------------

    def service_factor(self, t: float) -> float:
        """Fetch inflation while the background copy shares PCIe."""
        record = self._pending
        if record is not None and record.requested_s <= t < record.ready_s:
            return 1.0 + self.load_share
        return 1.0

    def summary(self) -> dict:
        """JSON-ready account of the run's swap activity."""
        pauses = [record.pause_s for record in self.swaps]
        return {
            "swaps": len(self.swaps),
            "active_version": self.active_version,
            "active_step": self.active_step,
            "bytes_loaded": sum(record.bytes_loaded
                                for record in self.swaps),
            "total_pause_s": sum(pauses),
            "max_pause_s": max(pauses, default=0.0),
        }
