"""Incremental embedding-delta snapshots: ship only what changed.

A full checkpoint of a production recommender is dominated by its
embedding tables, yet between two publishes a streaming trainer only
touches the rows its recent batches looked up — under Zipf-skewed
traffic a small, hot subset of the vocabulary.  A
:class:`DeltaSnapshot` therefore carries *changed rows only* (per-table
``(row_indices, new_values)`` pairs) plus the full dense parameters
(MLP weights are a rounding error next to the tables), layered on top
of a full :func:`~repro.training.checkpoint.save_checkpoint` base.

Rows are ordered hot-first using the trainer's per-table
:class:`~repro.embedding.counter.FrequencyCounter` statistics (ties
broken by row index, so the ordering is seed-stable): a serving
replica that applies a delta front-to-back repairs the rows carrying
the most traffic mass first, which is exactly the Hotline-style
"hot IDs ship first" prioritization (arXiv 2204.05436).

Applying a base checkpoint plus every delta published since reproduces
the trainer's weights **bitwise** at the publish step — the invariant
the hot-swap serving path builds on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.nn.network import WdlNetwork
from repro.training.checkpoint import atomic_savez

_DENSE_PREFIX = "dense/"
_ROWS_PREFIX = "rows/"
_VALUES_PREFIX = "values/"


@dataclass(frozen=True)
class DeltaSnapshot:
    """Changed-rows-only diff between two published model states.

    :param version: this snapshot's registry version.
    :param base_version: the version this delta applies on top of (its
        immediate predecessor in the publish chain).
    :param step: the trainer step the delta was captured at.
    :param tables: field name -> ``(rows, values)``; ``rows`` is an
        int64 array of table row indices (hot rows first), ``values``
        the corresponding ``(len(rows), dim)`` weight rows.
    :param dense: dense parameter name -> full value array.
    :param provenance: run-manifest dict (see
        :func:`repro.telemetry.provenance.build_manifest`) identifying
        the producing run; round-trips through save/load so a serving
        replica can trace any published version back to its trainer
        configuration.
    """

    version: int
    base_version: int
    step: int
    tables: dict
    dense: dict
    provenance: dict = field(default_factory=dict, compare=False)

    def changed_rows(self) -> int:
        """Total embedding rows carried across all tables."""
        return sum(rows.size for rows, _values in self.tables.values())

    def nbytes(self) -> int:
        """Serialized payload size (indices + row values + dense)."""
        total = 0
        for rows, values in self.tables.values():
            total += rows.nbytes + values.nbytes
        for value in self.dense.values():
            total += value.nbytes
        return total


def _hot_first(rows: np.ndarray, counter) -> np.ndarray:
    """Order ``rows`` hottest-first by a counter's statistics.

    Sorts on ``(-count, row)`` — the same deterministic tie-break as
    :meth:`~repro.embedding.counter.FrequencyCounter.most_common` — so
    two trainers that observed the same row multiset emit deltas with
    identical byte layouts.
    """
    if counter is None:
        return np.sort(rows)
    counts = np.array([counter.count(int(row)) for row in rows])
    order = np.lexsort((rows, -counts))
    return rows[order]


def capture_delta(network: WdlNetwork, dirty_rows: dict, version: int,
                  base_version: int, step: int,
                  counters: dict | None = None,
                  provenance: dict | None = None) -> DeltaSnapshot:
    """Snapshot the current values of the dirty rows (plus dense).

    :param dirty_rows: field name -> iterable of table row indices
        touched since the previous publish (the streaming trainer
        accumulates these from each step's sparse gradients).
    :param counters: optional field name ->
        :class:`~repro.embedding.counter.FrequencyCounter` of observed
        *rows*; when given, each table's rows are ordered hot-first.
    :param provenance: optional run manifest stamped onto the snapshot.
    """
    counters = counters or {}
    tables = {}
    for field_name, table in network.embeddings.items():
        rows = np.unique(np.asarray(
            list(dirty_rows.get(field_name, ())), dtype=np.int64))
        rows = _hot_first(rows, counters.get(field_name))
        tables[field_name] = (rows, table.table[rows].copy())
    dense = {name: value.copy()
             for name, (value, _grad) in network.parameters().items()}
    return DeltaSnapshot(version=version, base_version=base_version,
                         step=step, tables=tables, dense=dense,
                         provenance=dict(provenance or {}))


def apply_delta(network: WdlNetwork, delta: DeltaSnapshot) -> None:
    """Overwrite the network's changed rows + dense params in place."""
    for field_name, (rows, values) in delta.tables.items():
        table = network.embeddings[field_name]
        if rows.size and int(rows.max()) >= table.vocab_rows:
            raise ValueError(
                f"delta row {int(rows.max())} out of range for table "
                f"{field_name} ({table.vocab_rows} rows)")
        table.table[rows] = values
    for name, (value, _grad) in network.parameters().items():
        if name in delta.dense:
            value[:] = delta.dense[name]


def save_delta(delta: DeltaSnapshot, path) -> Path:
    """Serialize a delta to ``path`` (.npz), atomically."""
    arrays = {}
    for field_name, (rows, values) in delta.tables.items():
        arrays[f"{_ROWS_PREFIX}{field_name}"] = rows
        arrays[f"{_VALUES_PREFIX}{field_name}"] = values
    for name, value in delta.dense.items():
        arrays[f"{_DENSE_PREFIX}{name}"] = value
    header = {"version": delta.version,
              "base_version": delta.base_version,
              "step": delta.step,
              "provenance": delta.provenance}
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8)
    return atomic_savez(path, **arrays)


def load_delta(path) -> DeltaSnapshot:
    """Rebuild a :class:`DeltaSnapshot` written by :func:`save_delta`."""
    path = Path(path)
    if not path.exists():
        with_suffix = path.with_name(path.name + ".npz")
        if with_suffix.exists():
            path = with_suffix
        else:
            raise FileNotFoundError(
                f"no delta snapshot at {path} or {with_suffix}")
    with np.load(path) as archive:
        header = json.loads(bytes(archive["__header__"]).decode())
        tables = {}
        dense = {}
        for key in archive.files:
            if key.startswith(_ROWS_PREFIX):
                field_name = key[len(_ROWS_PREFIX):]
                tables[field_name] = (
                    archive[key],
                    archive[f"{_VALUES_PREFIX}{field_name}"])
            elif key.startswith(_DENSE_PREFIX):
                dense[key[len(_DENSE_PREFIX):]] = archive[key]
    return DeltaSnapshot(version=int(header["version"]),
                         base_version=int(header["base_version"]),
                         step=int(header["step"]),
                         tables=tables, dense=dense,
                         provenance=header.get("provenance", {}))
