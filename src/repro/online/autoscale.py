"""SLO-burn-rate-driven replica autoscaling.

The serving-side control loop every production recommender runs: watch
the fraction of requests violating the latency SLO per time window
(normalized by the error budget — the *burn rate* of
:class:`~repro.telemetry.monitor.SloBurnRateMonitor`), add a replica
when the budget burns too fast, retire one when traffic ebbs.

:class:`ReplicaAutoscaler` reuses the monitor's exact window/budget
arithmetic so an alert on the telemetry side and a scale-up on the
control side are the same event seen twice.  Capacity feeds back into
the simulation through the duck-typed ``service_factor`` hook (shared
with :class:`~repro.faults.degraded.DegradedModeController`): ``R``
replicas split the load, so modeled service time scales by ``1 / R``.

Scaling is deliberately conservative — one replica per decision, with
a cooldown — because the burn-rate signal lags capacity changes by a
window; an eager controller oscillates (the classic autoscaler
flapping failure mode) and ends up *worse* than static provisioning.
"""

from __future__ import annotations

from repro.telemetry.monitor import SloBurnRateMonitor


class ReplicaAutoscaler:
    """Scale replicas on windowed SLO burn rate, with cooldown.

    :param monitor: supplies the SLO, error budget and window width;
        a window's burn rate is computed exactly as its
        :meth:`~repro.telemetry.monitor.SloBurnRateMonitor.analyze`
        does per window.
    :param min_replicas / max_replicas: capacity bounds.
    :param scale_up_burn: burn rate above which a replica is added.
    :param scale_down_burn: burn rate below which one is retired
        (must be < ``scale_up_burn`` — the gap is the hysteresis band).
    :param cooldown_windows: windows to hold after any change before
        the next decision may fire.
    """

    def __init__(self, monitor: SloBurnRateMonitor,
                 min_replicas: int = 1, max_replicas: int = 8,
                 scale_up_burn: float = 1.0,
                 scale_down_burn: float = 0.25,
                 cooldown_windows: int = 2):
        if not 1 <= min_replicas <= max_replicas:
            raise ValueError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"[{min_replicas}, {max_replicas}]")
        if not 0.0 <= scale_down_burn < scale_up_burn:
            raise ValueError(
                f"need 0 <= scale_down_burn < scale_up_burn, got "
                f"{scale_down_burn} vs {scale_up_burn}")
        if cooldown_windows < 0:
            raise ValueError("cooldown_windows must be >= 0, got "
                             f"{cooldown_windows}")
        self.monitor = monitor
        self.min_replicas = int(min_replicas)
        self.max_replicas = int(max_replicas)
        self.scale_up_burn = float(scale_up_burn)
        self.scale_down_burn = float(scale_down_burn)
        self.cooldown_windows = int(cooldown_windows)
        self.replicas = self.min_replicas
        #: ``(window_start_s, replicas_after_decision)`` per decision.
        self.timeline: list = [(0.0, self.replicas)]
        self.scale_ups = 0
        self.scale_downs = 0
        self._window: dict = {}  # open window index -> [viol, total]
        self._decided_through = -1
        self._cooldown_left = 0
        self._replica_windows = 0

    # -- event intake --------------------------------------------------------

    def observe(self, when_s: float, latency_s: float | None) -> None:
        """Record one request outcome (``latency_s=None`` = shed).

        Events must arrive in nondecreasing window order overall (the
        serving loop emits them batch by batch); call
        :meth:`settle` to close windows strictly before the current
        modeled time.
        """
        violated = (latency_s is None
                    or latency_s > self.monitor.slo_ms * 1e-3)
        index = int(when_s // self.monitor.window_s)
        window = self._window.setdefault(index, [0, 0])
        window[0] += 1 if violated else 0
        window[1] += 1

    def settle(self, now_s: float) -> int:
        """Decide every window that closed before ``now_s``.

        Returns the replica count in force after the decisions; empty
        windows (no traffic) count toward cooldown but never scale.
        """
        closed = int(now_s // self.monitor.window_s) - 1
        for index in range(self._decided_through + 1, closed + 1):
            violations, total = self._window.pop(index, (0, 0))
            self._decide(index, violations, total)
        self._decided_through = max(self._decided_through, closed)
        return self.replicas

    def finalize(self) -> int:
        """Decide all remaining open windows (end of trace)."""
        for index in sorted(self._window):
            if index <= self._decided_through:
                continue
            violations, total = self._window[index]
            self._decide(index, violations, total)
            self._decided_through = index
        self._window.clear()
        return self.replicas

    # -- the control law -----------------------------------------------------

    def _decide(self, index: int, violations: int, total: int) -> None:
        self._replica_windows += self.replicas
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return
        if total == 0:
            return
        burn = (violations / total) / self.monitor.budget
        if burn > self.scale_up_burn and self.replicas < self.max_replicas:
            self.replicas += 1
            self.scale_ups += 1
        elif (burn < self.scale_down_burn
              and self.replicas > self.min_replicas):
            self.replicas -= 1
            self.scale_downs += 1
        else:
            return
        self._cooldown_left = self.cooldown_windows
        self.timeline.append(
            (index * self.monitor.window_s, self.replicas))

    # -- serve-controller hooks ----------------------------------------------

    def service_factor(self, t: float) -> float:
        """Perfect load splitting: ``R`` replicas, ``1/R`` the time."""
        return 1.0 / self.replicas

    def summary(self) -> dict:
        """JSON-ready account of the scaling activity."""
        return {
            "replicas": self.replicas,
            "max_replicas_seen": max(count for _t, count in self.timeline),
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "decisions": len(self.timeline) - 1,
            "mean_replicas": (self._replica_windows
                              / max(1, self._decided_through + 1)),
            "timeline": [list(entry) for entry in self.timeline],
        }
