"""Continuous training -> online serving, closed into one loop.

Production recommenders never stop training: events stream in, the
model follows the distribution, and serving replicas pick up fresh
weights every few minutes without dropping traffic.  This package
builds that loop out of the existing PICASSO stack:

* :mod:`~repro.online.stream` — :class:`DriftingStream`: an infinite
  Zipf event stream whose hot-ID window rotates over time (concept
  drift), randomly addressable by step.
* :mod:`~repro.online.streaming` — :class:`StreamingTrainer`: trains
  on the stream and tracks which embedding rows each step dirtied.
* :mod:`~repro.online.delta` — :class:`DeltaSnapshot`: changed-rows-only
  diffs (hot rows first) that layer on full checkpoints bitwise.
* :mod:`~repro.online.registry` — :class:`SnapshotRegistry`: versioned
  atomic publishes, delta chains, compaction and GC.
* :mod:`~repro.online.hotswap` — :class:`HotSwapServer`: double-buffered
  weight flips under live traffic, with the load priced at PCIe cost.
* :mod:`~repro.online.autoscale` — :class:`ReplicaAutoscaler`: SLO
  burn-rate windows drive replica counts, with hysteresis + cooldown.
* :mod:`~repro.online.loop` — :func:`simulate_stream`: the whole loop
  on one modeled clock, reported as a :class:`StreamReport`.
"""

from repro.online.autoscale import ReplicaAutoscaler
from repro.online.delta import (
    DeltaSnapshot,
    apply_delta,
    capture_delta,
    load_delta,
    save_delta,
)
from repro.online.hotswap import HotSwapServer, SwapRecord, clone_network
from repro.online.loop import StreamReport, simulate_stream
from repro.online.registry import SnapshotRegistry, SnapshotVersion
from repro.online.stream import DriftingStream
from repro.online.streaming import PublishRecord, StreamingTrainer

__all__ = [
    "DeltaSnapshot",
    "DriftingStream",
    "HotSwapServer",
    "PublishRecord",
    "ReplicaAutoscaler",
    "SnapshotRegistry",
    "SnapshotVersion",
    "StreamReport",
    "StreamingTrainer",
    "SwapRecord",
    "apply_delta",
    "capture_delta",
    "clone_network",
    "load_delta",
    "save_delta",
    "simulate_stream",
]
