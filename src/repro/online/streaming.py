"""The streaming trainer: continuous updates + periodic publishes.

:class:`StreamingTrainer` is the producer half of the
continuous-training -> online-serving loop: it consumes a
:class:`~repro.online.stream.DriftingStream` one batch at a time
through the ordinary :class:`~repro.training.trainer.SyncTrainer`
step path (same telemetry, same optimizer semantics) and, every
``publish_interval`` steps, publishes its weights to a
:class:`~repro.online.registry.SnapshotRegistry`.

Between publishes it keeps two pieces of bookkeeping the delta format
needs:

* **dirty rows** — the union of embedding-table rows touched by the
  optimizer since the last publish, harvested from each step's pending
  sparse gradients (exactly the rows whose values can differ from the
  published state);
* **row heat** — a per-table
  :class:`~repro.embedding.counter.FrequencyCounter` over the same
  rows, so the delta can ship hot rows first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.embedding.counter import FrequencyCounter
from repro.nn.network import WdlNetwork
from repro.online.registry import SnapshotRegistry, SnapshotVersion
from repro.online.stream import DriftingStream
from repro.training.trainer import SyncTrainer


@dataclass
class PublishRecord:
    """One publish: which version landed, when, and its payload size."""

    version: SnapshotVersion
    step: int
    dirty_rows: int

    def as_dict(self) -> dict:
        return {"version": self.version.version,
                "kind": self.version.kind, "step": self.step,
                "dirty_rows": self.dirty_rows,
                "nbytes": self.version.nbytes}


@dataclass
class StreamingTrainerStats:
    """Rolling account of a streaming trainer's life so far."""

    steps: int = 0
    publishes: int = 0
    losses: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {"steps": self.steps, "publishes": self.publishes,
                "final_loss": self.losses[-1] if self.losses
                else float("nan")}


class StreamingTrainer:
    """Train forever on a drifting stream, publishing snapshots.

    :param network: the live model (its weights are what publishes
        capture).
    :param stream: the event source; step ``k`` trains on
        ``stream.batch(k)``.
    :param registry: where publishes land; the registry decides
        full-vs-delta (first publish and every ``max_chain`` publishes
        compact to a full base).
    :param publish_interval: steps between publishes (> 0).
    :param optimizer/tracer/registry_metrics: forwarded to the inner
        :class:`~repro.training.trainer.SyncTrainer`.
    :param flight: optional :class:`repro.telemetry.FlightRecorder`
        forwarded to the inner trainer (loss samples, step guard).
    :param provenance: optional run-manifest dict stamped onto every
        publish (delta headers + registry manifest entries).
    :param prefetcher: optional
        :class:`~repro.prefetch.LookaheadPrefetcher`; the trainer
        buffers the next ``lookahead_depth`` stream positions and
        trains them in the pipeline's hot-first order (publish cadence
        still counts *steps*, not stream positions).  ``None`` — or a
        FIFO/depth-1 pipeline — consumes the stream strictly in order.
    """

    def __init__(self, network: WdlNetwork, stream: DriftingStream,
                 registry: SnapshotRegistry, publish_interval: int = 50,
                 optimizer=None, tracer=None, registry_metrics=None,
                 flight=None, provenance=None, prefetcher=None):
        if publish_interval < 1:
            raise ValueError(
                f"publish_interval must be >= 1, got {publish_interval}")
        self.network = network
        self.stream = stream
        self.registry = registry
        self.publish_interval = int(publish_interval)
        self.provenance = dict(provenance or {})
        self._trainer = SyncTrainer(network, optimizer=optimizer,
                                    tracer=tracer,
                                    registry=registry_metrics,
                                    flight=flight)
        self.stats = StreamingTrainerStats()
        self.publishes: list = []
        self._dirty: dict = {name: set() for name in network.embeddings}
        self._heat: dict = {name: FrequencyCounter()
                            for name in network.embeddings}
        self.prefetcher = prefetcher
        self._stream_pos = 0  # next stream position to buffer

    @property
    def step_index(self) -> int:
        """The next stream position to train on."""
        return self.stats.steps

    def dirty_row_count(self) -> int:
        """Rows currently dirty (to be carried by the next delta)."""
        return sum(len(rows) for rows in self._dirty.values())

    def _harvest_dirty(self) -> None:
        """Fold this step's touched rows into dirty sets + heat."""
        for field_name, table in self.network.embeddings.items():
            touched = [rows for rows, _grads in table.sparse_grads()]
            if not touched:
                continue
            rows = np.unique(np.concatenate(touched))
            self._dirty[field_name].update(rows.tolist())
            self._heat[field_name].observe(rows)

    def _next_batch(self):
        """The next batch to train on (lookahead order when prefetching)."""
        if self.prefetcher is None:
            return self.stream.batch(self.stats.steps)
        depth = self.prefetcher.config.lookahead_depth
        while len(self.prefetcher) < depth:
            self.prefetcher.push(self.stream.batch(self._stream_pos))
            self._stream_pos += 1
        _index, batch = self.prefetcher.pop()
        return batch

    def step(self) -> float:
        """Train on the next stream batch; returns the loss.

        Publishes automatically when ``publish_interval`` steps have
        accumulated since the last publish (the publish captures the
        weights *after* this step's update).
        """
        batch = self._next_batch()
        loss = self._trainer.step(batch, index=self.stats.steps)
        self._harvest_dirty()
        self.stats.steps += 1
        self.stats.losses.append(loss)
        if self.stats.steps % self.publish_interval == 0:
            self.publish()
        return loss

    def run_steps(self, count: int) -> list:
        """Advance ``count`` steps; returns their losses."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.step() for _ in range(count)]

    def publish(self) -> PublishRecord:
        """Publish current weights now; resets the dirty accounting.

        The very first publish is always a full base (the registry has
        nothing to chain a delta on); later publishes ship deltas until
        the registry's compaction point.
        """
        dirty = None
        if self.registry.latest() is not None:
            dirty = {name: np.fromiter(sorted(rows), dtype=np.int64,
                                       count=len(rows))
                     for name, rows in self._dirty.items()}
        entry = self.registry.publish(
            self.network, step=self.stats.steps, dirty_rows=dirty,
            counters=self._heat, provenance=self.provenance)
        record = PublishRecord(version=entry, step=self.stats.steps,
                               dirty_rows=self.dirty_row_count())
        self.publishes.append(record)
        self.stats.publishes += 1
        for rows in self._dirty.values():
            rows.clear()
        for counter in self._heat.values():
            counter.reset()
        return record
