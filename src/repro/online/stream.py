"""An infinite Zipf-drifting labeled event stream (concept drift).

Offline iterators (:class:`~repro.data.labeled.LabeledBatchIterator`)
draw every batch from one frozen distribution, which is exactly what a
*continuous* training loop cannot assume: in production the hot items
of an hour ago are not the hot items of now (new content, campaigns,
time of day).  :class:`DriftingStream` models that as a rotating
bounded-Zipf head: ranks are still Zipf-distributed, but the
rank -> ID mapping advances by ``drift_ids_per_step`` IDs every step,
so probability mass continuously migrates onto IDs the model has never
(or long ago) seen.  Labels stay a fixed function of the raw ID (the
world's preferences per item do not churn, *which* items get traffic
does), so a model's AUC on the live stream decays exactly as fast as
its embedding table goes stale — the signal the ``staleness_auc``
experiment measures.

Batches are randomly addressable: ``batch(step)`` derives its
generator from ``(seed, step)``, so the trainer, a prequential
evaluator and a replayer all see byte-identical events without
coordinating a shared cursor.
"""

from __future__ import annotations

import numpy as np

from repro.data.labeled import latent_effect
from repro.data.loader import Batch
from repro.data.spec import DatasetSpec
from repro.data.synthetic import BoundedZipf, stable_field_hash


class DriftingStream:
    """Deterministic random-access stream of labeled, drifting batches.

    :param dataset: feature schema (fields define vocab and skew).
    :param batch_size: instances per batch.
    :param drift_ids_per_step: how many IDs the hot window slides per
        step; 0 reduces to a stationary stream.
    :param noise_scale: label-noise standard deviation (as in
        :class:`~repro.data.labeled.LabeledBatchIterator`).
    :param signal_scale: latent-logit multiplier (AUC ceiling).
    :param seed: one seed reproduces the entire infinite stream.
    """

    def __init__(self, dataset: DatasetSpec, batch_size: int,
                 drift_ids_per_step: float = 0.0,
                 noise_scale: float = 0.6, signal_scale: float = 2.0,
                 seed: int = 0):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if drift_ids_per_step < 0:
            raise ValueError("drift_ids_per_step must be >= 0, got "
                             f"{drift_ids_per_step}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.drift_ids_per_step = float(drift_ids_per_step)
        self.noise_scale = float(noise_scale)
        self.signal_scale = float(signal_scale)
        self.seed = int(seed)
        self._zipf = {
            spec.name: BoundedZipf(spec.vocab_size, spec.zipf_exponent)
            for spec in dataset.fields
        }
        self._field_salt = {
            spec.name: index + 1
            for index, spec in enumerate(dataset.fields)
        }

    def drift_offset(self, step: int) -> int:
        """How far the hot window has rotated by ``step`` (in IDs)."""
        return int(self.drift_ids_per_step * step)

    def _field_ids(self, spec, step: int,
                   rng: np.random.Generator) -> np.ndarray:
        """Sample one field's IDs for the batch at ``step``.

        Rank 0 maps to a field-specific base offset (as in
        :class:`~repro.data.synthetic.FieldSampler`) *plus* the drift
        rotation, so each step's hottest IDs sit a little further
        around the vocabulary ring.
        """
        ranks = self._zipf[spec.name].sample(
            self.batch_size * spec.seq_length, rng)
        base = stable_field_hash(spec.name) % spec.vocab_size
        return (ranks + base + self.drift_offset(step)) % spec.vocab_size

    def batch(self, step: int) -> Batch:
        """The labeled batch at stream position ``step`` (>= 0)."""
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        rng = np.random.default_rng((self.seed, step))
        sparse = {}
        logits = np.zeros(self.batch_size)
        for spec in self.dataset.fields:
            ids = self._field_ids(spec, step, rng)
            sparse[spec.name] = ids
            effects = latent_effect(ids, self._field_salt[spec.name])
            if spec.seq_length > 1:
                effects = effects.reshape(
                    self.batch_size, spec.seq_length).mean(axis=1)
            logits += effects / max(
                1.0, np.sqrt(self.dataset.num_fields))
        numeric = rng.standard_normal(
            (self.batch_size, self.dataset.num_numeric)
        ).astype(np.float32)
        if self.dataset.num_numeric:
            weights = latent_effect(
                np.arange(self.dataset.num_numeric), salt=999)
            logits += numeric.astype(np.float64) @ weights * 0.2
        logits *= self.signal_scale
        logits += rng.standard_normal(self.batch_size) * self.noise_scale
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        labels = (rng.random(self.batch_size)
                  < probabilities).astype(np.float32)
        return Batch(batch_size=self.batch_size, sparse=sparse,
                     numeric=numeric, labels=labels)

    def batches(self, count: int, start: int = 0):
        """Yield ``count`` consecutive batches from ``start``."""
        for step in range(start, start + count):
            yield self.batch(step)
