"""The continuous loop: train, publish, hot-swap, autoscale — one clock.

:func:`simulate_stream` closes the last gap between PICASSO's training
and serving halves: a :class:`~repro.online.streaming.StreamingTrainer`
advances on its own modeled cadence (``train_step_s`` per step) while a
:class:`~repro.serving.server.ModelServer` serves an open-loop request
trace, and the two meet only through the
:class:`~repro.online.registry.SnapshotRegistry` — the trainer
publishes embedding-delta snapshots, a
:class:`~repro.online.hotswap.HotSwapServer` picks them up, loads them
into the standby buffer in the background and flips at a batch
boundary.  A :class:`~repro.online.autoscale.ReplicaAutoscaler` watches
the same burn-rate windows the telemetry monitor alerts on and scales
serving capacity under the trace's rate shape (diurnal swing, flash
crowd).

Everything shares one modeled clock and one seed: the report —
goodput, swap pauses, model staleness, delta compression, the replica
timeline — is a deterministic function of the configuration.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.data.spec import DatasetSpec
from repro.embedding.hybrid_hash import HybridHash
from repro.embedding.multilevel import MultiLevelCache
from repro.embedding.table import EmbeddingTable
from repro.faults.degraded import CompositeServeController
from repro.hardware.topology import GN6E_NODE, NodeSpec
from repro.nn.network import WdlNetwork
from repro.online.autoscale import ReplicaAutoscaler
from repro.online.hotswap import HotSwapServer, clone_network
from repro.online.registry import SnapshotRegistry
from repro.online.stream import DriftingStream
from repro.online.streaming import StreamingTrainer
from repro.serving.batcher import MicroBatcher
from repro.serving.metrics import ServingMetrics, ServingReport
from repro.serving.server import (
    ModelServer,
    build_tiers,
    default_serving_dataset,
)
from repro.serving.slo import SloConfig, SloPolicy
from repro.serving.traffic import RateShape, TrafficGenerator
from repro.telemetry.monitor import SloBurnRateMonitor


@dataclass(frozen=True)
class StreamReport:
    """Headline metrics of one continuous train-and-serve run."""

    serving: ServingReport
    steps: int
    publishes: int
    swaps: int
    #: publishes superseded before their swap started (catch-up skips).
    skipped_versions: int
    swap_pause_p99_ms: float
    #: requests shed only because a flip pause delayed their batch.
    swap_attributed_shed: int
    staleness_mean_s: float
    staleness_max_s: float
    full_snapshot_bytes: int
    delta_snapshot_bytes_mean: float
    #: full checkpoint size over mean delta size (>= 1.0 when deltas
    #: exist; 0.0 when the run never published a delta).
    delta_compression: float
    final_loss: float
    controls: dict = field(default_factory=dict, compare=False)

    @property
    def goodput_qps(self) -> float:
        """Served requests per modeled second (the serving QPS)."""
        return self.serving.qps

    def as_dict(self) -> dict:
        """Plain-dict export (benchmarks, JSON)."""
        return {
            "serving": self.serving.as_dict(),
            "steps": self.steps,
            "publishes": self.publishes,
            "swaps": self.swaps,
            "skipped_versions": self.skipped_versions,
            "goodput_qps": self.goodput_qps,
            "swap_pause_p99_ms": self.swap_pause_p99_ms,
            "swap_attributed_shed": self.swap_attributed_shed,
            "staleness_mean_s": self.staleness_mean_s,
            "staleness_max_s": self.staleness_max_s,
            "full_snapshot_bytes": self.full_snapshot_bytes,
            "delta_snapshot_bytes_mean": self.delta_snapshot_bytes_mean,
            "delta_compression": self.delta_compression,
            "final_loss": self.final_loss,
            "controls": dict(self.controls),
        }

    def row(self) -> dict:
        """One formatted table row (for ``format_table``)."""
        return {
            "served": self.serving.served,
            "shed": self.serving.shed,
            "p99_ms": f"{self.serving.p99_ms:.3f}",
            "goodput": f"{self.goodput_qps:,.0f}",
            "swaps": self.swaps,
            "swap_shed": self.swap_attributed_shed,
            "staleness_s": f"{self.staleness_mean_s:.3f}",
            "delta_x": f"{self.delta_compression:.1f}",
        }


def simulate_stream(num_requests: int = 4_000, seed: int = 0,
                    rate_qps: float = 20_000.0,
                    shape: RateShape | None = None,
                    train_steps: int = 400,
                    train_step_s: float = 0.001,
                    train_batch_size: int = 256,
                    publish_interval: int = 25,
                    drift_ids_per_step: float = 8.0,
                    max_chain: int = 8,
                    load_share: float = 0.1,
                    snapshot_dir=None,
                    cache: str = "hbm-dram",
                    hot_rows: int = 4_000, warm_rows: int = 60_000,
                    max_batch_size: int = 64, max_wait_s: float = 0.002,
                    slo_s: float = 0.02, micro_batch_rows: int = 16,
                    warmup_iters: int = 10, flush_iters: int = 20,
                    autoscale: bool = True,
                    min_replicas: int = 1, max_replicas: int = 4,
                    burn_budget: float = 0.01,
                    burn_window_s: float = 0.05,
                    hot_swaps: bool = True,
                    node: NodeSpec = GN6E_NODE,
                    dataset: DatasetSpec | None = None,
                    variant: str = "wdl",
                    tracer=None, metrics=None, flight=None,
                    provenance=None, prefetch=None) -> StreamReport:
    """Run the continuous-training -> online-serving loop end to end.

    :param train_steps: cap on streaming-trainer steps (the trainer
        also stops advancing past the serving trace's end).
    :param train_step_s: modeled duration of one trainer step — sets
        the trainer's clock against the serving trace's.
    :param snapshot_dir: where snapshots land; ``None`` uses a
        temporary directory that is deleted with the run.
    :param hot_swaps: ``False`` freezes serving on the initial weights
        (the no-swap baseline the swap-pause acceptance bar compares
        against).
    :param shape: optional :class:`~repro.serving.traffic.RateShape`
        (diurnal / flash-crowd) modulating the arrival rate.
    :param tracer: optional :class:`repro.telemetry.Tracer`; swaps
        land as modeled-time spans on the ``alerts`` track, batches on
        the ``server`` track.
    :param flight: optional :class:`repro.telemetry.FlightRecorder`;
        trainer losses, hot-swap spans and shed alerts land in the
        ring (sheds trigger dump-on-alert when a dump dir is set).
    :param provenance: optional run-manifest dict stamped onto every
        publish, so serving versions trace back to this run.
    :param prefetch: optional :class:`~repro.prefetch.PrefetchConfig`;
        the streaming trainer buffers upcoming stream batches and
        trains hot (frequently-hit-row) batches first while cold
        batches' rows stage, using an
        :class:`~repro.prefetch.AdaptiveResidency` oracle sized to
        ``hot_rows``.  ``None`` keeps strict stream order.
    """
    if train_step_s <= 0:
        raise ValueError(f"train_step_s must be > 0, got {train_step_s}")
    dataset = dataset or default_serving_dataset()
    trainer_network = WdlNetwork(dataset, variant=variant, seed=seed)
    serving_network = clone_network(trainer_network)

    table = EmbeddingTable(dim=serving_network.embedding_dim, seed=seed)
    row_bytes = serving_network.embedding_dim * 4
    if cache == "hybrid":
        store = HybridHash(table, hot_bytes=hot_rows * row_bytes,
                           warmup_iters=warmup_iters,
                           flush_iters=flush_iters)
    else:
        store = MultiLevelCache(
            table, tiers=build_tiers(cache, node, row_bytes,
                                     hot_rows, warm_rows),
            warmup_iters=warmup_iters, flush_iters=flush_iters)
    server = ModelServer(serving_network, store, node=node,
                         micro_batch_rows=micro_batch_rows)

    cleanup = None
    if snapshot_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-stream-")
        snapshot_dir = cleanup.name
    try:
        registry = SnapshotRegistry(snapshot_dir, max_chain=max_chain)
        stream = DriftingStream(dataset, train_batch_size,
                                drift_ids_per_step=drift_ids_per_step,
                                seed=seed)
        prefetcher = None
        if prefetch is not None:
            from repro.prefetch import (
                AdaptiveResidency,
                LookaheadPrefetcher,
            )
            adaptive = AdaptiveResidency(hot_k=max(1, int(hot_rows)))
            prefetcher = LookaheadPrefetcher(
                prefetch, resident=adaptive, observe=adaptive.observe,
                row_bytes=row_bytes, step_seconds=train_step_s)
        trainer = StreamingTrainer(trainer_network, stream, registry,
                                   publish_interval=publish_interval,
                                   flight=flight, provenance=provenance,
                                   prefetcher=prefetcher)
        swapper = HotSwapServer(server, registry, load_share=load_share)
        monitor = SloBurnRateMonitor(slo_ms=slo_s * 1e3,
                                     budget=burn_budget,
                                     window_s=burn_window_s)
        autoscaler = ReplicaAutoscaler(
            monitor, min_replicas=min_replicas,
            max_replicas=max_replicas) if autoscale else None
        controls = CompositeServeController(
            [hook for hook in (autoscaler, swapper) if hook is not None])

        generator = TrafficGenerator(dataset, rate_qps=rate_qps,
                                     seed=seed, shape=shape)
        requests = generator.generate(num_requests)
        batcher = MicroBatcher(max_batch_size=max_batch_size,
                               max_wait_s=max_wait_s)
        policy = SloPolicy(SloConfig(latency_budget_s=slo_s))
        metrics = metrics if metrics is not None else ServingMetrics()

        report = _run_loop(
            requests=requests, batcher=batcher, policy=policy,
            server=server, metrics=metrics, trainer=trainer,
            registry=registry, swapper=swapper, autoscaler=autoscaler,
            controls=controls, train_steps=train_steps,
            train_step_s=train_step_s, hot_swaps=hot_swaps,
            tracer=tracer, flight=flight)
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return report


def _advance_trainer(trainer: StreamingTrainer, now_s: float,
                     train_steps: int, train_step_s: float) -> None:
    """Catch the trainer's modeled clock up to ``now_s``."""
    while (trainer.stats.steps < train_steps
           and (trainer.stats.steps + 1) * train_step_s <= now_s):
        trainer.step()


def _run_loop(requests, batcher, policy, server, metrics, trainer,
              registry, swapper, autoscaler, controls, train_steps,
              train_step_s, hot_swaps, tracer,
              flight=None) -> StreamReport:
    """The modeled-time interleave behind :func:`simulate_stream`."""
    server_free = 0.0
    last_target = -1
    skipped_versions = 0
    swap_attributed_shed = 0
    staleness_weighted = 0.0
    staleness_max = 0.0
    served_total = 0
    for index, batch in enumerate(batcher.form_batches(requests)):
        start = max(batch.close_s, server_free)
        _advance_trainer(trainer, start, train_steps, train_step_s)

        pause = 0.0
        if hot_swaps:
            latest = registry.latest()
            behind = (latest is not None
                      and swapper.pending() is None
                      and latest.version != swapper.active_version)
            if behind:
                # Catch-up semantics: always swap to the *newest*
                # publish; versions that came and went in between
                # (dense integers, so the gap is the count) are never
                # loaded.
                skipped_versions += max(
                    0, latest.version - last_target - 1)
                last_target = latest.version
                swapper.begin_swap(latest,
                                   now_s=latest.step * train_step_s)
            pause = swapper.maybe_flip(start)
            if pause > 0.0:
                record = swapper.swaps[-1]
                if tracer is not None:
                    tracer.add_span(
                        f"swap/v{record.version}", record.requested_s,
                        start + pause, category="serving",
                        track="alerts",
                        attrs={"version": record.version,
                               "step": record.step,
                               "bytes": record.bytes_loaded,
                               "pause_s": pause})
                if flight is not None:
                    flight.record_span(
                        f"swap/v{record.version}", record.requested_s,
                        start + pause, track="alerts",
                        attrs={"version": record.version,
                               "pause_s": pause})
                server_free += pause
                start = max(batch.close_s, server_free)

        if autoscaler is not None:
            autoscaler.settle(start)
        estimate = server.estimate_service_s(list(batch.requests))
        estimate *= controls.service_factor(start)
        admitted, shed = controls.admit(policy, batch, start, estimate)
        if pause > 0.0:
            # How many of this batch's sheds exist only because the
            # flip pushed the batch later?  The zero-drop bar for
            # hot swapping is on exactly this count.
            baseline_start = max(batch.close_s, server_free - pause)
            baseline, _ = controls.admit(policy, batch, baseline_start,
                                         estimate)
            swap_attributed_shed += max(0, len(baseline) - len(admitted))
        for request in shed:
            metrics.record_shed(request.arrival_s, start)
            if autoscaler is not None:
                autoscaler.observe(start, None)
            if tracer is not None:
                tracer.instant("shed", timestamp=start, track="slo",
                               arrival_s=request.arrival_s)
        if flight is not None and shed:
            from repro.telemetry.monitor import Alert
            flight.record_alert(Alert(
                time_s=start, monitor="slo", severity="warning",
                message=f"{len(shed)} request(s) shed at t={start:.4f}s",
                value=float(len(shed)), threshold=0.0, name="shed"))
        if not admitted:
            continue
        outcome = server.process(admitted)
        service_s = outcome.service_s * controls.service_factor(start)
        completion = start + service_s
        staleness = max(0.0, start - swapper.active_step * train_step_s)
        staleness_weighted += staleness * len(admitted)
        staleness_max = max(staleness_max, staleness)
        served_total += len(admitted)
        metrics.record_stage("batch_wait", sum(
            batch.close_s - request.arrival_s for request in admitted))
        metrics.record_stage("queue", start - batch.close_s)
        metrics.record_stage("lookup", outcome.fetch_s)
        metrics.record_stage("dense", outcome.compute_s)
        for request in admitted:
            metrics.record_served(request.arrival_s, completion)
            if autoscaler is not None:
                autoscaler.observe(completion,
                                   completion - request.arrival_s)
        if tracer is not None:
            tracer.add_span(f"batch{index}", start, completion,
                            category="serving", track="server",
                            attrs={"size": len(admitted),
                                   "fetch_s": outcome.fetch_s,
                                   "compute_s": outcome.compute_s})
        server_free = completion

    if autoscaler is not None:
        autoscaler.finalize()
    serving = metrics.report(cache_hit_ratio=server.cache_hit_ratio())

    pauses_ms = [record.pause_s * 1e3 for record in swapper.swaps]
    deltas = registry.delta_bytes()
    delta_mean = float(np.mean(deltas)) if deltas else 0.0
    full_bytes = registry.full_bytes()
    return StreamReport(
        serving=serving,
        steps=trainer.stats.steps,
        publishes=trainer.stats.publishes,
        swaps=len(swapper.swaps),
        skipped_versions=skipped_versions,
        swap_pause_p99_ms=(float(np.percentile(pauses_ms, 99))
                           if pauses_ms else 0.0),
        swap_attributed_shed=swap_attributed_shed,
        staleness_mean_s=(staleness_weighted / served_total
                          if served_total else 0.0),
        staleness_max_s=staleness_max,
        full_snapshot_bytes=full_bytes,
        delta_snapshot_bytes_mean=delta_mean,
        delta_compression=(full_bytes / delta_mean
                           if delta_mean > 0 else 0.0),
        final_loss=(trainer.stats.losses[-1]
                    if trainer.stats.losses else float("nan")),
        controls=controls.summary())
