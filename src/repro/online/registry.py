"""Versioned snapshot publishing: full bases, delta chains, GC.

The :class:`SnapshotRegistry` is the contract between the streaming
trainer (producer) and the hot-swap servers (consumers): every publish
gets a monotonically increasing version, lands on disk **atomically**
(temp file + ``os.replace``, see
:func:`~repro.training.checkpoint.atomic_savez`), and is recorded in a
``registry.json`` manifest that is itself replaced atomically — a
reader never observes a version whose payload is missing or truncated.

Publishes alternate between two kinds:

* **full** — a complete :func:`~repro.training.checkpoint.save_checkpoint`
  of the model (no optimizer state; serving only needs weights);
* **delta** — a changed-rows-only :class:`~repro.online.delta.DeltaSnapshot`
  chained on the previous version.

Every ``max_chain`` deltas the registry *compacts*: it publishes a
fresh full base so a cold replica never replays an unbounded chain,
then garbage-collects everything older than that base (those versions
are unreachable — materializing any version >= the base never reads
them).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.nn.network import WdlNetwork
from repro.online.delta import (
    apply_delta,
    capture_delta,
    load_delta,
    save_delta,
)
from repro.training.checkpoint import (
    load_checkpoint,
    resolve_checkpoint_path,
    save_checkpoint,
)

_MANIFEST = "registry.json"


@dataclass(frozen=True)
class SnapshotVersion:
    """One published model version (manifest entry)."""

    version: int
    kind: str  # "full" | "delta"
    step: int
    filename: str
    nbytes: int
    #: the version this delta chains on; ``None`` for full bases.
    base_version: int | None = None
    #: run manifest of the producing trainer (see
    #: :func:`repro.telemetry.provenance.build_manifest`); persisted in
    #: the manifest so serving versions trace back to their run.
    provenance: dict = field(default_factory=dict, compare=False)

    def as_dict(self) -> dict:
        return {"version": self.version, "kind": self.kind,
                "step": self.step, "filename": self.filename,
                "nbytes": self.nbytes,
                "base_version": self.base_version,
                "provenance": self.provenance}

    @classmethod
    def from_dict(cls, payload: dict) -> "SnapshotVersion":
        return cls(version=int(payload["version"]),
                   kind=str(payload["kind"]),
                   step=int(payload["step"]),
                   filename=str(payload["filename"]),
                   nbytes=int(payload["nbytes"]),
                   base_version=payload.get("base_version"),
                   provenance=payload.get("provenance", {}))


class SnapshotRegistry:
    """Publish, resolve and garbage-collect model snapshot versions.

    :param root: directory the payloads and manifest live in (created
        if missing).
    :param max_chain: deltas allowed on one full base before the next
        publish is forced to compact into a fresh full checkpoint.
    """

    def __init__(self, root, max_chain: int = 8):
        if max_chain < 1:
            raise ValueError(f"max_chain must be >= 1, got {max_chain}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_chain = int(max_chain)
        self._versions: dict = {}
        self._next_version = 0
        self.gc_removed = 0
        manifest = self.root / _MANIFEST
        if manifest.exists():
            self._load_manifest(manifest)

    # -- manifest ------------------------------------------------------------

    def _load_manifest(self, path: Path) -> None:
        with open(path) as handle:
            payload = json.load(handle)
        self._versions = {
            entry["version"]: SnapshotVersion.from_dict(entry)
            for entry in payload["versions"]
        }
        self._next_version = int(payload["next_version"])
        self.gc_removed = int(payload.get("gc_removed", 0))

    def _write_manifest(self) -> None:
        payload = {
            "versions": [self._versions[key].as_dict()
                         for key in sorted(self._versions)],
            "next_version": self._next_version,
            "gc_removed": self.gc_removed,
        }
        tmp = self.root / (_MANIFEST + ".tmp")
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.root / _MANIFEST)

    # -- queries -------------------------------------------------------------

    def versions(self) -> list:
        """All live versions, oldest first."""
        return [self._versions[key] for key in sorted(self._versions)]

    def latest(self) -> SnapshotVersion | None:
        """The newest published version (``None`` before any publish)."""
        if not self._versions:
            return None
        return self._versions[max(self._versions)]

    def chain(self, version: int | None = None) -> list:
        """Full base + deltas needed to materialize ``version``.

        Walks ``base_version`` links back to the nearest full
        checkpoint; the returned list is application order (base
        first).  Defaults to the latest version.
        """
        if version is None:
            latest = self.latest()
            if latest is None:
                raise ValueError("registry has no published versions")
            version = latest.version
        if version not in self._versions:
            raise ValueError(f"unknown version {version}; live versions "
                             f"are {sorted(self._versions)}")
        links = []
        cursor = self._versions[version]
        while True:
            links.append(cursor)
            if cursor.kind == "full":
                break
            if cursor.base_version not in self._versions:
                raise ValueError(
                    f"delta v{cursor.version} chains on missing "
                    f"v{cursor.base_version} (GC bug or foreign dir)")
            cursor = self._versions[cursor.base_version]
        return list(reversed(links))

    def chain_length(self) -> int:
        """Deltas sitting on the latest full base."""
        latest = self.latest()
        if latest is None:
            return 0
        return len(self.chain(latest.version)) - 1

    def full_bytes(self) -> int:
        """Size of the most recent full base (0 before any publish)."""
        for entry in reversed(self.versions()):
            if entry.kind == "full":
                return entry.nbytes
        return 0

    def delta_bytes(self) -> list:
        """Payload sizes of every live delta, oldest first."""
        return [entry.nbytes for entry in self.versions()
                if entry.kind == "delta"]

    # -- publishing ----------------------------------------------------------

    def publish(self, network: WdlNetwork, step: int,
                dirty_rows: dict | None = None,
                counters: dict | None = None,
                provenance: dict | None = None) -> SnapshotVersion:
        """Publish the network's current weights as the next version.

        Writes a delta when a base exists, ``dirty_rows`` is given and
        the chain has room; otherwise a full checkpoint (first publish,
        compaction point, or an explicit full via ``dirty_rows=None``).
        Compaction garbage-collects everything older than the new base.

        :param provenance: optional run manifest stamped onto both the
            payload (delta header) and the manifest entry.
        """
        version = self._next_version
        latest = self.latest()
        provenance = dict(provenance or {})
        wants_delta = (dirty_rows is not None and latest is not None
                       and self.chain_length() < self.max_chain)
        if wants_delta:
            delta = capture_delta(network, dirty_rows, version=version,
                                  base_version=latest.version, step=step,
                                  counters=counters,
                                  provenance=provenance)
            path = save_delta(delta, self.root / f"v{version:06d}_delta")
            entry = SnapshotVersion(
                version=version, kind="delta", step=step,
                filename=path.name, nbytes=path.stat().st_size,
                base_version=latest.version, provenance=provenance)
        else:
            path = resolve_checkpoint_path(
                self.root / f"v{version:06d}_full")
            save_checkpoint(network, path, step=step,
                            metadata={"version": version})
            entry = SnapshotVersion(
                version=version, kind="full", step=step,
                filename=path.name, nbytes=path.stat().st_size,
                provenance=provenance)
        self._versions[version] = entry
        self._next_version = version + 1
        if entry.kind == "full":
            self.gc(before=version)
        self._write_manifest()
        return entry

    def gc(self, before: int | None = None) -> list:
        """Drop versions older than the newest full base (or ``before``).

        Anything strictly older than a full base can never be read
        again — every live chain terminates at that base or newer — so
        its files are deleted and its manifest entries removed.
        Returns the deleted filenames.
        """
        if before is None:
            fulls = [entry.version for entry in self.versions()
                     if entry.kind == "full"]
            if not fulls:
                return []
            before = max(fulls)
        removed = []
        for version in sorted(self._versions):
            if version >= before:
                continue
            entry = self._versions.pop(version)
            target = self.root / entry.filename
            if target.exists():
                target.unlink()
            removed.append(entry.filename)
        self.gc_removed += len(removed)
        self._write_manifest()
        return removed

    # -- materialization -----------------------------------------------------

    def materialize(self, network: WdlNetwork,
                    version: int | None = None) -> SnapshotVersion:
        """Load ``version`` (default latest) into ``network`` in place.

        Restores the nearest full base with
        :func:`~repro.training.checkpoint.load_checkpoint` (which
        validates architecture), then applies the delta chain in
        order; the result is bitwise the trainer's weights at that
        version's publish step.
        """
        links = self.chain(version)
        base = links[0]
        load_checkpoint(network, self.root / base.filename,
                        expected_step=base.step)
        for entry in links[1:]:
            apply_delta(network, load_delta(self.root / entry.filename))
        return links[-1]
