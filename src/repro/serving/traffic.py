"""Online request streams: Poisson arrivals with Zipfian key skew.

The serving path consumes the same :class:`~repro.data.spec.DatasetSpec`
feature schemas as training, but instead of epoch-sized batches it sees
individual inference requests arriving on a Poisson process (the
standard open-loop model for user-facing traffic).  Each request draws
its categorical IDs from the per-field bounded-Zipf samplers of
:mod:`repro.data.synthetic`, so the embedding-access skew that drives
Algorithm 1's cache (PAPER SS III-D, Fig. 3) is present at serve time
exactly as it was at train time.

Arrival *rates* need not be flat: a :class:`RateShape` modulates the
base rate over time — :class:`DiurnalShape` is the sinusoidal
day/night swing every consumer-facing recommender rides, and
:class:`FlashCrowdShape` is the step-function spike (a sale, a push
notification) that autoscalers exist for.  Shaped streams are drawn by
Lewis–Shedler thinning against the peak rate, which samples the exact
non-homogeneous Poisson process rather than an approximation.

All randomness flows from one explicit ``numpy`` generator seeded at
construction: the same seed reproduces the same trace across processes
(the field samplers use :func:`~repro.data.synthetic.stable_field_hash`
rather than the process-randomized builtin ``hash``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.spec import DatasetSpec
from repro.data.synthetic import FieldSampler, stable_field_hash


class RateShape:
    """Time-varying multiplier on a generator's base arrival rate.

    Subclasses implement :meth:`factor` (the instantaneous multiplier,
    ``>= 0``) and expose ``peak_factor`` — a tight upper bound on
    ``factor`` that the thinning sampler proposes candidates at.
    """

    peak_factor: float = 1.0

    def factor(self, t: float) -> float:
        """Rate multiplier at absolute time ``t`` (seconds)."""
        raise NotImplementedError

    def as_dict(self) -> dict:
        """JSON-ready description (configs, snapshots)."""
        raise NotImplementedError


@dataclass(frozen=True)
class DiurnalShape(RateShape):
    """Sinusoidal day/night swing: ``1 + amplitude*sin(2*pi*t/period)``.

    :param period_s: one full cycle (a modeled "day"; benchmarks use
        seconds-scale periods — only the shape matters, not the clock).
    :param amplitude: swing around the mean, in ``[0, 1)`` so the rate
        never reaches zero (a dead stream would stall open-loop
        queueing metrics).
    :param phase_s: shifts where in the cycle ``t=0`` falls.
    """

    period_s: float
    amplitude: float = 0.5
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {self.period_s}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude}")

    @property
    def peak_factor(self) -> float:
        return 1.0 + self.amplitude

    def factor(self, t: float) -> float:
        return 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t + self.phase_s) / self.period_s)

    def as_dict(self) -> dict:
        return {"kind": "diurnal", "period_s": self.period_s,
                "amplitude": self.amplitude, "phase_s": self.phase_s}


@dataclass(frozen=True)
class FlashCrowdShape(RateShape):
    """A step spike: ``multiplier``x the base rate over one window.

    :param start_s: spike onset (absolute trace time).
    :param duration_s: how long the crowd stays.
    :param multiplier: rate multiple inside the window (``>= 1``).
    """

    start_s: float
    duration_s: float
    multiplier: float = 4.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError(f"start_s must be >= 0, got {self.start_s}")
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be > 0, got {self.duration_s}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}")

    @property
    def peak_factor(self) -> float:
        return self.multiplier

    def factor(self, t: float) -> float:
        inside = self.start_s <= t < self.start_s + self.duration_s
        return self.multiplier if inside else 1.0

    def as_dict(self) -> dict:
        return {"kind": "flash", "start_s": self.start_s,
                "duration_s": self.duration_s,
                "multiplier": self.multiplier}


#: name -> shape class, for config round-trips (``shape_from_dict``).
_SHAPE_KINDS = {"diurnal": DiurnalShape, "flash": FlashCrowdShape}


def shape_from_dict(payload: dict | None) -> RateShape | None:
    """Rebuild a :class:`RateShape` from its :meth:`~RateShape.as_dict`."""
    if payload is None:
        return None
    settings = dict(payload)
    kind = settings.pop("kind", None)
    if kind not in _SHAPE_KINDS:
        raise ValueError(f"unknown rate shape {kind!r}; "
                         f"expected one of {sorted(_SHAPE_KINDS)}")
    return _SHAPE_KINDS[kind](**settings)


@dataclass(frozen=True)
class Request:
    """One inference request.

    :param request_id: position in the trace (0-based).
    :param arrival_s: absolute arrival time in seconds.
    :param sparse: field name -> int64 ID array (``seq_length`` IDs).
    :param numeric: fp32 dense features, shape ``(num_numeric,)``.
    """

    request_id: int
    arrival_s: float
    sparse: dict
    numeric: np.ndarray


class TrafficGenerator:
    """Deterministic Poisson/Zipf request-stream generator.

    :param dataset: feature schema; every request carries one instance.
    :param rate_qps: mean (unshaped) arrival rate in requests/second.
    :param seed: seeds both the arrival process and the ID samplers.
    :param shape: optional :class:`RateShape` modulating the rate over
        time; ``None`` keeps the homogeneous process (and its exact
        historical byte stream for a given seed).
    """

    def __init__(self, dataset: DatasetSpec, rate_qps: float,
                 seed: int = 0, shape: RateShape | None = None):
        if rate_qps <= 0:
            raise ValueError(f"rate_qps must be > 0, got {rate_qps}")
        self.dataset = dataset
        self.rate_qps = float(rate_qps)
        self.seed = int(seed)
        self.shape = shape
        self._arrival_rng = np.random.default_rng(seed)
        self._numeric_rng = np.random.default_rng(seed ^ 0x5EED)
        # Each field keeps its own sampler (distinct hot sets) but all
        # are derived from the one explicit seed.
        self._samplers = {
            spec.name: FieldSampler(
                spec, seed=seed ^ stable_field_hash(spec.name))
            for spec in dataset.fields
        }

    def rate_at(self, t: float) -> float:
        """The target instantaneous rate at time ``t`` (tests, scaling)."""
        if self.shape is None:
            return self.rate_qps
        return self.rate_qps * self.shape.factor(t)

    def _arrival_times(self, count: int) -> np.ndarray:
        if self.shape is None:
            gaps = self._arrival_rng.exponential(
                1.0 / self.rate_qps, size=count)
            return np.cumsum(gaps)
        # Lewis-Shedler thinning: propose at the peak rate, accept each
        # candidate with probability rate(t)/peak — an exact sampler
        # for the non-homogeneous process, still one seeded stream.
        peak = self.rate_qps * self.shape.peak_factor
        arrivals = np.empty(count, dtype=np.float64)
        accepted, t = 0, 0.0
        while accepted < count:
            t += self._arrival_rng.exponential(1.0 / peak)
            if self._arrival_rng.random() * peak <= self.rate_at(t):
                arrivals[accepted] = t
                accepted += 1
        return arrivals

    def generate(self, count: int) -> list:
        """Produce ``count`` requests in arrival order."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        arrivals = self._arrival_times(count)
        requests = []
        for index in range(count):
            sparse = {
                name: sampler.sample_batch(1)
                for name, sampler in self._samplers.items()
            }
            numeric = self._numeric_rng.standard_normal(
                self.dataset.num_numeric).astype(np.float32)
            requests.append(Request(request_id=index,
                                    arrival_s=float(arrivals[index]),
                                    sparse=sparse, numeric=numeric))
        return requests
