"""Online request streams: Poisson arrivals with Zipfian key skew.

The serving path consumes the same :class:`~repro.data.spec.DatasetSpec`
feature schemas as training, but instead of epoch-sized batches it sees
individual inference requests arriving on a Poisson process (the
standard open-loop model for user-facing traffic).  Each request draws
its categorical IDs from the per-field bounded-Zipf samplers of
:mod:`repro.data.synthetic`, so the embedding-access skew that drives
Algorithm 1's cache (PAPER SS III-D, Fig. 3) is present at serve time
exactly as it was at train time.

All randomness flows from one explicit ``numpy`` generator seeded at
construction: the same seed reproduces the same trace across processes
(the field samplers use :func:`~repro.data.synthetic.stable_field_hash`
rather than the process-randomized builtin ``hash``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.spec import DatasetSpec
from repro.data.synthetic import FieldSampler, stable_field_hash


@dataclass(frozen=True)
class Request:
    """One inference request.

    :param request_id: position in the trace (0-based).
    :param arrival_s: absolute arrival time in seconds.
    :param sparse: field name -> int64 ID array (``seq_length`` IDs).
    :param numeric: fp32 dense features, shape ``(num_numeric,)``.
    """

    request_id: int
    arrival_s: float
    sparse: dict
    numeric: np.ndarray


class TrafficGenerator:
    """Deterministic Poisson/Zipf request-stream generator.

    :param dataset: feature schema; every request carries one instance.
    :param rate_qps: mean arrival rate (requests per second).
    :param seed: seeds both the arrival process and the ID samplers.
    """

    def __init__(self, dataset: DatasetSpec, rate_qps: float,
                 seed: int = 0):
        if rate_qps <= 0:
            raise ValueError(f"rate_qps must be > 0, got {rate_qps}")
        self.dataset = dataset
        self.rate_qps = float(rate_qps)
        self.seed = int(seed)
        self._arrival_rng = np.random.default_rng(seed)
        self._numeric_rng = np.random.default_rng(seed ^ 0x5EED)
        # Each field keeps its own sampler (distinct hot sets) but all
        # are derived from the one explicit seed.
        self._samplers = {
            spec.name: FieldSampler(
                spec, seed=seed ^ stable_field_hash(spec.name))
            for spec in dataset.fields
        }

    def generate(self, count: int) -> list:
        """Produce ``count`` requests in arrival order."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        gaps = self._arrival_rng.exponential(
            1.0 / self.rate_qps, size=count)
        arrivals = np.cumsum(gaps)
        requests = []
        for index in range(count):
            sparse = {
                name: sampler.sample_batch(1)
                for name, sampler in self._samplers.items()
            }
            numeric = self._numeric_rng.standard_normal(
                self.dataset.num_numeric).astype(np.float32)
            requests.append(Request(request_id=index,
                                    arrival_s=float(arrivals[index]),
                                    sparse=sparse, numeric=numeric))
        return requests
