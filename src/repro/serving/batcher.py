"""Dynamic micro-batching of in-flight requests.

Online inference amortizes kernel-launch overhead the same way PICASSO
training does: individual requests coalesce into a batch until either
``max_batch_size`` requests are waiting or the oldest one has waited
``max_wait_s`` — the classic size-or-deadline dynamic batcher.

Closed batches are then sliced into micro-batches exactly in the spirit
of D-Interleaving (Eq. 2, :mod:`repro.core.interleaving`): the slice
count is the batch's activation footprint divided by the device budget,
clamped to ``[1, MAX_MICRO_BATCHES]`` because past that point launch
overhead outweighs the pipeline benefit (Fig. 14).  The model server
pipelines the slices so embedding fetch overlaps dense compute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Same clamp as ``repro.core.interleaving.estimate_micro_batches``.
MAX_MICRO_BATCHES = 8


@dataclass(frozen=True)
class ClosedBatch:
    """A batch the batcher has sealed and handed to the server.

    :param requests: the coalesced requests, in arrival order.
    :param close_s: the time the batch sealed (either the arrival of
        the request that filled it, or the deadline of its oldest one).
    """

    requests: tuple
    close_s: float

    @property
    def size(self) -> int:
        """Number of requests in the batch."""
        return len(self.requests)


class MicroBatcher:
    """Size-or-deadline request coalescing.

    :param max_batch_size: seal as soon as this many requests queue.
    :param max_wait_s: seal at latest this long after the oldest
        request in the forming batch arrived.
    """

    def __init__(self, max_batch_size: int, max_wait_s: float):
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)

    def form_batches(self, requests: list) -> list:
        """Coalesce an arrival-ordered request trace into batches.

        Purely a function of arrival times, so traces replay
        identically: a batch seals at ``min(arrival of its
        max_batch_size-th request, first arrival + max_wait_s)``.
        """
        ordered = sorted(requests, key=lambda r: r.arrival_s)
        batches = []
        current: list = []
        deadline = 0.0
        for request in ordered:
            if current and request.arrival_s > deadline:
                batches.append(ClosedBatch(tuple(current), deadline))
                current = []
            if not current:
                deadline = request.arrival_s + self.max_wait_s
            current.append(request)
            if len(current) == self.max_batch_size:
                batches.append(
                    ClosedBatch(tuple(current), request.arrival_s))
                current = []
        if current:
            batches.append(ClosedBatch(tuple(current), deadline))
        return batches


def plan_micro_batches(batch_rows: int, row_budget: int) -> int:
    """Eq. 2 for the serving path: slices to fit the activation budget.

    ``row_budget`` plays the role of ``RBound / RInstance`` — how many
    instances' activations fit on the device at once.  Mirrors the
    training-side clamp: at most :data:`MAX_MICRO_BATCHES` slices.
    """
    if batch_rows < 0:
        raise ValueError(f"batch_rows must be >= 0, got {batch_rows}")
    if row_budget < 1:
        raise ValueError(f"row_budget must be >= 1, got {row_budget}")
    if batch_rows <= row_budget:
        return 1
    return max(1, min(MAX_MICRO_BATCHES,
                      math.ceil(batch_rows / row_budget)))
