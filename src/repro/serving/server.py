"""The model server: cache-backed inference with modeled latency.

This closes PICASSO's train->serve loop.  A sealed micro-batch flows
through the same machinery the trainer exercises:

* **Embedding fetch** goes through Algorithm 1's caches —
  :class:`~repro.embedding.hybrid_hash.HybridHash` or its multi-level
  extension :class:`~repro.embedding.multilevel.MultiLevelCache` —
  keyed on the union ID space of all fields.  Fetch *cost* comes from
  the tier each row currently lives in, with per-tier latency and
  bandwidth derived from the :mod:`repro.hardware` node model (HBM vs
  DRAM-over-PCIe vs NVMe SSD), so cache placement visibly moves tail
  latency.
* **Dense compute** runs the real :class:`~repro.nn.network.WdlNetwork`
  forward pass for scores, while its modeled duration charges MLP FLOPs
  against the GPU plus per-kernel launch/dispatch overhead — the same
  constants that make fragmentary WDL graphs launch-bound in training
  (paper SS II-D).
* The two stages **pipeline across micro-batch slices**
  (D-Interleaving, Eq. 2): slice ``k`` fetches row block ``k+1`` while
  block ``k`` computes.

Wall-clock time never enters the model: service times are pure
functions of the trace and the hardware constants, so a seed fully
determines every reported metric.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.data.loader import Batch
from repro.data.spec import DatasetSpec, FieldSpec
from repro.embedding.hybrid_hash import HybridHash
from repro.embedding.multilevel import CacheTier, MultiLevelCache
from repro.embedding.table import EmbeddingTable
from repro.hardware.specs import NVME_SSD, MemorySpec
from repro.hardware.topology import GN6E_NODE, NodeSpec
from repro.nn.network import WdlNetwork
from repro.serving.batcher import MicroBatcher, plan_micro_batches
from repro.serving.metrics import ServingMetrics, ServingReport
from repro.serving.slo import SloConfig, SloPolicy
from repro.serving.traffic import TrafficGenerator

#: Device-memory row fetch latency (an HBM round trip from an SM);
#: GpuSpec models only bandwidth, so this constant supplies the fixed
#: term that the DRAM/SSD tiers take from their MemorySpec/LinkSpec.
HBM_ACCESS_LATENCY = 3.0e-7

#: Cache hierarchies the server knows how to build from a node spec.
CACHE_KINDS = ("hbm", "hbm-dram", "dram", "hbm-dram-ssd", "hybrid")


def default_serving_dataset(fields: int = 8, vocab: int = 30_000,
                            embedding_dim: int = 16) -> DatasetSpec:
    """A laptop-scale schema for serving demos and benchmarks."""
    return DatasetSpec(
        name="ServeMini", num_numeric=4,
        fields=tuple(
            FieldSpec(name=f"cat_{index}", vocab_size=vocab,
                      embedding_dim=embedding_dim, zipf_exponent=1.15)
            for index in range(fields)))


def build_tiers(kind: str, node: NodeSpec, row_bytes: int,
                hot_rows: int, warm_rows: int,
                ssd: MemorySpec = NVME_SSD) -> tuple:
    """Derive a :class:`CacheTier` hierarchy from hardware specs.

    Tier costs come straight from the node model: HBM uses the GPU's
    memory bandwidth; DRAM is reached from the GPU over PCIe (latency
    adds up, bandwidth is the weaker of the two); SSD pays its random
    read latency.  ``hot_rows``/``warm_rows`` bound the non-bottom
    tiers; the bottom tier is always unbounded (authoritative).
    """
    hbm = CacheTier(
        "hbm", capacity_bytes=hot_rows * row_bytes,
        access_seconds_per_byte=1.0 / node.gpu.hbm_bandwidth,
        access_latency=HBM_ACCESS_LATENCY)
    dram = CacheTier(
        "dram", capacity_bytes=warm_rows * row_bytes,
        access_seconds_per_byte=1.0 / min(node.dram.bandwidth,
                                          node.pcie.bandwidth),
        access_latency=node.pcie.latency + node.dram.access_latency)
    ssd_tier = CacheTier(
        "ssd", capacity_bytes=float("inf"),
        access_seconds_per_byte=1.0 / ssd.bandwidth,
        access_latency=node.pcie.latency + ssd.access_latency)
    unbounded = lambda tier: CacheTier(
        tier.name, float("inf"), tier.access_seconds_per_byte,
        tier.access_latency)
    if kind == "hbm":
        return (unbounded(hbm),)
    if kind == "dram":
        return (unbounded(dram),)
    if kind == "hbm-dram":
        return (hbm, unbounded(dram))
    if kind == "hbm-dram-ssd":
        return (hbm, dram, ssd_tier)
    raise ValueError(f"unknown cache kind {kind!r}; "
                     f"expected one of {CACHE_KINDS}")


@dataclass(frozen=True)
class BatchService:
    """Outcome of serving one admitted batch."""

    scores: np.ndarray
    fetch_s: float
    compute_s: float
    service_s: float
    micro_batches: int


class ModelServer:
    """Runs admitted batches through cache + network with modeled time.

    :param network: scoring model (its forward pass really runs).
    :param cache: a :class:`MultiLevelCache` (tier-cost model) or a
        :class:`HybridHash` (hot/cold model priced as HBM vs DRAM).
    :param node: hardware the latency model reads its constants from.
    :param micro_batch_rows: Eq. 2 activation budget in requests; a
        sealed batch is sliced into ``ceil(size / micro_batch_rows)``
        micro-batches (clamped like training-side D-Interleaving).
    """

    def __init__(self, network: WdlNetwork, cache, node: NodeSpec = GN6E_NODE,
                 micro_batch_rows: int = 16):
        if micro_batch_rows < 1:
            raise ValueError("micro_batch_rows must be >= 1")
        self.network = network
        self.cache = cache
        self.node = node
        self.micro_batch_rows = int(micro_batch_rows)
        dataset = network.dataset
        self._row_bytes = network.embedding_dim * 4
        # Disambiguate per-field ID spaces into one cache key space.
        offsets, cursor = {}, 0
        for spec in dataset.fields:
            offsets[spec.name] = cursor
            cursor += spec.vocab_size
        self._key_offsets = offsets
        # 2 * sum(in*out) MACs per instance through the MLP trunk.
        self._flops_per_row = 2.0 * sum(
            layer.weight.shape[0] * layer.weight.shape[1]
            for layer in network.mlp)
        # Kernels per micro-batch: one lookup per field, the MLP
        # layers, plus concat/interaction glue.
        self._kernels_per_slice = dataset.num_fields + len(network.mlp) + 2
        if isinstance(cache, MultiLevelCache):
            self._hybrid_tiers = None
        elif isinstance(cache, HybridHash):
            # Price HybridHash's two levels as HBM over DRAM.
            hot, cold = build_tiers("hbm-dram", node, self._row_bytes,
                                    hot_rows=1, warm_rows=1)
            self._hybrid_tiers = (hot, cold)
        else:
            raise TypeError(
                f"unsupported cache type {type(cache).__name__}")

    # -- latency model -------------------------------------------------------

    def _cache_keys(self, requests: list) -> np.ndarray:
        """Union-ID-space cache keys for a batch's sparse features."""
        keys = [
            request.sparse[name] + offset
            for name, offset in self._key_offsets.items()
            for request in requests
        ]
        return np.concatenate(keys) if keys else np.zeros(0, np.int64)

    def batch_keys(self, requests: list) -> np.ndarray:
        """Public view of a batch's cache keys (prefetch classifiers
        score residency in the same union ID space the cache is keyed
        on)."""
        return self._cache_keys(requests)

    def _fetch_seconds(self, keys: np.ndarray) -> float:
        """Modeled embedding-fetch time under current placement."""
        if isinstance(self.cache, MultiLevelCache):
            return self.cache.expected_access_cost(keys)
        hot, cold = self._hybrid_tiers
        unique = np.unique(keys).size
        hit = self.cache.batch_hit_ratio(keys)
        per_hot = hot.access_latency \
            + self._row_bytes * hot.access_seconds_per_byte
        per_cold = cold.access_latency \
            + self._row_bytes * cold.access_seconds_per_byte
        return unique * (hit * per_hot + (1.0 - hit) * per_cold)

    def _compute_seconds(self, rows: float) -> float:
        """Modeled dense-compute time for one micro-batch of ``rows``."""
        flops = self._flops_per_row * rows
        launch = self._kernels_per_slice \
            * (self.node.gpu.kernel_launch_latency
               + self.node.cpu.op_dispatch_latency)
        return flops / self.node.gpu.fp32_flops + launch

    def _service_seconds(self, fetch_s: float, size: int) -> tuple:
        """Two-stage pipeline over micro-batch slices (Eq. 2 spirit).

        Slice 1 must fetch before anything computes; afterwards each
        slice's fetch overlaps the previous slice's compute.
        """
        slices = plan_micro_batches(size, self.micro_batch_rows)
        fetch_mb = fetch_s / slices
        compute_mb = self._compute_seconds(size / slices)
        service = fetch_mb + compute_mb \
            + (slices - 1) * max(fetch_mb, compute_mb)
        return service, slices, compute_mb * slices

    def estimate_service_s(self, requests: list) -> float:
        """Service-time estimate for admission control (no side effects)."""
        if not requests:
            return 0.0
        keys = self._cache_keys(requests)
        fetch_s = self._fetch_seconds(keys)
        service, _slices, _compute = self._service_seconds(
            fetch_s, len(requests))
        return service

    # -- serving -------------------------------------------------------------

    def process(self, requests: list) -> BatchService:
        """Serve one admitted batch: cache lookup + real forward pass."""
        if not requests:
            raise ValueError("cannot process an empty batch")
        keys = self._cache_keys(requests)
        fetch_s = self._fetch_seconds(keys)
        self.cache.lookup(keys)  # records hits, advances flush clock
        service, slices, compute_s = self._service_seconds(
            fetch_s, len(requests))
        batch = Batch(
            batch_size=len(requests),
            sparse={
                name: np.concatenate(
                    [request.sparse[name] for request in requests])
                for name in self._key_offsets
            },
            numeric=np.stack([request.numeric for request in requests]))
        scores = self.network.predict(batch)
        return BatchService(scores=scores, fetch_s=fetch_s,
                            compute_s=compute_s, service_s=service,
                            micro_batches=slices)

    def cache_hit_ratio(self) -> float:
        """Fraction of lookups served by the fastest storage level."""
        if isinstance(self.cache, MultiLevelCache):
            return self.cache.stats_as_dict()["hit_ratio"]
        return self.cache.stats.hit_ratio


def _deadline_aware_order(sealed: list, prefetcher, server: ModelServer,
                          policy: SloPolicy, server_free):
    """Yield ``(seal_index, batch)`` in hot-first, deadline-safe order.

    The serving mirror of the trainer's lookahead window: up to
    ``lookahead_depth`` *already-sealed* batches are candidates, a
    tier-resident (hot) batch may jump ahead of colder older ones, and
    :func:`~repro.prefetch.pipeline.choose_deadline_aware` guarantees
    the jump never pushes a deferred batch past its SLO deadline — a
    batch at its starvation bound or deadline edge is served next
    regardless of temperature.  Batches that have not sealed yet by
    the time the server frees are never candidates (no time travel).

    :param server_free: zero-arg callable returning the server's
        current free time (advances as the caller serves batches).
    """
    from repro.prefetch.pipeline import choose_deadline_aware

    depth = prefetcher.config.lookahead_depth
    budget = policy.config.latency_budget_s
    pending = list(sealed)
    pending.reverse()  # pop() from the tail = seal order
    window: list = []  # [seal_index, batch, deferred]
    while pending or window:
        while pending and len(window) < depth:
            window.append(list(pending.pop()) + [0])
        now = max(server_free(),
                  min(entry[1].close_s for entry in window))
        eligible = [entry for entry in window
                    if entry[1].close_s <= now]
        if len(eligible) <= 1 or not prefetcher.config.reorders:
            choice = 0
            eligible = window[:1]
        else:
            classes = [prefetcher.classifier.classify(
                server.batch_keys(list(entry[1].requests)), entry[0])
                for entry in eligible]
            estimates = [server.estimate_service_s(
                list(entry[1].requests)) for entry in eligible]
            deadlines = [min(request.arrival_s
                             for request in entry[1].requests) + budget
                         for entry in eligible]
            choice = choose_deadline_aware(
                classes, estimates, deadlines, now, depth,
                [entry[2] for entry in eligible])
        if choice != 0:
            prefetcher.stats.reordered += 1
            for entry in eligible[:choice]:
                entry[2] += 1
        # ``eligible`` is a seal-order prefix of ``window``, so the
        # eligible position is also the window position.
        chosen = window.pop(choice)
        prefetcher.stats.batches += 1
        yield chosen[0], chosen[1]


def serve_trace(requests: list, server: ModelServer,
                batcher: MicroBatcher, policy: SloPolicy,
                tracer=None, metrics=None, faults=None,
                flight=None, prefetcher=None) -> ServingReport:
    """Run a request trace through batcher -> SLO gate -> server.

    A single-server queue in modeled time: batch ``i`` starts at
    ``max(seal time, previous completion)``; admission control sheds
    requests that can no longer meet the SLO before capacity is spent
    on them.  Deterministic for a fixed trace and server state.

    :param tracer: optional :class:`repro.telemetry.Tracer`; every
        admitted batch becomes a modeled-time span on the ``server``
        track (batching wait on ``batcher``), every shed request an
        instant event — so serving runs export to the same
        Chrome-trace timeline as training runs.
    :param metrics: optional :class:`ServingMetrics` to populate; pass
        one in to keep the raw per-request events (e.g. for the SLO
        burn-rate monitor) after the report is reduced.
    :param faults: optional degraded-mode controller (duck-typed, see
        :class:`~repro.faults.degraded.DegradedModeController`): its
        ``service_factor(t)`` inflates service time while replicas are
        down and its ``admit`` hook tightens the deadline, so replica
        loss surfaces as shed rate, never as an unserved outage.  Its
        ``summary()`` lands on the report's ``degraded`` field.
    :param flight: optional :class:`repro.telemetry.FlightRecorder`;
        batch spans and shed alerts land in its ring (a shed triggers
        a dump-on-alert with the last retention window of context).
    :param prefetcher: optional
        :class:`~repro.prefetch.LookaheadPrefetcher`; sealed batches
        are served in its deadline-aware hot-first order (see
        :func:`_deadline_aware_order`) instead of strict seal order.
    """
    metrics = metrics if metrics is not None else ServingMetrics()
    server_free = 0.0
    sealed = list(enumerate(batcher.form_batches(requests)))
    if prefetcher is None:
        ordered = iter(sealed)
    else:
        ordered = _deadline_aware_order(
            [pair for pair in sealed], prefetcher, server, policy,
            lambda: server_free)
    for index, batch in ordered:
        start = max(batch.close_s, server_free)
        estimate = server.estimate_service_s(list(batch.requests))
        if faults is not None:
            estimate *= faults.service_factor(start)
            admitted, shed = faults.admit(policy, batch, start, estimate)
        else:
            admitted, shed = policy.admit(batch, start, estimate)
        for request in shed:
            metrics.record_shed(request.arrival_s, start)
            if tracer is not None:
                tracer.instant("shed", timestamp=start, track="slo",
                               arrival_s=request.arrival_s)
        if flight is not None and shed:
            from repro.telemetry.monitor import Alert
            flight.record_alert(Alert(
                time_s=start, monitor="slo", severity="warning",
                message=f"{len(shed)} request(s) shed at t={start:.4f}s",
                value=float(len(shed)), threshold=0.0, name="shed"))
        if not admitted:
            continue
        outcome = server.process(admitted)
        service_s = outcome.service_s
        if faults is not None:
            service_s *= faults.service_factor(start)
        completion = start + service_s
        metrics.record_stage("batch_wait", sum(
            batch.close_s - request.arrival_s for request in admitted))
        metrics.record_stage("queue", start - batch.close_s)
        metrics.record_stage("lookup", outcome.fetch_s)
        metrics.record_stage("dense", outcome.compute_s)
        for request in admitted:
            metrics.record_served(request.arrival_s, completion)
        if tracer is not None:
            first_arrival = min(request.arrival_s
                                for request in admitted)
            tracer.add_span(f"batch{index}/wait", first_arrival,
                            batch.close_s, category="serving",
                            track="batcher",
                            attrs={"size": len(admitted)})
            tracer.add_span(f"batch{index}", start, completion,
                            category="serving", track="server",
                            attrs={"size": len(admitted),
                                   "micro_batches": outcome.micro_batches,
                                   "fetch_s": outcome.fetch_s,
                                   "compute_s": outcome.compute_s})
        if flight is not None:
            flight.record_span(f"batch{index}", start, completion,
                               track="server",
                               attrs={"size": len(admitted)})
        server_free = completion
    report = metrics.report(cache_hit_ratio=server.cache_hit_ratio())
    if faults is not None:
        report = dataclasses.replace(report, degraded=faults.summary())
    return report


def simulate_serving(num_requests: int = 10_000, seed: int = 0,
                     rate_qps: float = 20_000.0,
                     cache: str = "hbm-dram",
                     hot_rows: int = 4_000, warm_rows: int = 60_000,
                     max_batch_size: int = 64, max_wait_s: float = 0.002,
                     slo_s: float = 0.02,
                     micro_batch_rows: int = 16,
                     warmup_iters: int = 10, flush_iters: int = 20,
                     node: NodeSpec = GN6E_NODE,
                     dataset: DatasetSpec | None = None,
                     variant: str = "wdl",
                     replicas: int = 1, fault_plan=None,
                     tracer=None, metrics=None,
                     flight=None, prefetch=None) -> ServingReport:
    """End-to-end serving simulation; the facade's entry point.

    Builds traffic, cache hierarchy (``cache`` in :data:`CACHE_KINDS`),
    network and SLO policy from one seed and returns the final report.
    ``tracer`` (a :class:`repro.telemetry.Tracer`) captures the run as
    modeled-time spans; see :func:`serve_trace`.

    ``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan`) marks
    replica-loss windows across ``replicas`` replicas: the run enters
    degraded mode (service inflation + admission tightening) instead
    of dropping traffic on the floor, and the report's ``degraded``
    field accounts for it.

    ``prefetch`` (a :class:`~repro.prefetch.PrefetchConfig`) turns on
    deadline-aware hot-first batch ordering: sealed batches whose rows
    are resident in the fast cache tier may run ahead of colder ones,
    but never past any deferred batch's SLO deadline.
    """
    dataset = dataset or default_serving_dataset()
    network = WdlNetwork(dataset, variant=variant, seed=seed)
    table = EmbeddingTable(dim=network.embedding_dim, seed=seed)
    row_bytes = network.embedding_dim * 4
    if cache == "hybrid":
        store = HybridHash(table, hot_bytes=hot_rows * row_bytes,
                           warmup_iters=warmup_iters,
                           flush_iters=flush_iters)
    else:
        store = MultiLevelCache(
            table, tiers=build_tiers(cache, node, row_bytes,
                                     hot_rows, warm_rows),
            warmup_iters=warmup_iters, flush_iters=flush_iters)
    server = ModelServer(network, store, node=node,
                         micro_batch_rows=micro_batch_rows)
    generator = TrafficGenerator(dataset, rate_qps=rate_qps, seed=seed)
    requests = generator.generate(num_requests)
    batcher = MicroBatcher(max_batch_size=max_batch_size,
                           max_wait_s=max_wait_s)
    policy = SloPolicy(SloConfig(latency_budget_s=slo_s))
    faults = None
    if fault_plan is not None and len(fault_plan):
        # Imported lazily: repro.faults depends on repro.serving for
        # the SLO types, so the reverse edge must stay runtime-only.
        from repro.faults.degraded import DegradedModeController
        faults = DegradedModeController(fault_plan, replicas=replicas)
    prefetcher = None
    if prefetch is not None:
        from repro.prefetch import LookaheadPrefetcher, resident_from_cache
        prefetcher = LookaheadPrefetcher(
            prefetch, resident=resident_from_cache(store),
            row_bytes=row_bytes)
    return serve_trace(requests, server, batcher, policy, tracer=tracer,
                       metrics=metrics, faults=faults, flight=flight,
                       prefetcher=prefetcher)
