"""Serving-side metrics: latency percentiles, QPS, shed rate, cache.

Mirrors :mod:`repro.sim.metrics`: raw events (per-request completions)
are reduced onto fixed-width buckets for timelines, and headline
numbers come out as plain dict rows ready for
``repro.experiments.common.format_table``.  Everything is a pure
function of the recorded events, so a deterministic simulation yields
bit-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.timeseries import Histogram

#: Same default sampling grid as the training-side utilization plots.
DEFAULT_BUCKET_SECONDS = 0.010


def _percentiles_ms(hist: Histogram):
    """(p50, p95, p99) in ms from a latency histogram (ms values)."""
    if hist.count == 0:
        return 0.0, 0.0, 0.0
    return (hist.quantile(0.50), hist.quantile(0.95), hist.quantile(0.99))


@dataclass(frozen=True)
class ServingReport:
    """Headline metrics of one serving run.

    ``latency_hist`` carries the full latency distribution (ms) as a
    mergeable log-bucket histogram; the ``p*_ms`` fields are its
    quantiles, so merged reports expose true combined percentiles.
    """

    served: int
    shed: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    qps: float
    shed_rate: float
    cache_hit_ratio: float
    makespan_s: float
    stage_seconds: dict
    latency_hist: Histogram = field(default_factory=Histogram,
                                    compare=False, repr=False)
    #: Degraded-mode summary (replica loss accounting) when the run
    #: went through a fault-aware controller; ``None`` otherwise.
    degraded: dict | None = field(default=None, compare=False)

    def as_dict(self) -> dict:
        """Plain-dict export (benchmarks, JSON)."""
        payload = {
            "served": self.served,
            "shed": self.shed,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "qps": self.qps,
            "shed_rate": self.shed_rate,
            "cache_hit_ratio": self.cache_hit_ratio,
            "makespan_s": self.makespan_s,
            "stage_seconds": dict(self.stage_seconds),
        }
        if self.degraded is not None:
            payload["degraded"] = dict(self.degraded)
        return payload

    def merge(self, other: "ServingReport") -> "ServingReport":
        """Combine two runs/shards (``Stats`` protocol).

        Counts, makespans and stage times add; the latency histograms
        merge bucket-exactly and the combined percentiles are read off
        the merged histogram (reports built without raw latencies fall
        back to the pairwise max); QPS, shed rate and the hit ratio
        are recomputed from the combined counts.
        """
        served = self.served + other.served
        shed = self.shed + other.shed
        makespan = self.makespan_s + other.makespan_s
        stages = dict(self.stage_seconds)
        for stage, seconds in other.stage_seconds.items():
            stages[stage] = stages.get(stage, 0.0) + seconds
        if served > 0:
            hit_ratio = (self.cache_hit_ratio * self.served
                         + other.cache_hit_ratio * other.served) / served
        else:
            hit_ratio = 0.0
        hist = self.latency_hist.merge(other.latency_hist)
        if hist.count > 0:
            p50, p95, p99 = _percentiles_ms(hist)
        else:
            p50 = max(self.p50_ms, other.p50_ms)
            p95 = max(self.p95_ms, other.p95_ms)
            p99 = max(self.p99_ms, other.p99_ms)
        return ServingReport(
            served=served,
            shed=shed,
            p50_ms=p50,
            p95_ms=p95,
            p99_ms=p99,
            qps=served / makespan if makespan > 0 else 0.0,
            shed_rate=shed / (served + shed) if served + shed else 0.0,
            cache_hit_ratio=hit_ratio,
            makespan_s=makespan,
            stage_seconds=stages,
            latency_hist=hist)

    def row(self) -> dict:
        """One formatted table row (for ``format_table``)."""
        return {
            "served": self.served,
            "shed": self.shed,
            "p50_ms": f"{self.p50_ms:.3f}",
            "p95_ms": f"{self.p95_ms:.3f}",
            "p99_ms": f"{self.p99_ms:.3f}",
            "qps": f"{self.qps:,.0f}",
            "shed_rate": f"{self.shed_rate:.2%}",
            "cache_hit": f"{self.cache_hit_ratio:.2%}",
        }


class ServingMetrics:
    """Accumulates per-request outcomes during a serving run."""

    def __init__(self):
        self._latencies: list = []
        self._completions: list = []
        self._shed = 0
        self._shed_times: list = []
        self._first_arrival = None
        self._last_event = 0.0
        self._stage_seconds: dict = {}

    def observe_arrival(self, arrival_s: float) -> None:
        """Track the trace's start for QPS accounting."""
        if self._first_arrival is None or arrival_s < self._first_arrival:
            self._first_arrival = arrival_s

    def record_served(self, arrival_s: float, completion_s: float) -> None:
        """One request finished; latency is completion - arrival."""
        self.observe_arrival(arrival_s)
        self._latencies.append(completion_s - arrival_s)
        self._completions.append(completion_s)
        self._last_event = max(self._last_event, completion_s)

    def record_shed(self, arrival_s: float, shed_s: float) -> None:
        """One request dropped by admission control."""
        self.observe_arrival(arrival_s)
        self._shed += 1
        self._shed_times.append(shed_s)
        self._last_event = max(self._last_event, shed_s)

    def completed_requests(self) -> list:
        """``(completion_s, latency_s)`` pairs, in completion order.

        The raw feed of the SLO burn-rate monitor.
        """
        return list(zip(self._completions, self._latencies))

    def shed_times(self) -> list:
        """Times at which requests were dropped by admission control."""
        return list(self._shed_times)

    def record_stage(self, stage: str, seconds: float) -> None:
        """Accumulate modeled time in a named pipeline stage."""
        self._stage_seconds[stage] = \
            self._stage_seconds.get(stage, 0.0) + seconds

    def latency_histogram(self) -> Histogram:
        """The latency distribution (in ms) as a mergeable histogram."""
        return Histogram.from_values(
            latency * 1e3 for latency in self._latencies)

    def report(self, cache_hit_ratio: float = 0.0) -> ServingReport:
        """Reduce the recorded events to a :class:`ServingReport`."""
        served = len(self._latencies)
        total = served + self._shed
        start = self._first_arrival or 0.0
        makespan = max(0.0, self._last_event - start)
        hist = self.latency_histogram()
        p50, p95, p99 = _percentiles_ms(hist)
        return ServingReport(
            served=served,
            shed=self._shed,
            p50_ms=p50,
            p95_ms=p95,
            p99_ms=p99,
            qps=served / makespan if makespan > 0 else 0.0,
            shed_rate=self._shed / total if total else 0.0,
            cache_hit_ratio=cache_hit_ratio,
            makespan_s=makespan,
            stage_seconds=dict(self._stage_seconds),
            latency_hist=hist,
        )

    def qps_timeline(self, bucket: float = DEFAULT_BUCKET_SECONDS):
        """Completions per second on a fixed grid (``(times, qps)``).

        The serving twin of ``repro.sim.metrics.bandwidth_timeline``:
        bucketed completion counts over the run's makespan.
        """
        if bucket <= 0:
            raise ValueError(f"bucket must be > 0, got {bucket}")
        completions = np.asarray(self._completions, dtype=np.float64)
        if completions.size == 0:
            return np.zeros(0), np.zeros(0)
        start = self._first_arrival or 0.0
        offsets = completions - start
        num_buckets = max(1, int(np.ceil(offsets.max() / bucket)) or 1)
        counts = np.bincount(
            np.minimum(num_buckets - 1,
                       (offsets // bucket).astype(np.int64)),
            minlength=num_buckets)
        times = np.arange(num_buckets) * bucket
        return times, counts / bucket
