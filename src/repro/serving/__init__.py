"""Online inference serving: the train->serve loop closed.

PICASSO's machinery was built for training, but its three pillars map
one-to-one onto online serving: Algorithm 1's frequency-managed caches
become the embedding store behind a latency SLO, D-Interleaving's
micro-batch slicing becomes the dynamic request batcher, and the
hardware model prices every fetch by the tier it lands in.  This
package simulates that serving path end to end — Poisson/Zipf traffic,
size-or-deadline batching, SLO admission control, and a model server
whose latency model is driven by :mod:`repro.hardware` — with every
metric a deterministic function of one seed.
"""

from repro.serving.batcher import ClosedBatch, MicroBatcher, \
    plan_micro_batches
from repro.serving.metrics import ServingMetrics, ServingReport
from repro.serving.server import (
    CACHE_KINDS,
    ModelServer,
    build_tiers,
    default_serving_dataset,
    serve_trace,
    simulate_serving,
)
from repro.serving.slo import SloConfig, SloPolicy
from repro.serving.traffic import (
    DiurnalShape,
    FlashCrowdShape,
    RateShape,
    Request,
    TrafficGenerator,
    shape_from_dict,
)

__all__ = [
    "CACHE_KINDS",
    "ClosedBatch",
    "DiurnalShape",
    "FlashCrowdShape",
    "MicroBatcher",
    "ModelServer",
    "RateShape",
    "Request",
    "ServingMetrics",
    "ServingReport",
    "SloConfig",
    "SloPolicy",
    "TrafficGenerator",
    "build_tiers",
    "default_serving_dataset",
    "plan_micro_batches",
    "serve_trace",
    "shape_from_dict",
    "simulate_serving",
]
