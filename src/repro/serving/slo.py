"""SLO enforcement: admission control and load shedding.

A latency SLO is only meaningful under overload if the server is
allowed to *not* serve: queueing theory says an open-loop M/D/1 queue
past saturation grows without bound, so every production recommender
front-end sheds load once the deadline becomes unreachable.  The policy
here is deadline-based admission control at batch start: a request
whose projected completion (``batch start + estimated service``)
already exceeds its arrival-relative budget is dropped before the model
runs, spending capacity only on requests that can still make the SLO.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SloConfig:
    """Latency objective for the serving path.

    :param latency_budget_s: end-to-end per-request deadline, measured
        from arrival to completion.
    :param max_queue_delay_s: optional guard on time spent between
        batch seal and service start; a batch stuck longer than this is
        shed wholesale (the queue is hopeless, draining it only makes
        later requests miss too).
    """

    latency_budget_s: float
    max_queue_delay_s: float = float("inf")

    def __post_init__(self) -> None:
        if self.latency_budget_s <= 0:
            raise ValueError("latency_budget_s must be > 0")
        if self.max_queue_delay_s < 0:
            raise ValueError("max_queue_delay_s must be >= 0")


class SloPolicy:
    """Deadline-based admission control over sealed batches."""

    def __init__(self, config: SloConfig):
        self.config = config

    def admit(self, batch, start_s: float,
              service_estimate_s: float) -> tuple:
        """Split a batch into (admitted, shed) at service start.

        :param batch: a :class:`~repro.serving.batcher.ClosedBatch`.
        :param start_s: when the server would begin this batch.
        :param service_estimate_s: the server's modeled service time
            for the full batch.
        :returns: ``(admitted, shed)`` request lists.
        """
        if start_s - batch.close_s > self.config.max_queue_delay_s:
            return [], list(batch.requests)
        completion = start_s + service_estimate_s
        admitted, shed = [], []
        for request in batch.requests:
            if completion - request.arrival_s > self.config.latency_budget_s:
                shed.append(request)
            else:
                admitted.append(request)
        return admitted, shed
