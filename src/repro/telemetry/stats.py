"""The ``Stats`` protocol: one export/combine contract for all metrics.

Every subsystem produces some headline-number object — the embedding
caches their hit counters, the trainer its AUC/loss record, the serving
stack its latency report, the simulator its run summary.  Telemetry
exports, benchmarks and the experiment runner all want the same two
operations from them:

* ``as_dict()`` — a plain-``dict`` snapshot (JSON-ready, table-ready);
* ``merge(other)`` — combine two stats of the same type into a new one
  (shard aggregation, multi-run accumulation), leaving both inputs
  unchanged.

:class:`Stats` is a :func:`runtime_checkable` :class:`typing.Protocol`,
so conformance is structural: any object with those two methods
participates, no inheritance required.  :func:`merge_all` folds a
sequence of conforming stats; :func:`merge_numeric_dicts` is the shared
helper for dict-shaped payloads (numeric leaves add, nested dicts
recurse, everything else keeps the left value).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Stats(Protocol):
    """Structural interface every stats object in the repo satisfies."""

    def as_dict(self) -> dict:
        """Plain-dict snapshot for export (JSON, tables, telemetry)."""
        ...  # pragma: no cover - protocol

    def merge(self, other: "Stats") -> "Stats":
        """Combine with ``other`` (same type) into a new stats object."""
        ...  # pragma: no cover - protocol


def is_stats(obj) -> bool:
    """Whether ``obj`` structurally satisfies :class:`Stats`."""
    return isinstance(obj, Stats)


def merge_numeric_dicts(left: dict, right: dict) -> dict:
    """Merge two dict payloads: numbers add, nested dicts recurse.

    Booleans and non-numeric leaves keep the left-hand value; keys
    present on only one side pass through unchanged.
    """
    merged = dict(left)
    for key, value in right.items():
        if key not in merged:
            merged[key] = value
        elif isinstance(merged[key], dict) and isinstance(value, dict):
            merged[key] = merge_numeric_dicts(merged[key], value)
        elif (isinstance(merged[key], (int, float))
              and isinstance(value, (int, float))
              and not isinstance(merged[key], bool)
              and not isinstance(value, bool)):
            merged[key] = merged[key] + value
    return merged


def merge_all(stats: list):
    """Fold a non-empty sequence of same-typed stats via ``merge``."""
    if not stats:
        raise ValueError("cannot merge an empty stats sequence")
    merged = stats[0]
    for item in stats[1:]:
        merged = merged.merge(item)
    return merged
