"""Time-series telemetry: EWMA, rolling windows, mergeable histograms.

Spans answer "when", the registry answers "how much"; this module
answers "how is it trending".  Producers push samples as they happen —
sim interval rates, serving completions, per-iteration cache hit
ratios — and three reducers turn the stream into monitorable signals:

* :class:`Ewma` — exponentially weighted moving average, the smoothed
  level health monitors threshold against;
* :class:`RollingWindow` / :class:`FixedWindowAggregator` — bounded
  recent-history and fixed-window (count/sum/min/max/mean) aggregation
  over ``(time, value)`` samples, mirroring the paper's 10 ms DCGM
  sampling grid;
* :class:`Histogram` — a *mergeable* log-bucket histogram with
  exact-bound quantile queries: merging per-shard histograms and then
  asking for p99 gives the true combined quantile up to one bucket's
  relative width, unlike the "max of per-shard p99s" estimate it
  replaces in :class:`~repro.serving.metrics.ServingReport`.

Everything here is a pure function of the observed samples, so
deterministic runs produce byte-identical exports.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

#: Default per-bucket relative width of :class:`Histogram` (2%).
DEFAULT_GROWTH = 1.02

#: Default smallest resolvable histogram value (1 ns, in seconds).
DEFAULT_MIN_VALUE = 1e-9


class Ewma:
    """Exponentially weighted moving average of a sample stream.

    ``value`` after ``update(x)`` is ``alpha * x + (1-alpha) * value``;
    the first sample initializes the level directly (no bias toward an
    arbitrary zero start).
    """

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.value: float | None = None
        self.count = 0

    def update(self, sample: float) -> float:
        """Fold one sample in; returns the new smoothed level."""
        sample = float(sample)
        if self.value is None:
            self.value = sample
        else:
            self.value = self.alpha * sample \
                + (1.0 - self.alpha) * self.value
        self.count += 1
        return self.value


class RollingWindow:
    """The last ``capacity`` samples with O(1) mean/min/max queries."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._values: deque = deque(maxlen=self.capacity)

    def push(self, sample: float) -> None:
        """Append one sample, evicting the oldest when full."""
        self._values.append(float(sample))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> list:
        """Samples currently in the window, oldest first."""
        return list(self._values)

    @property
    def mean(self) -> float:
        """Mean of the window (0.0 when empty)."""
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    @property
    def min(self) -> float:
        """Smallest sample in the window (``inf`` when empty)."""
        return min(self._values) if self._values else float("inf")

    @property
    def max(self) -> float:
        """Largest sample in the window (``-inf`` when empty)."""
        return max(self._values) if self._values else float("-inf")


@dataclass(frozen=True)
class WindowStats:
    """Aggregate of one fixed time window."""

    start: float
    end: float
    count: int
    total: float
    low: float
    high: float

    @property
    def mean(self) -> float:
        """Mean sample value in the window."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "count": self.count,
            "total": self.total,
            "low": self.low,
            "high": self.high,
            "mean": self.mean,
        }


class FixedWindowAggregator:
    """Reduces ``(time, value)`` samples onto fixed-width windows.

    The time-series twin of ``repro.sim.metrics``'s bucket grid: window
    ``i`` covers ``[i * window_s, (i+1) * window_s)``.  Windows with no
    samples are skipped (not zero-filled) so sparse streams stay sparse.
    """

    def __init__(self, window_s: float):
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self.window_s = float(window_s)
        self._windows: dict = {}  # index -> [count, total, low, high]

    def add(self, when_s: float, value: float = 1.0) -> None:
        """Fold one timestamped sample into its window."""
        if when_s < 0:
            raise ValueError(f"sample time must be >= 0, got {when_s}")
        index = int(when_s // self.window_s)
        value = float(value)
        window = self._windows.get(index)
        if window is None:
            self._windows[index] = [1, value, value, value]
        else:
            window[0] += 1
            window[1] += value
            window[2] = min(window[2], value)
            window[3] = max(window[3], value)

    def windows(self) -> list:
        """Non-empty :class:`WindowStats`, in time order."""
        stats = []
        for index in sorted(self._windows):
            count, total, low, high = self._windows[index]
            stats.append(WindowStats(
                start=index * self.window_s,
                end=(index + 1) * self.window_s,
                count=count, total=total, low=low, high=high))
        return stats


class Histogram:
    """Mergeable log-bucket histogram with exact-bound quantiles.

    Values land in geometric buckets: bucket ``i`` covers
    ``[min_value * growth**i, min_value * growth**(i+1))`` and values
    below ``min_value`` clamp into bucket 0.  Quantile queries return
    the containing bucket's *upper bound*, clamped to the exact
    observed maximum — so the answer is always a true upper bound on
    the requested quantile, and is at most one bucket's relative width
    (``growth - 1``, 2% by default) above it.

    Two histograms with the same ``growth``/``min_value`` merge by
    adding bucket counts, which is exact: quantiles of the merged
    histogram are quantiles of the combined sample stream (to bucket
    resolution), not an estimate from the parts' summaries.  Merging is
    associative with the empty histogram as identity, making this a
    :class:`~repro.telemetry.stats.Stats` object safe for shard trees.
    """

    def __init__(self, growth: float = DEFAULT_GROWTH,
                 min_value: float = DEFAULT_MIN_VALUE):
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be > 0, got {min_value}")
        self.growth = float(growth)
        self.min_value = float(min_value)
        self._log_growth = math.log(self.growth)
        self._buckets: dict = {}  # bucket index -> count
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    @classmethod
    def from_values(cls, values, growth: float = DEFAULT_GROWTH,
                    min_value: float = DEFAULT_MIN_VALUE) -> "Histogram":
        """A histogram pre-filled from an iterable of samples."""
        histogram = cls(growth=growth, min_value=min_value)
        for value in values:
            histogram.observe(value)
        return histogram

    def _bucket_index(self, value: float) -> int:
        if value < self.min_value:
            return 0
        return int(math.log(value / self.min_value) // self._log_growth)

    def bucket_upper_bound(self, index: int) -> float:
        """Exclusive upper edge of bucket ``index``."""
        return self.min_value * self.growth ** (index + 1)

    def observe(self, value: float) -> None:
        """Record one sample (must be >= 0)."""
        value = float(value)
        if value < 0 or not math.isfinite(value):
            raise ValueError(
                f"histogram values must be finite and >= 0, got {value}")
        index = self._bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        """Exact mean of the observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound on the ``q``-quantile of the observed samples.

        Returns 0.0 for an empty histogram.  The bound is exact to one
        bucket: ``true_quantile <= result <= true_quantile * growth``
        (and never above the observed maximum).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                return min(self.bucket_upper_bound(index), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    def merge(self, other: "Histogram") -> "Histogram":
        """Bucket-exact combination of two histograms (``Stats``)."""
        if (other.growth != self.growth
                or other.min_value != self.min_value):
            raise ValueError(
                "cannot merge histograms with different bucket layouts: "
                f"growth {self.growth} vs {other.growth}, min_value "
                f"{self.min_value} vs {other.min_value}")
        merged = Histogram(growth=self.growth, min_value=self.min_value)
        merged._buckets = dict(self._buckets)
        for index, count in other._buckets.items():
            merged._buckets[index] = merged._buckets.get(index, 0) + count
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    def as_dict(self) -> dict:
        """JSON-ready snapshot; bucket list is sorted by index."""
        return {
            "growth": self.growth,
            "min_value": self.min_value,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [[index, self._buckets[index]]
                        for index in sorted(self._buckets)],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`as_dict` output."""
        histogram = cls(growth=payload["growth"],
                        min_value=payload["min_value"])
        histogram._buckets = {int(index): int(count)
                              for index, count in payload["buckets"]}
        histogram.count = int(payload["count"])
        histogram.total = float(payload["total"])
        histogram.min = (float(payload["min"])
                         if payload.get("min") is not None else float("inf"))
        histogram.max = (float(payload["max"])
                         if payload.get("max") is not None
                         else float("-inf"))
        return histogram
