"""Hierarchical span tracing over wall-clock or modeled time.

A :class:`Span` is one named, timed region with attributes; spans nest
(each records its parent), and every subsystem appends to one shared
:class:`Tracer` so a whole run — planning, simulation, serving, the
experiment harness — lands on a single timeline.

Two clock regimes coexist:

* **wall time** — ``with tracer.span("plan"):`` reads the tracer's
  clock (default :func:`time.perf_counter`) on entry and exit;
* **modeled time** — simulators call :meth:`Tracer.add_span` with
  explicit start/end seconds from their own event clock, which keeps
  traces byte-identical across runs of the same seed (wall time never
  leaks in).

Tracks partition the timeline the way Chrome's trace viewer shows
threads: one track per resource or pipeline stage.  Span ids are
sequential, so a deterministic workload yields a deterministic trace.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Track used when a span does not name one.
DEFAULT_TRACK = "main"


@dataclass
class Span:
    """One named, timed region of a run.

    :param start: inclusive start time in seconds (clock-relative).
    :param end: exclusive end time; ``None`` while the span is open.
    :param track: timeline lane (Chrome-trace thread) the span renders
        on — e.g. a resource kind or a pipeline stage.
    :param parent_id: enclosing span's id, ``None`` for roots.
    :param attrs: free-form metadata exported as Chrome-trace ``args``.
    """

    span_id: int
    name: str
    start: float
    end: float | None = None
    category: str = "span"
    track: str = DEFAULT_TRACK
    parent_id: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def as_dict(self) -> dict:
        """Plain-dict snapshot (JSON-ready)."""
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "category": self.category,
            "track": self.track,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
        }


class ManualClock:
    """An explicitly-advanced clock for modeled-time tracing."""

    def __init__(self, now: float = 0.0):
        self._now = float(now)

    def __call__(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds (never backward)."""
        if dt < 0:
            raise ValueError(f"cannot advance by {dt}")
        self._now += dt

    def set(self, now: float) -> None:
        """Jump the clock to an absolute time."""
        self._now = float(now)


class Tracer:
    """Collects spans and instant events for one run.

    :param clock: zero-argument callable returning the current time in
        seconds.  Defaults to :func:`time.perf_counter`; pass a
        :class:`ManualClock` (or any callable) for modeled time.
    """

    def __init__(self, clock=None):
        self.clock = clock if clock is not None else time.perf_counter
        self.spans: list = []
        self.instants: list = []  # (time, name, track, attrs)
        self._stack: list = []  # open span ids, innermost last
        self._next_id = 0

    def _new_span(self, name: str, start: float, category: str,
                  track: str, attrs: dict | None,
                  parent_id: int | None) -> Span:
        span = Span(span_id=self._next_id, name=name, start=start,
                    category=category, track=track, parent_id=parent_id,
                    attrs=dict(attrs or {}))
        self._next_id += 1
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, category: str = "span",
             track: str = DEFAULT_TRACK, **attrs):
        """Open a nested span around a code block (clock-timed)."""
        parent = self._stack[-1] if self._stack else None
        record = self._new_span(name, self.clock(), category, track,
                                attrs, parent)
        self._stack.append(record.span_id)
        try:
            yield record
        finally:
            self._stack.pop()
            record.end = self.clock()

    def add_span(self, name: str, start: float, end: float,
                 category: str = "span", track: str = DEFAULT_TRACK,
                 attrs: dict | None = None,
                 parent_id: int | None = None) -> Span:
        """Record a completed span with explicit (modeled) times."""
        if end < start:
            raise ValueError(f"span {name!r} ends ({end}) before it "
                             f"starts ({start})")
        if parent_id is None and self._stack:
            parent_id = self._stack[-1]
        span = self._new_span(name, start, category, track, attrs,
                              parent_id)
        span.end = end
        return span

    def instant(self, name: str, timestamp: float | None = None,
                track: str = DEFAULT_TRACK, **attrs) -> None:
        """Record a zero-duration event (e.g. a shed request)."""
        when = self.clock() if timestamp is None else timestamp
        self.instants.append((when, name, track, dict(attrs)))

    @property
    def current_span(self) -> Span | None:
        """The innermost open span, if any."""
        if not self._stack:
            return None
        return self.spans[self._stack[-1]]

    def completed_spans(self) -> list:
        """All closed spans, in creation order."""
        return [span for span in self.spans if span.end is not None]

    def tracks(self) -> list:
        """Track names in first-appearance order (deterministic)."""
        seen: list = []
        for span in self.spans:
            if span.track not in seen:
                seen.append(span.track)
        for _when, _name, track, _attrs in self.instants:
            if track not in seen:
                seen.append(track)
        return seen


@contextmanager
def maybe_span(tracer: Tracer | None, name: str, category: str = "span",
               track: str = DEFAULT_TRACK, **attrs):
    """``tracer.span(...)`` when a tracer is present, else a no-op.

    Lets instrumented call sites keep a single code path whether or not
    the caller asked for telemetry.
    """
    if tracer is None:
        yield None
    else:
        with tracer.span(name, category=category, track=track,
                         **attrs) as span:
            yield span
