"""Run provenance manifests: which code, config and knobs produced this.

Every artifact the repo can persist — a :class:`~repro.sim.engine.
SimResult`, a :class:`~repro.sim.trace.FrozenTrace`, a benchmark
snapshot, a published model version — answers perf questions only
relative to the run that produced it.  A :class:`RunManifest` freezes
that identity: the config dict and its short fingerprint, the
headline workload descriptors (model / dataset / cluster / framework),
the optimization knobs, the schema versions of the formats involved
and a best-effort ``git describe`` of the working tree.

Manifests are additive metadata, never gated surface: regression
comparisons (:func:`repro.bench.snapshot.compare_snapshots`) ignore
them, so two snapshots from different commits still diff cleanly, and
the trace-diff engine (:mod:`repro.telemetry.diff`) prints both sides'
manifests so an attribution report names the runs it compared.

Everything except the git field is a pure function of the inputs; the
git field is constant within one checkout, which keeps the determinism
CI (two runs, one checkout, byte-identical artifacts) intact.
"""

from __future__ import annotations

import os
import subprocess
from dataclasses import dataclass, field
from functools import lru_cache

from repro.sim.trace import TRACE_SCHEMA_VERSION

#: Bump when the manifest layout changes incompatibly.
PROVENANCE_SCHEMA_VERSION = 1

#: What :func:`git_describe` reports when no git identity is available.
GIT_UNKNOWN = "unknown"

#: Config keys lifted to top-level manifest descriptors when present.
_DESCRIPTOR_KEYS = ("model", "dataset", "cluster", "framework")


def config_fingerprint(config: dict) -> str:
    """Short stable hash of a config dict (workload identity).

    The same algorithm the benchmark snapshots gate on: canonical
    compact JSON, sha256, first 16 hex chars.
    """
    import hashlib
    import json
    compact = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(compact.encode("utf-8")).hexdigest()[:16]


@lru_cache(maxsize=1)
def git_describe() -> str:
    """``git describe --always --dirty`` of this checkout, cached.

    Falls back to :data:`GIT_UNKNOWN` when git (or the repository) is
    unavailable — provenance must never make a run fail.
    """
    root = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "-C", root, "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return GIT_UNKNOWN
    described = out.stdout.strip()
    if out.returncode != 0 or not described:
        return GIT_UNKNOWN
    return described


@dataclass(frozen=True)
class RunManifest:
    """The provenance of one run, JSON-ready and round-trippable.

    :param kind: what produced this manifest (``run`` / ``profile`` /
        ``trace`` / ``bench`` / ``serve`` / ``stream`` / ...).
    :param config: the full declarative config of the run, as a dict
        (a :meth:`~repro.config_base.ConfigBase.as_dict` snapshot).
    :param knobs: the optimization-knob assignment in effect (e.g.
        the ``picasso`` sub-config), when distinct from ``config``.
    :param schemas: name -> schema version of every persisted format
        this run touches.
    :param git: ``git describe`` of the producing checkout.
    :param extra: free-form additions (seed, report name, ...).
    """

    kind: str = "run"
    config: dict = field(default_factory=dict)
    knobs: dict = field(default_factory=dict)
    schemas: dict = field(default_factory=dict)
    git: str = GIT_UNKNOWN
    extra: dict = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        return config_fingerprint(self.config)

    def descriptors(self) -> dict:
        """The headline workload identity lifted out of the config."""
        return {key: self.config[key] for key in _DESCRIPTOR_KEYS
                if key in self.config}

    def as_dict(self) -> dict:
        return {
            "schema_version": PROVENANCE_SCHEMA_VERSION,
            "kind": self.kind,
            "config": dict(self.config),
            "config_fingerprint": self.fingerprint,
            "descriptors": self.descriptors(),
            "knobs": dict(self.knobs),
            "schemas": dict(self.schemas),
            "git": self.git,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        version = payload.get("schema_version")
        if version != PROVENANCE_SCHEMA_VERSION:
            raise ValueError(
                f"provenance schema v{version} != supported "
                f"v{PROVENANCE_SCHEMA_VERSION}")
        return cls(kind=str(payload.get("kind", "run")),
                   config=dict(payload.get("config", {})),
                   knobs=dict(payload.get("knobs", {})),
                   schemas=dict(payload.get("schemas", {})),
                   git=str(payload.get("git", GIT_UNKNOWN)),
                   extra=dict(payload.get("extra", {})))


def build_manifest(kind: str = "run", config: dict | None = None,
                   knobs: dict | None = None,
                   schemas: dict | None = None,
                   extra: dict | None = None) -> RunManifest:
    """Assemble a :class:`RunManifest` for the current checkout.

    Fills in ``git describe`` and the trace/provenance schema versions;
    callers add the versions of any further formats they persist.
    """
    combined_schemas = {
        "provenance": PROVENANCE_SCHEMA_VERSION,
        "trace": TRACE_SCHEMA_VERSION,
    }
    combined_schemas.update(schemas or {})
    return RunManifest(kind=kind, config=dict(config or {}),
                       knobs=dict(knobs or {}),
                       schemas=combined_schemas,
                       git=git_describe(),
                       extra=dict(extra or {}))
