"""Critical-path analysis: which ops actually pay for the makespan.

Per-resource utilization says *how busy* the machine was; it cannot say
*which* ops to speed up.  This module walks the executed DAG backwards
from the last finisher — at every hop the blocking predecessor is the
dependency that finished latest — and so partitions the whole makespan
into on-path op time plus queueing gaps (the byteprofile-analysis
recipe, applied to our simulator's task records).

Each on-path op's time is then attributed to resource classes
(compute / memory / communication / launch, plus queueing wait) from
its execution segments, and ops are ranked by their share of the
makespan.  Repeated per-iteration instances (``it3/mlp_fwd`` ...)
aggregate under one label so a three-iteration run reads like one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.sim.resource import (
    COMMUNICATION_KINDS,
    COMPUTE_KINDS,
    MEMORY_KINDS,
    ResourceKind,
)

#: Ranking label for inter-op queueing gaps on the path.
WAIT_LABEL = "(queue wait)"

#: Resource-class attribution buckets.
RESOURCE_CLASSES = ("compute", "memory", "communication", "launch", "wait")

_INSTANCE_SEGMENT = re.compile(r"^(it|s|mb)\d+$")

_KIND_CLASS = {
    **{kind.value: "compute" for kind in COMPUTE_KINDS},
    **{kind.value: "memory" for kind in MEMORY_KINDS},
    **{kind.value: "communication" for kind in COMMUNICATION_KINDS},
    ResourceKind.LAUNCH.value: "launch",
}

_EPS = 1e-12


def resource_class(kind_value: str) -> str:
    """Map a resource-kind value to its attribution class."""
    return _KIND_CLASS.get(kind_value, "compute")


@dataclass(frozen=True)
class PathStep:
    """One hop of the critical path, in chronological order."""

    name: str
    start: float
    end: float
    kind: str  # "op" or "wait"

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class PathEntry:
    """One ranked contributor (an op label or the wait bucket)."""

    label: str
    seconds: float
    share: float
    occurrences: int
    classes: dict  # resource class -> seconds

    @property
    def dominant_class(self) -> str:
        """The resource class this entry spends most of its time in."""
        if not self.classes:
            return "wait"
        return max(sorted(self.classes), key=lambda c: self.classes[c])

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "seconds": self.seconds,
            "share": self.share,
            "occurrences": self.occurrences,
            "dominant_class": self.dominant_class,
            "classes": dict(self.classes),
        }


@dataclass
class CriticalPathReport:
    """The analyzer's full output (a ``Stats``-style object)."""

    makespan: float
    path: list = field(default_factory=list)  # PathStep, chronological
    entries: list = field(default_factory=list)  # PathEntry, ranked
    class_seconds: dict = field(default_factory=dict)
    top_k: int = 10

    def top(self, k: int | None = None) -> list:
        """The ``k`` largest contributors (default: ``self.top_k``)."""
        return self.entries[:self.top_k if k is None else k]

    def coverage(self, k: int | None = None) -> float:
        """Fraction of the makespan the top-``k`` entries explain."""
        if self.makespan <= 0:
            return 0.0
        return sum(entry.seconds for entry in self.top(k)) / self.makespan

    def as_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "top_k": self.top_k,
            "coverage": round(self.coverage(), 6),
            "entries": [entry.as_dict() for entry in self.entries],
            "class_seconds": {name: self.class_seconds.get(name, 0.0)
                              for name in RESOURCE_CLASSES},
            "path_length": len(self.path),
        }

    def merge(self, other: "CriticalPathReport") -> "CriticalPathReport":
        """Sequential composition: concatenate paths, re-rank entries."""
        offset = self.makespan
        path = list(self.path) + [
            PathStep(step.name, step.start + offset, step.end + offset,
                     step.kind) for step in other.path]
        merged: dict = {}
        for entry in list(self.entries) + list(other.entries):
            if entry.label in merged:
                previous = merged[entry.label]
                merged[entry.label] = (previous[0] + entry.seconds,
                                       previous[1] + entry.occurrences,
                                       _merge_classes(previous[2],
                                                      entry.classes))
            else:
                merged[entry.label] = (entry.seconds, entry.occurrences,
                                       dict(entry.classes))
        makespan = self.makespan + other.makespan
        entries = _rank(merged, makespan)
        classes = _merge_classes(self.class_seconds, other.class_seconds)
        return CriticalPathReport(makespan=makespan, path=path,
                                  entries=entries, class_seconds=classes,
                                  top_k=self.top_k)


def _merge_classes(left: dict, right: dict) -> dict:
    merged = dict(left)
    for name, seconds in right.items():
        merged[name] = merged.get(name, 0.0) + seconds
    return merged


def _rank(groups: dict, makespan: float) -> list:
    entries = [
        PathEntry(label=label, seconds=seconds,
                  share=seconds / makespan if makespan > 0 else 0.0,
                  occurrences=count, classes=classes)
        for label, (seconds, count, classes) in groups.items()
    ]
    entries.sort(key=lambda entry: (-entry.seconds, entry.label))
    return entries


def group_label(name: str) -> str:
    """Aggregation key for an op name.

    Instance-numbering path segments — iteration (``it0``), shard
    (``s3``) and micro-batch (``mb1``) — collapse, so the ranking
    reads per *logical* op: ``it2/s3/dim128.1/gather`` and
    ``it0/s1/dim128.1/gather`` both land on ``dim128.1/gather``.
    """
    parts = [part for part in name.split("/")
             if not _INSTANCE_SEGMENT.match(part)]
    return "/".join(parts) if parts else name


def _walk_path(records: list) -> list:
    """Backward walk from the last finisher; returns chronological steps.

    Each hop attributes ``[start, end]`` to the current record and any
    gap back to its latest-finishing predecessor to queueing.  The
    returned steps partition ``[0, makespan]`` exactly.
    """
    by_name = {record.name: record for record in records}
    last = max(records, key=lambda record: (record.end, record.name))
    steps: list = []
    current = last
    while True:
        steps.append(PathStep(current.name, current.start, current.end,
                              "op"))
        blockers = [by_name[name] for name in current.preds
                    if name in by_name]
        if not blockers:
            if current.start > _EPS:
                steps.append(PathStep(WAIT_LABEL, 0.0, current.start,
                                      "wait"))
            break
        blocker = max(blockers, key=lambda record: (record.end,
                                                    record.name))
        gap = current.start - blocker.end
        if gap > _EPS:
            steps.append(PathStep(WAIT_LABEL, blocker.end, current.start,
                                  "wait"))
        current = blocker
    steps.reverse()
    return steps


def analyze_critical_path(records: list, makespan: float | None = None,
                          top_k: int = 10) -> CriticalPathReport:
    """Rank the ops (and queueing) that dominate the makespan.

    :param records: :class:`~repro.sim.trace.TaskRecord` list from an
        engine run with ``record_tasks=True``.
    :param makespan: run length; defaults to the last record's end.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    if not records:
        return CriticalPathReport(makespan=makespan or 0.0, top_k=top_k)
    by_name = {record.name: record for record in records}
    steps = _walk_path(records)
    if makespan is None:
        makespan = steps[-1].end

    groups: dict = {}
    class_seconds = {name: 0.0 for name in RESOURCE_CLASSES}
    for step in steps:
        if step.kind == "wait":
            label = WAIT_LABEL
            classes = {"wait": step.seconds}
        else:
            label = group_label(step.name)
            record = by_name[step.name]
            classes = {}
            for kind, seconds in record.resource_seconds().items():
                name = resource_class(kind)
                classes[name] = classes.get(name, 0.0) + seconds
            wait = step.seconds - sum(classes.values())
            if wait > _EPS:
                classes["wait"] = classes.get("wait", 0.0) + wait
        for name, seconds in classes.items():
            class_seconds[name] += seconds
        if label in groups:
            seconds, count, merged = groups[label]
            groups[label] = (seconds + step.seconds, count + 1,
                             _merge_classes(merged, classes))
        else:
            groups[label] = (step.seconds, 1, classes)

    return CriticalPathReport(
        makespan=makespan, path=steps,
        entries=_rank(groups, makespan),
        class_seconds=class_seconds, top_k=top_k)


def class_deltas(base: CriticalPathReport,
                 candidate: CriticalPathReport) -> dict:
    """Per-resource-class path-time deltas between two reports.

    The what-if replayer's summary view: for each attribution class
    (compute, memory, communication, launch, wait) the change in
    on-path seconds from ``base`` to ``candidate``, plus the makespan
    delta under ``"makespan"``.  An unperturbed replay diffs to all
    zeros; a launch-only perturbation moves ``launch`` and ``wait``
    while the other classes stay put.
    """
    deltas = {name: (candidate.class_seconds.get(name, 0.0)
                     - base.class_seconds.get(name, 0.0))
              for name in RESOURCE_CLASSES}
    deltas["makespan"] = candidate.makespan - base.makespan
    return deltas


def format_critical_path(report: CriticalPathReport,
                         k: int | None = None) -> str:
    """Human-readable top-k table plus resource-class attribution."""
    lines = [
        f"critical path over {report.makespan * 1e3:.3f} ms makespan "
        f"({len(report.path)} steps)",
        f"{'#':>2}  {'share':>6}  {'cum':>6}  {'ms':>9}  "
        f"{'x':>4}  {'class':<13} op",
    ]
    cumulative = 0.0
    for rank, entry in enumerate(report.top(k), start=1):
        cumulative += entry.share
        lines.append(
            f"{rank:>2}  {entry.share:>6.1%}  {cumulative:>6.1%}  "
            f"{entry.seconds * 1e3:>9.3f}  {entry.occurrences:>4}  "
            f"{entry.dominant_class:<13} {entry.label}")
    total = sum(report.class_seconds.values()) or 1.0
    attribution = "  ".join(
        f"{name}={report.class_seconds.get(name, 0.0) / total:.0%}"
        for name in RESOURCE_CLASSES)
    lines.append(f"path time by resource class: {attribution}")
    lines.append(f"top-{len(report.top(k))} coverage: "
                 f"{report.coverage(k):.1%} of makespan")
    return "\n".join(lines)
