"""Unified telemetry: spans, metrics, Chrome-trace export, critical path.

The observability layer every subsystem plugs into.  Producers
(simulator engine, trainer, serving stack, experiment runner) emit
:class:`Span` trees, :class:`~repro.sim.trace.TaskRecord` lists and
registry metrics; consumers turn them into one Chrome-trace JSON
(:func:`chrome_trace`, loadable in Perfetto) and a ranked critical-path
report (:func:`analyze_critical_path`).  The :class:`Stats` protocol is
the export/merge contract all headline-number objects in the repo
satisfy.
"""

from repro.telemetry.chrome_trace import (
    chrome_trace,
    trace_to_json,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.critical_path import (
    CriticalPathReport,
    PathEntry,
    PathStep,
    analyze_critical_path,
    class_deltas,
    format_critical_path,
)
from repro.telemetry.diff import (
    BenchDiff,
    DiffEntry,
    TraceDiff,
    align_records,
    diff_bench_dirs,
    diff_snapshots,
    diff_traces,
)
from repro.telemetry.metrics import Counter, Gauge, MetricsRegistry
from repro.telemetry.monitor import (
    Alert,
    CacheHealthMonitor,
    MonitorReport,
    OverlapMonitor,
    PrefetchMonitor,
    PulseDetector,
    SkewMonitor,
    SloBurnRateMonitor,
    UtilizationPhase,
    emit_alerts,
)
from repro.telemetry.provenance import (
    RunManifest,
    build_manifest,
    config_fingerprint,
    git_describe,
)
from repro.telemetry.recorder import (
    AnomalyDetector,
    FlightRecorder,
    annotate_timeseries,
)
from repro.telemetry.span import ManualClock, Span, Tracer, maybe_span
from repro.telemetry.stats import (
    Stats,
    is_stats,
    merge_all,
    merge_numeric_dicts,
)
from repro.telemetry.timeseries import (
    Ewma,
    FixedWindowAggregator,
    Histogram,
    RollingWindow,
    WindowStats,
)

__all__ = [
    "Alert",
    "AnomalyDetector",
    "BenchDiff",
    "CacheHealthMonitor",
    "Counter",
    "CriticalPathReport",
    "DiffEntry",
    "Ewma",
    "FlightRecorder",
    "FixedWindowAggregator",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "MonitorReport",
    "OverlapMonitor",
    "PathEntry",
    "PathStep",
    "PrefetchMonitor",
    "PulseDetector",
    "RollingWindow",
    "RunManifest",
    "SkewMonitor",
    "SloBurnRateMonitor",
    "Span",
    "Stats",
    "TraceDiff",
    "Tracer",
    "UtilizationPhase",
    "WindowStats",
    "align_records",
    "analyze_critical_path",
    "annotate_timeseries",
    "build_manifest",
    "chrome_trace",
    "class_deltas",
    "config_fingerprint",
    "diff_bench_dirs",
    "diff_snapshots",
    "diff_traces",
    "emit_alerts",
    "format_critical_path",
    "git_describe",
    "is_stats",
    "maybe_span",
    "merge_all",
    "merge_numeric_dicts",
    "trace_to_json",
    "validate_chrome_trace",
    "write_chrome_trace",
]
