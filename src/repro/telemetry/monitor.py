"""Run-health monitors: derived signals + threshold alerts over a run.

The spans/records layer answers "what happened"; this module answers
"was the run healthy".  Each monitor reduces one raw telemetry stream
to a :class:`MonitorReport` — a small JSON-ready summary plus zero or
more threshold :class:`Alert`\\ s — so benchmark snapshots and CI gates
can assert on run *health*, not just run *speed*:

* :class:`PulseDetector` segments the resource-utilization timeline
  into memory-bound / compute-bound / idle phases, turning the paper's
  Fig. 4/5 "GPU utilization pulses" narrative into a measurable
  artifact (phase counts, alternations, idle fraction);
* :class:`OverlapMonitor` quantifies how much communication time was
  hidden behind compute — overall and per K-Interleaving group — which
  is Eq. 3's effectiveness as a single ratio;
* :class:`CacheHealthMonitor` watches a HybridHash / multi-level
  cache's per-iteration hit-ratio stream (EWMA level, flush
  effectiveness around ``flush_iters``);
* :class:`SloBurnRateMonitor` converts serving completions into
  windowed SLO-violation burn rates against an error budget;
* :class:`SkewMonitor` reduces per-worker AllToAllv shard bytes (an
  :class:`~repro.embedding.placement.ExchangeLoad`) to the max/mean
  ratio that gates every exchange, alerting when hot-ID skew leaves
  one shard dominating the collective.

:func:`emit_alerts` injects the alerts into a
:class:`~repro.telemetry.span.Tracer` as instant events, so they show
up on the Chrome trace exactly where the run went unhealthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.metrics import (
    DEFAULT_BUCKET_SECONDS,
    intersect_seconds,
    merge_intervals,
    merged_busy_intervals,
    utilization_timeline,
)
from repro.sim.resource import (
    COMMUNICATION_KINDS,
    COMPUTE_KINDS,
    EXECUTION_KINDS,
    MEMORY_KINDS,
)
from repro.embedding.placement import max_mean_ratio
from repro.telemetry.timeseries import Ewma

#: Track name alert instants are filed under in the Chrome trace.
ALERT_TRACK = "alerts"


@dataclass(frozen=True)
class Alert:
    """One threshold crossing, anchored to a moment of the run.

    :param name: stable machine-readable identifier (``low_overlap``,
        ``anomaly``, ...) for tooling that must not parse the human
        message; empty for alerts predating names.
    :param data: structured figures backing the message (e.g. the
        exposed-seconds behind a ``low_overlap`` alert), so downstream
        consumers read numbers instead of regexing prose.
    """

    time_s: float
    monitor: str
    severity: str  # "info" | "warning" | "critical"
    message: str
    value: float
    threshold: float
    name: str = ""
    data: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "time_s": self.time_s,
            "monitor": self.monitor,
            "severity": self.severity,
            "message": self.message,
            "value": self.value,
            "threshold": self.threshold,
            "name": self.name,
            "data": dict(self.data),
        }


@dataclass(frozen=True)
class MonitorReport:
    """One monitor's verdict on a run: summary numbers + alerts."""

    monitor: str
    healthy: bool
    summary: dict
    alerts: tuple = ()

    def as_dict(self) -> dict:
        return {
            "monitor": self.monitor,
            "healthy": self.healthy,
            "summary": dict(self.summary),
            "alerts": [alert.as_dict() for alert in self.alerts],
        }


@dataclass(frozen=True)
class UtilizationPhase:
    """One contiguous stretch of the run with a single dominant class."""

    label: str  # "memory-bound" | "compute-bound" | "idle"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        return {"label": self.label, "start": self.start, "end": self.end}


def _max_utilization(recorder, kinds, makespan: float, bucket: float):
    """Element-wise max of per-kind utilization timelines."""
    combined = None
    known = set(recorder.kinds())
    for kind in sorted(kinds, key=lambda k: k.value):
        if kind not in known:
            continue
        _times, utilization = utilization_timeline(
            recorder, kind, makespan, bucket)
        if combined is None:
            combined = utilization.copy()
        else:
            for index in range(len(combined)):
                if utilization[index] > combined[index]:
                    combined[index] = utilization[index]
    return combined


class PulseDetector:
    """Segments a run into memory-bound / compute-bound / idle phases.

    Per bucket, the memory level is the max utilization across
    :data:`MEMORY_KINDS` and the compute level the max across
    :data:`COMPUTE_KINDS`; a bucket below ``idle_threshold`` on both is
    idle, otherwise the higher class wins.  Consecutive same-label
    buckets merge into one :class:`UtilizationPhase` — the "pulses" of
    the paper's Fig. 4/5, where embedding (memory) and dense (compute)
    stages alternate within every iteration.
    """

    name = "pulse"

    def __init__(self, bucket: float = DEFAULT_BUCKET_SECONDS,
                 idle_threshold: float = 0.05,
                 max_idle_fraction: float = 0.5):
        if bucket <= 0:
            raise ValueError(f"bucket must be > 0, got {bucket}")
        self.bucket = float(bucket)
        self.idle_threshold = float(idle_threshold)
        self.max_idle_fraction = float(max_idle_fraction)

    def phases(self, recorder, makespan: float) -> list:
        """The run as an ordered list of :class:`UtilizationPhase`."""
        if makespan <= 0:
            return []
        memory = _max_utilization(
            recorder, MEMORY_KINDS, makespan, self.bucket)
        compute = _max_utilization(
            recorder, COMPUTE_KINDS, makespan, self.bucket)
        if memory is None and compute is None:
            return [UtilizationPhase("idle", 0.0, makespan)]
        length = len(memory) if memory is not None else len(compute)
        labels = []
        for index in range(length):
            mem = float(memory[index]) if memory is not None else 0.0
            comp = float(compute[index]) if compute is not None else 0.0
            if mem < self.idle_threshold and comp < self.idle_threshold:
                labels.append("idle")
            elif mem >= comp:
                labels.append("memory-bound")
            else:
                labels.append("compute-bound")
        phases = []
        start = 0
        for index in range(1, length + 1):
            if index == length or labels[index] != labels[start]:
                phases.append(UtilizationPhase(
                    label=labels[start],
                    start=start * self.bucket,
                    end=min(index * self.bucket, makespan)))
                start = index
        return phases

    def analyze(self, recorder, makespan: float) -> MonitorReport:
        """Phase statistics + an idle-fraction alert."""
        phases = self.phases(recorder, makespan)
        counts = {"memory-bound": 0, "compute-bound": 0, "idle": 0}
        durations = {"memory-bound": 0.0, "compute-bound": 0.0, "idle": 0.0}
        for phase in phases:
            counts[phase.label] += 1
            durations[phase.label] += phase.duration
        # Alternations: memory<->compute flips, idle gaps ignored —
        # the pulse count of Fig. 4.
        bound = [p for p in phases if p.label != "idle"]
        alternations = sum(
            1 for prev, cur in zip(bound, bound[1:])
            if prev.label != cur.label)
        total = sum(durations.values())
        idle_fraction = durations["idle"] / total if total > 0 else 1.0
        alerts = []
        if idle_fraction > self.max_idle_fraction:
            longest_idle = max(
                (p for p in phases if p.label == "idle"),
                key=lambda p: p.duration,
                default=UtilizationPhase("idle", 0.0, 0.0))
            alerts.append(Alert(
                time_s=longest_idle.start,
                monitor=self.name,
                severity="warning",
                message=(f"idle fraction {idle_fraction:.1%} exceeds "
                         f"{self.max_idle_fraction:.1%}"),
                value=idle_fraction,
                threshold=self.max_idle_fraction))
        summary = {
            "num_phases": len(phases),
            "memory_phases": counts["memory-bound"],
            "compute_phases": counts["compute-bound"],
            "idle_phases": counts["idle"],
            "alternations": alternations,
            "memory_seconds": durations["memory-bound"],
            "compute_seconds": durations["compute-bound"],
            "idle_seconds": durations["idle"],
            "idle_fraction": idle_fraction,
        }
        return MonitorReport(
            monitor=self.name,
            healthy=not alerts,
            summary=summary,
            alerts=tuple(alerts))


class OverlapMonitor:
    """How much synchronous communication the run hid behind execution.

    The overlap ratio is (seconds during which synchronous
    communication and kernel execution were simultaneously busy) /
    (seconds during which synchronous communication was busy at all):
    1.0 means every transferred byte was hidden, 0.0 means
    communication fully serialized with execution.

    "Execution" is :data:`~repro.sim.resource.EXECUTION_KINDS`:
    compute units plus the memory channels that memory-bound kernels
    keep busy.  Eq. 3 hides one group's exchange behind *other*
    groups' compute **and** memory ops, so a gather's fetch interval
    abutting an MLP's compute interval is one continuous busy span for
    hiding purposes — counting only ``GPU_SM``/``CPU`` (the old
    behaviour) dropped every such junction and systematically
    under-credited the schedule.

    With task records available, the background prefetch stream's own
    wire time is excluded from the denominator — the stream exists to
    be off the synchronous path, and its exposure is
    :class:`PrefetchMonitor`'s metric, not this one's — and the same
    ratio is reported per K-Interleaving group (``tags["group"]``),
    exposing which packed embedding groups the schedule actually
    pipelines.
    """

    name = "overlap"

    def __init__(self, min_overlap_ratio: float = 0.1,
                 execution_kinds=EXECUTION_KINDS):
        self.min_overlap_ratio = float(min_overlap_ratio)
        self.execution_kinds = frozenset(execution_kinds)

    @staticmethod
    def _comm_values():
        return {kind.value for kind in COMMUNICATION_KINDS}

    def _sync_comm_spans(self, recorder, records) -> list:
        """Merged busy spans of non-background communication.

        Falls back to all-comm busy time when no task records are
        available (recorder timelines cannot attribute segments to the
        ops that drove them).
        """
        if records is None:
            return merged_busy_intervals(recorder, COMMUNICATION_KINDS)
        comm_values = self._comm_values()
        spans = []
        for record in records:
            if record.tags.get("layer") == "prefetch":
                continue
            for kind_value, t0, t1 in record.segments:
                if kind_value in comm_values and t1 > t0:
                    spans.append((t0, t1))
        return merge_intervals(spans)

    def group_ratios(self, recorder, records) -> dict:
        """Per-group overlap ratio from task-record comm segments."""
        comm_values = self._comm_values()
        execution_spans = merged_busy_intervals(recorder,
                                                self.execution_kinds)
        group_comm: dict = {}
        for record in records:
            if record.tags.get("layer") == "prefetch":
                continue
            group = record.tags.get("group")
            if group is None:
                continue
            for kind_value, t0, t1 in record.segments:
                if kind_value in comm_values and t1 > t0:
                    group_comm.setdefault(str(group), []).append((t0, t1))
        ratios = {}
        for group in sorted(group_comm):
            spans = merge_intervals(group_comm[group])
            comm_total = sum(t1 - t0 for t0, t1 in spans)
            if comm_total <= 0:
                continue
            hidden = intersect_seconds(spans, execution_spans)
            ratios[group] = hidden / comm_total
        return ratios

    def analyze(self, recorder, makespan: float,
                records=None) -> MonitorReport:
        """Overall + per-group overlap ratios and an exposure alert."""
        comm_spans = self._sync_comm_spans(recorder, records)
        comm_total = sum(t1 - t0 for t0, t1 in comm_spans)
        hidden = intersect_seconds(
            comm_spans,
            merged_busy_intervals(recorder, self.execution_kinds))
        ratio = hidden / comm_total if comm_total > 0 else 0.0
        alerts = []
        if comm_total > 0 and ratio < self.min_overlap_ratio:
            # Anchor the alert where the largest fully-exposed comm
            # span starts (the most visible Eq. 3 failure).
            alerts.append(Alert(
                time_s=comm_spans[0][0],
                monitor=self.name,
                severity="warning",
                message=(f"comm/execution overlap {ratio:.1%} below "
                         f"{self.min_overlap_ratio:.1%}; "
                         f"{comm_total - hidden:.4f}s of communication "
                         "exposed"),
                value=ratio,
                threshold=self.min_overlap_ratio,
                name="low_overlap",
                data={"exposed_seconds": comm_total - hidden,
                      "comm_seconds": comm_total,
                      "overlapped_seconds": hidden}))
        summary = {
            "comm_seconds": comm_total,
            "overlapped_seconds": hidden,
            "exposed_seconds": comm_total - hidden,
            "overlap_ratio": ratio,
        }
        if records is not None:
            group_ratios = self.group_ratios(recorder, records)
            summary["group_overlap_ratios"] = group_ratios
            summary["num_groups"] = len(group_ratios)
        return MonitorReport(
            monitor=self.name,
            healthy=not alerts,
            summary=summary,
            alerts=tuple(alerts))


class PrefetchMonitor:
    """Exposure of the hot/cold background prefetch stream.

    The stream's whole purpose is to fetch cold embedding rows while
    foreground kernels run (Hotline, arXiv 2204.05436); its health
    signal is therefore *exposed-fetch seconds* — stream busy time
    during which no foreground op was executing, i.e. fetch latency
    the lookahead failed to hide.  Stream ops are identified by
    ``tags["layer"] == "prefetch"``; foreground spans are every other
    op's busy segments on any resource.  Per-group exposure pinpoints
    which packed embedding group's staging runs ahead of (or behind)
    the pipeline.
    """

    name = "prefetch"

    def __init__(self, max_exposed_fraction: float = 0.5):
        self.max_exposed_fraction = float(max_exposed_fraction)

    @staticmethod
    def _spans(records, predicate) -> list:
        spans = []
        for record in records:
            if not predicate(record):
                continue
            for _kind, t0, t1 in record.segments:
                if t1 > t0:
                    spans.append((t0, t1))
        return merge_intervals(spans)

    def analyze(self, recorder, makespan: float,
                records=None) -> MonitorReport:
        """Stream exposure summary + a poorly-hidden-stream alert."""
        records = records or ()
        stream = self._spans(
            records, lambda r: r.tags.get("layer") == "prefetch")
        foreground = self._spans(
            records, lambda r: r.tags.get("layer") != "prefetch")
        fetch_total = sum(t1 - t0 for t0, t1 in stream)
        hidden = intersect_seconds(stream, foreground)
        exposed = fetch_total - hidden
        ratio = hidden / fetch_total if fetch_total > 0 else 0.0
        per_group: dict = {}
        for record in records:
            if record.tags.get("layer") != "prefetch":
                continue
            group = str(record.tags.get("group", "?"))
            spans = merge_intervals(
                [(t0, t1) for _k, t0, t1 in record.segments if t1 > t0])
            busy = sum(t1 - t0 for t0, t1 in spans)
            prev_busy, prev_hidden = per_group.get(group, (0.0, 0.0))
            per_group[group] = (
                prev_busy + busy,
                prev_hidden + intersect_seconds(spans, foreground))
        alerts = []
        if fetch_total > 0 and exposed / fetch_total \
                > self.max_exposed_fraction:
            alerts.append(Alert(
                time_s=stream[0][0],
                monitor=self.name,
                severity="warning",
                message=(f"prefetch stream {exposed / fetch_total:.1%} "
                         f"exposed (> {self.max_exposed_fraction:.1%}); "
                         f"{exposed:.4f}s of staging ran with the "
                         "foreground pipeline idle"),
                value=exposed / fetch_total,
                threshold=self.max_exposed_fraction,
                name="exposed_prefetch",
                data={"exposed_fetch_seconds": exposed,
                      "prefetch_seconds": fetch_total,
                      "overlapped_seconds": hidden}))
        summary = {
            "prefetch_seconds": fetch_total,
            "overlapped_seconds": hidden,
            "exposed_fetch_seconds": exposed,
            "overlap_ratio": ratio,
            "group_exposure": {
                group: {"busy_seconds": busy,
                        "exposed_seconds": busy - hid}
                for group, (busy, hid) in sorted(per_group.items())},
        }
        return MonitorReport(
            monitor=self.name,
            healthy=not alerts,
            summary=summary,
            alerts=tuple(alerts))


class CacheHealthMonitor:
    """Health of a hot/cold cache from its per-iteration hit stream.

    Consumes the ``hit_history`` / ``flush_history`` a
    :class:`~repro.embedding.hybrid_hash.HybridHash` (or
    :class:`~repro.embedding.multilevel.MultiLevelCache`) accumulates:
    the EWMA-smoothed hit level is the thresholded health signal, and
    each flush's effectiveness is the mean hit-ratio change across a
    window around the flush — Algorithm 1's refresh should pay for
    itself; a persistently negative delta means ``flush_iters`` churns
    a hot set that was already right.
    """

    name = "cache"

    def __init__(self, alpha: float = 0.2, min_hit_ratio: float = 0.3,
                 flush_window: int = 10):
        if flush_window < 1:
            raise ValueError(
                f"flush_window must be >= 1, got {flush_window}")
        self.alpha = float(alpha)
        self.min_hit_ratio = float(min_hit_ratio)
        self.flush_window = int(flush_window)

    def flush_effects(self, cache) -> list:
        """Mean hit-ratio delta (after - before) around each flush."""
        history = cache.hit_history
        warmup = cache.warmup_iters
        window = self.flush_window
        effects = []
        for flush_iteration in cache.flush_history:
            pivot = flush_iteration - warmup
            before = history[max(0, pivot - window):pivot]
            after = history[pivot:pivot + window]
            if not before or not after:
                continue
            effects.append(sum(after) / len(after)
                           - sum(before) / len(before))
        return effects

    def analyze(self, cache) -> MonitorReport:
        """EWMA hit level, flush effectiveness, low-hit alert."""
        history = cache.hit_history
        ewma = Ewma(alpha=self.alpha)
        low = float("inf")
        for ratio in history:
            ewma.update(ratio)
            low = min(low, ratio)
        effects = self.flush_effects(cache)
        level = ewma.value if ewma.value is not None else 0.0
        alerts = []
        if history and level < self.min_hit_ratio:
            alerts.append(Alert(
                time_s=float(cache.iteration),
                monitor=self.name,
                severity="warning",
                message=(f"EWMA hit ratio {level:.1%} below "
                         f"{self.min_hit_ratio:.1%} after "
                         f"{cache.iteration} iterations"),
                value=level,
                threshold=self.min_hit_ratio))
        summary = {
            "iterations": cache.iteration,
            "observed_iterations": len(history),
            "ewma_hit_ratio": level,
            "min_hit_ratio": low if history else 0.0,
            "final_hit_ratio": history[-1] if history else 0.0,
            "flushes": len(cache.flush_history),
            "measured_flush_effects": len(effects),
            "mean_flush_effect": (sum(effects) / len(effects)
                                  if effects else 0.0),
        }
        return MonitorReport(
            monitor=self.name,
            healthy=not alerts,
            summary=summary,
            alerts=tuple(alerts))


class SloBurnRateMonitor:
    """Windowed SLO-violation burn rate for a serving run.

    Completions are bucketed onto ``window_s`` windows; a window's burn
    rate is its violation fraction (latency > SLO, plus shed requests
    counted as violations) divided by the error ``budget``.  A burn
    rate of 1.0 consumes the budget exactly; sustained rates above
    ``max_burn_rate`` raise alerts anchored at the offending window.
    """

    name = "slo"

    def __init__(self, slo_ms: float, budget: float = 0.01,
                 window_s: float = 0.05, max_burn_rate: float = 1.0):
        if slo_ms <= 0:
            raise ValueError(f"slo_ms must be > 0, got {slo_ms}")
        if not 0.0 < budget < 1.0:
            raise ValueError(f"budget must be in (0, 1), got {budget}")
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self.slo_ms = float(slo_ms)
        self.budget = float(budget)
        self.window_s = float(window_s)
        self.max_burn_rate = float(max_burn_rate)

    def analyze(self, metrics) -> MonitorReport:
        """Reduce a :class:`~repro.serving.metrics.ServingMetrics`."""
        slo_s = self.slo_ms * 1e-3
        events = [(when, 1 if latency > slo_s else 0)
                  for when, latency in metrics.completed_requests()]
        events.extend((when, 1) for when in metrics.shed_times())
        windows: dict = {}  # index -> [violations, total]
        for when, violated in events:
            index = int(when // self.window_s)
            window = windows.setdefault(index, [0, 0])
            window[0] += violated
            window[1] += 1
        total = sum(count for _v, count in windows.values())
        violations = sum(v for v, _count in windows.values())
        overall_rate = ((violations / total) / self.budget
                        if total else 0.0)
        alerts = []
        worst_rate = 0.0
        worst_index = None
        for index in sorted(windows):
            v, count = windows[index]
            rate = (v / count) / self.budget
            if rate > worst_rate:
                worst_rate = rate
                worst_index = index
            if rate > self.max_burn_rate:
                alerts.append(Alert(
                    time_s=index * self.window_s,
                    monitor=self.name,
                    severity=("critical" if rate > 10 * self.max_burn_rate
                              else "warning"),
                    message=(f"burn rate {rate:.1f}x budget in window "
                             f"[{index * self.window_s:.3f}s, "
                             f"{(index + 1) * self.window_s:.3f}s): "
                             f"{v}/{count} requests over "
                             f"{self.slo_ms:g}ms SLO"),
                    value=rate,
                    threshold=self.max_burn_rate))
        summary = {
            "slo_ms": self.slo_ms,
            "budget": self.budget,
            "requests": total,
            "violations": violations,
            "overall_burn_rate": overall_rate,
            "worst_burn_rate": worst_rate,
            "worst_window_start_s": (worst_index * self.window_s
                                     if worst_index is not None else 0.0),
            "alert_windows": len(alerts),
        }
        return MonitorReport(
            monitor=self.name,
            healthy=not alerts,
            summary=summary,
            alerts=tuple(alerts))


class SkewMonitor:
    """Shard-load balance of the embedding AllToAllv exchange.

    Consumes per-worker exchange bytes — an
    :class:`~repro.embedding.placement.ExchangeLoad` (measured by
    :func:`~repro.embedding.placement.measure_exchange` or accumulated
    by a plan-backed
    :class:`~repro.distributed.strategies.DataParallelTrainer`) or any
    per-worker byte sequence — and reports the max/mean shard-bytes
    ratio.  The collective completes when its most-loaded shard does,
    so a ratio of 2.0 means the exchange runs at half the balanced
    throughput; ratios above ``max_ratio`` raise an alert naming the
    hottest worker.
    """

    name = "skew"

    def __init__(self, max_ratio: float = 1.5):
        if max_ratio < 1.0:
            raise ValueError(
                f"max_ratio must be >= 1.0, got {max_ratio}")
        self.max_ratio = float(max_ratio)

    def analyze(self, load, time_s: float = 0.0) -> MonitorReport:
        """Reduce one exchange load to balance numbers + skew alert."""
        per_worker = [float(value) for value in
                      getattr(load, "per_worker_bytes", load)]
        ratio = max_mean_ratio(per_worker)
        max_bytes = max(per_worker) if per_worker else 0.0
        total = sum(per_worker)
        mean = total / len(per_worker) if per_worker else 0.0
        hottest = per_worker.index(max_bytes) if per_worker else -1
        alerts = []
        if ratio > self.max_ratio:
            alerts.append(Alert(
                time_s=float(time_s),
                monitor=self.name,
                severity=("critical" if ratio > 2 * self.max_ratio
                          else "warning"),
                message=(f"shard-bytes max/mean {ratio:.2f} exceeds "
                         f"{self.max_ratio:.2f}: worker {hottest} "
                         f"carries {max_bytes:.0f} of "
                         f"{total:.0f} exchanged bytes"),
                value=ratio,
                threshold=self.max_ratio))
        summary = {
            "workers": len(per_worker),
            "total_bytes": total,
            "max_bytes": max_bytes,
            "mean_bytes": mean,
            "max_mean_ratio": ratio,
            "hottest_worker": hottest,
            "local_bytes": float(getattr(load, "local_bytes", 0.0)),
            "replicated_bytes": float(
                getattr(load, "replicated_bytes", 0.0)),
        }
        return MonitorReport(
            monitor=self.name,
            healthy=not alerts,
            summary=summary,
            alerts=tuple(alerts))


def emit_alerts(tracer, reports) -> int:
    """File every alert as an instant event on ``tracer``.

    Returns the number of instants emitted; alert attributes survive
    into the Chrome trace's ``args``.
    """
    emitted = 0
    for report in reports:
        for alert in report.alerts:
            extra = {"alert": alert.name} if alert.name else {}
            tracer.instant(
                f"{alert.monitor}:{alert.severity}",
                timestamp=alert.time_s,
                track=ALERT_TRACK,
                message=alert.message,
                value=alert.value,
                threshold=alert.threshold,
                **extra)
            emitted += 1
    return emitted
