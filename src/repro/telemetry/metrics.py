"""Counters and gauges: the scalar half of the telemetry layer.

Spans answer "when"; the registry answers "how much".  A
:class:`Counter` only accumulates (requests served, rows fetched); a
:class:`Gauge` holds the latest level and remembers its extremes
(queue depth, cache occupancy).  The :class:`MetricsRegistry` is itself
a :class:`~repro.telemetry.stats.Stats` object, so a whole registry
exports and merges like any other subsystem's stats.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing scalar."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def as_dict(self) -> dict:
        return {"name": self.name, "value": self.value}

    def merge(self, other: "Counter") -> "Counter":
        """Sum with another counter of the same name."""
        return Counter(name=self.name, value=self.value + other.value)


@dataclass
class Gauge:
    """A settable level that tracks its min/max over the run."""

    name: str
    value: float = 0.0
    low: float = field(default=float("inf"))
    high: float = field(default=float("-inf"))

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)
        self.low = min(self.low, self.value)
        self.high = max(self.high, self.value)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "value": self.value,
            "low": self.low if self.low != float("inf") else None,
            "high": self.high if self.high != float("-inf") else None,
        }

    @property
    def is_set(self) -> bool:
        """Whether :meth:`set` has ever been called."""
        return self.low != float("inf") or self.high != float("-inf")

    def merge(self, other: "Gauge") -> "Gauge":
        """Latest-wins value, widened extremes (``Stats`` protocol).

        ``other`` is treated as the later shard, so its level wins —
        unless it was never set, in which case ``self``'s level
        survives (a fresh gauge is the merge identity).  ``low``/
        ``high`` take the min/max across both, so the merged gauge's
        extremes cover both runs.
        """
        value = other.value if other.is_set else self.value
        return Gauge(name=self.name, value=value,
                     low=min(self.low, other.low),
                     high=max(self.high, other.high))


class MetricsRegistry:
    """Named counters and gauges for one run (a :class:`Stats` object)."""

    def __init__(self):
        self._counters: dict = {}
        self._gauges: dict = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        if name in self._gauges:
            raise ValueError(f"{name!r} is already a gauge")
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        if name in self._counters:
            raise ValueError(f"{name!r} is already a counter")
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def as_dict(self) -> dict:
        """``{"counters": {name: value}, "gauges": {name: snapshot}}``."""
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(self._counters.items())},
            "gauges": {name: gauge.as_dict()
                       for name, gauge in sorted(self._gauges.items())},
        }

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Union of both registries; shared names merge element-wise."""
        merged = MetricsRegistry()
        for name, counter in self._counters.items():
            if name in other._counters:
                merged._counters[name] = counter.merge(
                    other._counters[name])
            else:
                merged._counters[name] = Counter(name, counter.value)
        for name, counter in other._counters.items():
            merged._counters.setdefault(name, Counter(name, counter.value))
        for name, gauge in self._gauges.items():
            if name in other._gauges:
                merged._gauges[name] = gauge.merge(other._gauges[name])
            else:
                merged._gauges[name] = Gauge(name, gauge.value,
                                             gauge.low, gauge.high)
        for name, gauge in other._gauges.items():
            merged._gauges.setdefault(
                name, Gauge(name, gauge.value, gauge.low, gauge.high))
        return merged
